"""Multi-tenant facility service: one shared cache, thousands of sessions.

The request plane over the paper's analysis engine. One process hosts one
:class:`FacilityCore` (node model + shared caches); any number of tenants
ask §2–§5 questions through versioned request/response envelopes, either
in-process (``await service.handle(request)``) or over the stdlib
HTTP/JSON front (``repro serve``).

The layers, bottom-up:

* :mod:`~repro.service.core` — :class:`SessionParams` +
  :class:`FacilityCore`, the stateless question-answering core both
  :class:`repro.api.FacilitySession` and the service share;
* :mod:`~repro.service.envelope` — :class:`ServiceRequest` /
  :class:`ServiceResponse`, structured error codes;
* :mod:`~repro.service.coalesce` — :class:`SingleFlight` request
  coalescing (N identical concurrent sweeps → 1 evaluation);
* :mod:`~repro.service.admission` — :class:`TokenBucket` /
  :class:`AdmissionController` fairness and shedding;
* :mod:`~repro.service.metrics` — :class:`ServiceMetrics` and its
  ``requests_in == served + rejected + failed`` identity;
* :mod:`~repro.service.service` — :class:`FacilityService`, the
  composition, with full ``state_dict``/``load_state_dict``;
* :mod:`~repro.service.http` — :class:`ServiceHTTPServer`;
* :mod:`~repro.service.selftest` — the deterministic CI soak.
"""

from .admission import AdmissionController, TokenBucket
from .coalesce import SingleFlight
from .core import FacilityCore, SessionParams
from .envelope import (
    METHODS,
    PROTOCOL_VERSION,
    ServiceRequest,
    ServiceResponse,
    error_code,
)
from .http import ServiceHTTPServer
from .metrics import ServiceMetrics
from .router import ServiceRouter
from .selftest import run_selftest
from .service import FacilityService

__all__ = [
    "PROTOCOL_VERSION",
    "METHODS",
    "SessionParams",
    "FacilityCore",
    "ServiceRequest",
    "ServiceResponse",
    "error_code",
    "SingleFlight",
    "TokenBucket",
    "AdmissionController",
    "ServiceMetrics",
    "ServiceRouter",
    "FacilityService",
    "ServiceHTTPServer",
    "run_selftest",
]
