"""Admission control and fairness: per-tenant token buckets, depth shedding.

The same philosophy as the live monitor's bounded channels (PR 2/3): a
service that cannot say no falls over, and every no must be *accounted*.
Two independent gates run before any work is admitted:

* **per-tenant token bucket** — each tenant refills at ``rate_per_s`` up to
  ``burst`` tokens; a dry bucket raises a structured ``"rate-limited"``
  :class:`~repro.errors.AdmissionError` carrying ``retry_after_s``. One
  noisy tenant cannot starve the rest — fairness is per-bucket, not FIFO.
* **queue-depth shedding** — when the whole service already has
  ``max_in_flight`` requests in flight, new arrivals are shed with an
  ``"overloaded"`` error rather than queued without bound (the request
  plane's ``drop_newest``).

Time is data: callers pass ``now_s`` explicitly (the service injects its
clock), so admission decisions are deterministic and replayable, and the
bucket state round-trips through ``state_dict`` for drain/restart.
"""

from __future__ import annotations

from ..errors import AdmissionError, ConfigurationError

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """A classic leaky token bucket: ``rate_per_s`` refill up to ``burst``."""

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError(f"rate_per_s must be positive, got {rate_per_s}")
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_refill_s = 0.0

    def _refill(self, now_s: float) -> None:
        elapsed = max(0.0, now_s - self.last_refill_s)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate_per_s)
        self.last_refill_s = max(self.last_refill_s, now_s)

    def try_acquire(self, now_s: float, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        self._refill(now_s)
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False

    def retry_after_s(self, now_s: float, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` could be available (0 when they are)."""
        self._refill(now_s)
        deficit = tokens - self.tokens
        return max(0.0, deficit / self.rate_per_s)

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the bucket."""
        return {
            "rate_per_s": self.rate_per_s,
            "burst": self.burst,
            "tokens": self.tokens,
            "last_refill_s": self.last_refill_s,
        }

    def load_state_dict(self, state: dict) -> None:
        """Overwrite the bucket in place from a :meth:`state_dict` snapshot."""
        self.rate_per_s = state["rate_per_s"]
        self.burst = state["burst"]
        self.tokens = state["tokens"]
        self.last_refill_s = state["last_refill_s"]


class AdmissionController:
    """Decides, per request, whether the service takes on the work."""

    def __init__(
        self,
        *,
        rate_per_s: float = 50.0,
        burst: float = 100.0,
        max_in_flight: int = 1024,
    ) -> None:
        """Defaults admit bursty interactive use; soak tests tighten them.

        ``rate_per_s``/``burst`` parameterise the bucket every new tenant
        starts with; :meth:`set_tenant_limits` overrides one tenant.
        """
        if max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.default_rate_per_s = float(rate_per_s)
        self.default_burst = float(burst)
        self.max_in_flight = int(max_in_flight)
        self._buckets: dict[str, TokenBucket] = {}

    def bucket(self, tenant: str) -> TokenBucket:
        """The tenant's bucket, created at the defaults on first sight."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.default_rate_per_s, self.default_burst)
            self._buckets[tenant] = bucket
        return bucket

    def set_tenant_limits(
        self, tenant: str, *, rate_per_s: float, burst: float
    ) -> None:
        """Give one tenant its own bucket parameters (resets its level)."""
        self._buckets[tenant] = TokenBucket(rate_per_s, burst)

    def admit(self, tenant: str, *, now_s: float, in_flight: int) -> None:
        """Admit or raise a structured :class:`AdmissionError`.

        Depth shedding is checked first — when the service is saturated it
        must not *also* drain the tenant's bucket for work it will refuse.
        """
        if in_flight >= self.max_in_flight:
            raise AdmissionError(
                f"service saturated: {in_flight} requests in flight "
                f"(max {self.max_in_flight}); shedding new arrivals",
                code="overloaded",
            )
        bucket = self.bucket(tenant)
        if not bucket.try_acquire(now_s):
            raise AdmissionError(
                f"tenant {tenant!r} exceeded its request rate "
                f"({bucket.rate_per_s:g}/s, burst {bucket.burst:g})",
                code="rate-limited",
                retry_after_s=bucket.retry_after_s(now_s),
            )

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot: limits plus every tenant bucket."""
        return {
            "default_rate_per_s": self.default_rate_per_s,
            "default_burst": self.default_burst,
            "max_in_flight": self.max_in_flight,
            "buckets": {
                tenant: self._buckets[tenant].state_dict()
                for tenant in sorted(self._buckets)
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Overwrite limits and buckets in place from a snapshot."""
        self.default_rate_per_s = state["default_rate_per_s"]
        self.default_burst = state["default_burst"]
        self.max_in_flight = state["max_in_flight"]
        self._buckets = {}
        for tenant, bucket_state in state["buckets"].items():
            bucket = TokenBucket(
                bucket_state["rate_per_s"], bucket_state["burst"]
            )
            bucket.load_state_dict(bucket_state)
            self._buckets[tenant] = bucket
