"""``repro serve``: run the facility service (or its CI soak selftest).

Two modes:

* ``repro serve --selftest [--clients N]`` — the in-process soak from
  :mod:`repro.service.selftest`: thousands of concurrent simulated
  clients against one service, gates on accounting, coalescing, parity
  and kill/resume. Prints the JSON report; exit code is the verdict.
  This is what the CI ``service-soak`` job runs.
* ``repro serve [--host H] [--port P] [--cache-dir DIR]`` — bind the
  stdlib HTTP/JSON front (:mod:`repro.service.http`) and serve until
  interrupted. ``POST /v1/request`` takes a request envelope.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

__all__ = ["serve_main"]


def build_parser(prog: str = "repro serve") -> argparse.ArgumentParser:
    """The ``repro serve`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Serve the multi-tenant facility service over HTTP/JSON, or "
            "run its deterministic concurrency selftest."
        ),
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the in-process soak (no socket) and exit 0/1 on the verdict",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=2000,
        help="simulated concurrent clients for --selftest (default: 2000)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=8,
        help="distinct tenants for --selftest (default: 8)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="selftest RNG seed (default: 0)"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with --selftest, print the raw JSON report instead of the summary",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8173, help="bind port (default: 8173; 0 = ephemeral)"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed on-disk sweep store shared by every tenant",
    )
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=1024,
        help="queue-depth shedding threshold (default: 1024)",
    )
    parser.add_argument(
        "--rate-per-s",
        type=float,
        default=50.0,
        help="per-tenant token refill rate (default: 50)",
    )
    parser.add_argument(
        "--burst",
        type=float,
        default=100.0,
        help="per-tenant token bucket depth (default: 100)",
    )
    return parser


async def _serve(args: argparse.Namespace) -> int:
    from .admission import AdmissionController
    from .http import ServiceHTTPServer
    from .service import FacilityService

    service = FacilityService(
        cache_dir=args.cache_dir,
        admission=AdmissionController(
            rate_per_s=args.rate_per_s,
            burst=args.burst,
            max_in_flight=args.max_in_flight,
        ),
    )
    server = ServiceHTTPServer(service, host=args.host, port=args.port)
    await server.start()
    print(
        f"facility service listening on http://{server.host}:{server.port} "
        "(POST /v1/request, GET /v1/health, GET /v1/metrics)",
        file=sys.stderr,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
        await service.drain()
    return 0


def serve_main(argv: list[str] | None = None, prog: str = "repro serve") -> int:
    """``repro serve`` entry point; returns a process exit code."""
    args = build_parser(prog).parse_args(argv)
    if args.selftest:
        from .selftest import format_report, run_selftest

        report = asyncio.run(
            run_selftest(
                n_clients=args.clients, n_tenants=args.tenants, seed=args.seed
            )
        )
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(format_report(report))
        return 0 if report["ok"] else 1
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 0
