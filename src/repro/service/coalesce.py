"""Single-flight request coalescing: one evaluation per identical question.

When a thousand sessions ask for the same sweep at once, the cache alone
does not save them — they all miss together, then all compute together (a
cache stampede). :class:`SingleFlight` closes that window: the first caller
for a key becomes the *leader* and runs the computation; every concurrent
caller with the same key attaches as a *waiter* to the leader's future and
receives the same object.

Cancellation is the hard part, handled explicitly:

* a cancelled **waiter** detaches without disturbing the flight (the
  future is awaited through :func:`asyncio.shield`);
* a cancelled **leader** cancels the shared future, and each surviving
  waiter retries the key — the first retry becomes the new leader (a
  *handoff*), so waiters are never stranded behind a dead flight;
* however it ends (result, error, cancellation), the in-flight entry is
  removed before control returns — no leaked keys, which is what makes
  :meth:`inflight_keys` trustworthy for the service's ``state_dict``.

Errors propagate to every attached caller: an identical request would fail
identically, so sharing the exception is the coalescing-consistent answer.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, TypeVar

__all__ = ["SingleFlight"]

T = TypeVar("T")


class SingleFlight:
    """Per-key in-flight futures with leader/waiter attach and handoff."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}
        #: Flights led (actual executions started).
        self.leads = 0
        #: Calls that attached to an existing flight instead of computing.
        self.joins = 0
        #: Times a waiter took over after its leader was cancelled.
        self.handoffs = 0

    def __len__(self) -> int:
        """Number of keys currently in flight."""
        return len(self._inflight)

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` has a flight in progress right now.

        Checked synchronously (no await) immediately before :meth:`run`,
        this predicts whether that call will join rather than lead.
        """
        return key in self._inflight

    def inflight_keys(self) -> list[str]:
        """The keys currently being computed, sorted."""
        return sorted(self._inflight)

    async def run(self, key: str, factory: Callable[[], Awaitable[T]]) -> T:
        """Return ``factory()``'s value, computing it at most once per key.

        Concurrent calls with the same ``key`` receive the *same* object
        (or the same exception). ``factory`` is only invoked by the leader.
        """
        while True:
            existing = self._inflight.get(key)
            if existing is None:
                return await self._lead(key, factory)
            self.joins += 1
            try:
                return await asyncio.shield(existing)
            except asyncio.CancelledError:
                if existing.cancelled():
                    # The leader died; take over rather than strand everyone.
                    self.handoffs += 1
                    continue
                raise  # this waiter itself was cancelled

    async def _lead(self, key: str, factory: Callable[[], Awaitable[T]]) -> T:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self.leads += 1
        try:
            value = await factory()
        except asyncio.CancelledError:
            self._finish(key, future)
            if not future.done():
                future.cancel()
            raise
        except BaseException as exc:
            self._finish(key, future)
            if not future.done():
                future.set_exception(exc)
                # The leader re-raises below; waiters may or may not exist.
                # Mark retrieved so an unobserved copy never warns.
                future.exception()
            raise
        else:
            self._finish(key, future)
            if not future.done():
                future.set_result(value)
            return value

    def _finish(self, key: str, future: asyncio.Future) -> None:
        """Remove the flight entry iff it is still ours (handoff-safe)."""
        if self._inflight.get(key) is future:
            del self._inflight[key]
