"""The shared facility core: one code path for sessions and the service.

:class:`FacilityCore` owns what used to live inside
:class:`repro.api.FacilitySession` — the calibrated node model, the
in-memory :class:`~repro.engine.cache.LRUCache` and the optional on-disk
:class:`~repro.engine.cache.SweepStore` — and exposes the paper's §2–§5
questions as *stateless* methods over an explicit :class:`SessionParams`.

Both front ends are thin clients of this object:

* ``FacilitySession`` binds one ``SessionParams`` at construction and
  forwards every method (the single-user path);
* :class:`repro.service.FacilityService` parses params out of request
  envelopes and shares **one** core across thousands of concurrent
  sessions, so every tenant sees the same caches (the multi-tenant path).

Because both paths end in the same core methods over the same engine
entry points, service-mode answers are bit-identical to direct session
calls — the acceptance gate ``benchmarks/bench_service.py`` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping

from ..core.decision import ARCHER2_WINTER_2022, DecisionEngine, OperatingPointScore, Priorities
from ..core.efficiency import (
    BASELINE_CONFIG,
    POST_FREQ_CONFIG,
    BenchmarkComparison,
    OperatingConfig,
    compare_app,
    comparison_table,
)
from ..core.emissions import EmbodiedProfile, EmissionsModel
from ..core.regimes import OptimisationTarget, Regime, advice, classify_ci
from ..engine.cache import LRUCache, SweepStore
from ..engine.plan import CIScenario, SweepSpec
from ..engine.runner import SweepResult, evaluate_scenario, run_sweep
from ..errors import ConfigurationError
from ..grid.trajectory import lifetime_average_ci
from ..node.calibration import build_node_model
from ..node.determinism import DeterminismMode
from ..node.pstates import FrequencySetting

__all__ = ["SessionParams", "FacilityCore"]

#: ARCHER2 Winter-2022 grid carbon intensity, gCO2/kWh (paper §2).
DEFAULT_CI = 190.0


def _parse_config(value: object, field: str) -> OperatingConfig:
    """An :class:`OperatingConfig` from a wire mapping or a config object."""
    if isinstance(value, OperatingConfig):
        return value
    if isinstance(value, Mapping):
        try:
            return OperatingConfig(
                FrequencySetting(value["frequency"]),
                DeterminismMode(value["bios_mode"]),
            )
        except (KeyError, ValueError) as exc:
            raise ConfigurationError(
                f"{field} must carry 'frequency' and 'bios_mode' enum values: {exc}"
            ) from None
    raise ConfigurationError(
        f"{field} must be an OperatingConfig or a mapping, got {value!r}"
    )


@dataclass(frozen=True)
class SessionParams:
    """One session's facility configuration, independent of any front end.

    Defaults are the ARCHER2 case study: 5,860 nodes at 90 % utilisation,
    a 6-year lifetime, the Winter-2022 UK grid, and the paper's embodied
    audit. Validation happens through the same :class:`SweepSpec`
    validators the engine uses (see :meth:`FacilityCore.point_spec`).
    """

    n_nodes: int = 5860
    utilisation: float = 0.9
    lifetime_years: float = 6.0
    ci: CIScenario = None  # type: ignore[assignment]  # resolved in __post_init__
    embodied_per_node_tco2e: float = 1.5
    embodied_overhead_tco2e: float = 1210.0
    compute_activity: float = 0.3
    memory_activity: float = 0.7
    config: OperatingConfig = BASELINE_CONFIG

    def __post_init__(self) -> None:
        ci = self.ci
        if ci is None:
            ci = CIScenario.flat(DEFAULT_CI)
        elif not isinstance(ci, CIScenario):
            ci = CIScenario.flat(float(ci))
        object.__setattr__(self, "ci", ci)
        object.__setattr__(self, "n_nodes", int(self.n_nodes))
        object.__setattr__(self, "config", _parse_config(self.config, "config"))

    @classmethod
    def from_mapping(cls, params: Mapping) -> "SessionParams":
        """Build params from a request-envelope mapping (unknown keys ignored).

        ``ci_g_per_kwh`` (a float) and ``ci`` (a canonical
        :meth:`CIScenario.to_canonical` mapping) are both accepted;
        ``config`` is a ``{"frequency": ..., "bios_mode": ...}`` mapping of
        enum values.
        """
        kwargs: dict = {}
        for field in (
            "n_nodes",
            "utilisation",
            "lifetime_years",
            "embodied_per_node_tco2e",
            "embodied_overhead_tco2e",
            "compute_activity",
            "memory_activity",
        ):
            if field in params:
                kwargs[field] = params[field]
        if "ci" in params:
            ci = params["ci"]
            kwargs["ci"] = (
                ci if isinstance(ci, CIScenario) else CIScenario.from_canonical(ci)
            )
        elif "ci_g_per_kwh" in params:
            kwargs["ci"] = CIScenario.flat(float(params["ci_g_per_kwh"]))
        if "config" in params:
            kwargs["config"] = _parse_config(params["config"], "config")
        return cls(**kwargs)


class FacilityCore:
    """Shared caches plus the §2–§5 questions as methods over explicit params.

    One core per process is the intended deployment: every session and
    every service tenant funnels through the same ``memory_cache`` and
    (when ``cache_dir`` is given) the same content-addressed ``store``, so
    a sweep any client has paid for is free for all of them.

    ``runner`` is the sweep entry point (default
    :func:`repro.engine.runner.run_sweep`); tests substitute an
    instrumented callable to count real evaluations under coalescing.
    """

    def __init__(
        self,
        *,
        cache_dir: str | Path | None = None,
        memory_cache: LRUCache | None = None,
        store: SweepStore | None = None,
        runner: Callable[..., SweepResult] = run_sweep,
    ) -> None:
        if store is not None and cache_dir is not None:
            raise ConfigurationError("pass either store or cache_dir, not both")
        self.node_model = build_node_model()
        self.memory_cache = memory_cache if memory_cache is not None else LRUCache()
        self.store = store if store is not None else (
            SweepStore(cache_dir) if cache_dir is not None else None
        )
        self.runner = runner

    # -- internals ---------------------------------------------------------

    def point_spec(
        self, params: SessionParams, config: OperatingConfig | None = None
    ) -> SweepSpec:
        """A single-scenario spec pinning every axis to the session values."""
        config = config or params.config
        return SweepSpec(
            frequencies=(config.setting,),
            bios_modes=(config.mode,),
            ci_scenarios=(params.ci,),
            utilisations=(params.utilisation,),
            node_counts=(params.n_nodes,),
            lifetimes_years=(params.lifetime_years,),
            embodied_per_node_tco2e=params.embodied_per_node_tco2e,
            embodied_overhead_tco2e=params.embodied_overhead_tco2e,
            compute_activity=params.compute_activity,
            memory_activity=params.memory_activity,
        )

    def evaluate_point(
        self, params: SessionParams, config: OperatingConfig | None = None
    ) -> dict[str, float]:
        """One scenario through the scalar oracle (the sessions' hot path)."""
        spec = self.point_spec(params, config)
        return evaluate_scenario(spec, spec.scenario(0), self.node_model)

    # -- §2: emissions and regimes -----------------------------------------

    def mean_ci_g_per_kwh(self, params: SessionParams) -> float:
        """Lifetime-average carbon intensity of the session's grid scenario."""
        return lifetime_average_ci(params.ci.trajectory(), params.lifetime_years)

    def mean_power_kw(
        self, params: SessionParams, config: OperatingConfig | None = None
    ) -> float:
        """Mean facility draw (busy/idle blended by utilisation), kW."""
        return self.evaluate_point(params, config)["mean_power_kw"]

    def emissions_model(
        self, params: SessionParams, config: OperatingConfig | None = None
    ) -> EmissionsModel:
        """The scope-2/scope-3 model at one operating point."""
        return EmissionsModel(
            embodied=EmbodiedProfile(
                total_tco2e=params.embodied_overhead_tco2e
                + params.embodied_per_node_tco2e * params.n_nodes,
                lifetime_years=params.lifetime_years,
            ),
            mean_power_kw=self.mean_power_kw(params, config),
        )

    def emissions(
        self, params: SessionParams, config: OperatingConfig | None = None
    ) -> dict[str, float]:
        """Lifetime emissions at one operating point (the scalar engine row)."""
        return self.evaluate_point(params, config)

    def classify_regime(
        self, params: SessionParams, ci_g_per_kwh: float | None = None
    ) -> Regime:
        """The §2 regime at a carbon intensity (default: the session mean)."""
        ci = self.mean_ci_g_per_kwh(params) if ci_g_per_kwh is None else ci_g_per_kwh
        return classify_ci(ci)

    def optimisation_target(
        self, params: SessionParams, ci_g_per_kwh: float | None = None
    ) -> OptimisationTarget:
        """What the §2 regime says to optimise for."""
        return advice(self.classify_regime(params, ci_g_per_kwh))

    # -- §3/§4: efficiency -------------------------------------------------

    def efficiency(
        self,
        params: SessionParams,
        candidate: OperatingConfig = POST_FREQ_CONFIG,
        baseline: OperatingConfig | None = None,
        app_name: str | None = None,
    ) -> list[BenchmarkComparison]:
        """Tables 3/4-style perf/energy ratios of ``candidate`` vs ``baseline``."""
        from ..workload.applications import full_catalogue, paper_curated_apps

        baseline = baseline or params.config
        catalogue = full_catalogue()
        if app_name is not None:
            try:
                app = catalogue[app_name]
            except KeyError:
                raise ConfigurationError(
                    f"unknown app {app_name!r}; choose from {sorted(catalogue)}"
                ) from None
            return [compare_app(app, candidate, baseline, self.node_model)]
        curated = {
            name: app for name, app in catalogue.items() if name in paper_curated_apps()
        }
        return comparison_table(curated, candidate, baseline, self.node_model)

    # -- §5: decisions ------------------------------------------------------

    def advise(
        self, params: SessionParams, priorities: Priorities = ARCHER2_WINTER_2022
    ) -> OperatingPointScore:
        """Recommended operating point for the declared §5 priorities."""
        from ..workload.mix import archer2_mix

        engine = DecisionEngine(
            mix=archer2_mix(),
            node_model=self.node_model,
            emissions_model=self.emissions_model(params),
            ci_g_per_kwh=self.mean_ci_g_per_kwh(params),
            baseline=params.config,
        )
        return engine.recommend(priorities)

    # -- sweeps --------------------------------------------------------------

    def default_spec(self, params: SessionParams, **overrides) -> SweepSpec:
        """The session's default grid with spec-field ``overrides`` applied."""
        fields = dict(
            utilisations=(params.utilisation,),
            node_counts=(params.n_nodes,),
            lifetimes_years=(params.lifetime_years,),
            embodied_per_node_tco2e=params.embodied_per_node_tco2e,
            embodied_overhead_tco2e=params.embodied_overhead_tco2e,
            compute_activity=params.compute_activity,
            memory_activity=params.memory_activity,
        )
        fields.update(overrides)
        return SweepSpec(**fields)

    def sweep(
        self,
        params: SessionParams,
        spec: SweepSpec | None = None,
        *,
        chunk_size: int = 4096,
        workers: int = 0,
        progress: Callable[[int, int, str], None] | None = None,
        **overrides,
    ) -> SweepResult:
        """Evaluate a scenario grid through the shared cached engine.

        With no arguments, sweeps every frequency × BIOS mode × default CI
        scenario at the session's utilisation, node count and lifetime.
        ``overrides`` are :class:`SweepSpec` fields; pass a full ``spec``
        for complete control (the two are mutually exclusive).
        """
        if spec is not None and overrides:
            raise ConfigurationError("pass either a spec or field overrides, not both")
        if spec is None:
            spec = self.default_spec(params, **overrides)
        return self.runner(
            spec,
            chunk_size=chunk_size,
            store=self.store,
            memory_cache=self.memory_cache,
            workers=workers,
            progress=progress,
        )

    def invalidate_caches(self) -> None:
        """Drop every cached sweep (memory, and disk when configured)."""
        self.memory_cache.clear()
        if self.store is not None:
            self.store.clear()
