"""Versioned request/response envelopes and structured error codes.

Every service exchange — in-process or over the HTTP front — is a pair of
JSON-able envelopes:

* request: ``{"v": 1, "method": ..., "params": {...}, "tenant": ...}``
* response: ``{"v": 1, "ok": true, "result": {...}}`` or
  ``{"v": 1, "ok": false, "error": {"code": ..., "type": ..., "message": ...}}``

Exceptions from :mod:`repro.errors` map to *structured codes* (a
``ConfigurationError`` becomes ``"bad-request"``, admission refusals
``"rate-limited"``/``"overloaded"``…) instead of stringified tracebacks, so
clients can branch on ``error["code"]`` without parsing prose.

:class:`ServiceResponse` implements the library-wide
:class:`repro.results.Result` protocol — a response exports through
:func:`repro.results.write_result` like any experiment artefact — and its
:meth:`ServiceResponse.wire_json` is canonical (sorted keys, compact
separators), which is what makes the service-vs-session byte-identity gate
in ``benchmarks/bench_service.py`` meaningful.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping

from ..core.reporting import render_table
from ..errors import (
    AnalysisError,
    CalibrationError,
    CheckpointError,
    ConfigurationError,
    ExperimentError,
    HpcemError,
    MonitoringError,
    SchedulingError,
    ServiceError,
    TelemetryError,
    UnitError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "METHODS",
    "error_code",
    "ServiceRequest",
    "ServiceResponse",
]

#: Version of the request/response envelope semantics. Bumping it is a
#: breaking wire change; responses always echo the version they speak.
PROTOCOL_VERSION = 1

#: The routable methods, mirroring the FacilitySession surface plus the
#: scheduler comparison ("sched compare" on the CLI).
METHODS = (
    "emissions",
    "classify_regime",
    "efficiency",
    "advise",
    "sweep",
    "sched_compare",
)

#: Exception class → structured error code, most specific first.
_ERROR_CODES: tuple[tuple[type[Exception], str], ...] = (
    (ConfigurationError, "bad-request"),
    (UnitError, "bad-request"),
    (AnalysisError, "bad-request"),
    (CalibrationError, "calibration-error"),
    (SchedulingError, "scheduling-error"),
    (TelemetryError, "telemetry-error"),
    (CheckpointError, "checkpoint-error"),
    (MonitoringError, "monitoring-error"),
    (ExperimentError, "experiment-error"),
    (HpcemError, "service-error"),
)


def error_code(exc: BaseException) -> str:
    """The structured code one exception maps to.

    ``ServiceError`` (and its admission subclasses) carry their own code;
    other library errors map by class; anything else is ``internal-error``.
    """
    if isinstance(exc, ServiceError):
        return exc.code
    for klass, code in _ERROR_CODES:
        if isinstance(exc, klass):
            return code
    return "internal-error"


def _canonical_json(data: object) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ServiceRequest:
    """One routed call: a method name plus its JSON-able params.

    ``request_key`` is the SHA-256 of the canonical ``(v, method, params)``
    form — deliberately *excluding* the tenant, so identical questions from
    different tenants coalesce into one computation.
    """

    method: str
    params: Mapping = field(default_factory=dict)
    tenant: str = "default"

    def __post_init__(self) -> None:
        if not isinstance(self.method, str) or not self.method:
            raise ServiceError(
                f"method must be a non-empty string, got {self.method!r}"
            )
        if not isinstance(self.params, Mapping):
            raise ServiceError(f"params must be a mapping, got {self.params!r}")
        if not isinstance(self.tenant, str) or not self.tenant:
            raise ServiceError(
                f"tenant must be a non-empty string, got {self.tenant!r}"
            )
        object.__setattr__(self, "params", dict(self.params))

    @property
    def request_key(self) -> str:
        """Content address of the question (tenant-independent)."""
        payload = _canonical_json(
            {"v": PROTOCOL_VERSION, "method": self.method, "params": self.params}
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_wire(self) -> dict:
        """The versioned JSON-able request envelope."""
        return {
            "v": PROTOCOL_VERSION,
            "method": self.method,
            "params": dict(self.params),
            "tenant": self.tenant,
        }

    @classmethod
    def from_wire(cls, data: object) -> "ServiceRequest":
        """Parse and validate a request envelope (raises ``ServiceError``)."""
        if not isinstance(data, Mapping):
            raise ServiceError(f"request envelope must be a mapping, got {data!r}")
        version = data.get("v")
        if version != PROTOCOL_VERSION:
            raise ServiceError(
                f"unsupported envelope version {version!r}; this service "
                f"speaks v{PROTOCOL_VERSION}",
                code="unsupported-version",
            )
        if "method" not in data:
            raise ServiceError("request envelope is missing 'method'")
        return cls(
            method=data["method"],
            params=data.get("params", {}),
            tenant=data.get("tenant", "default"),
        )


@dataclass(frozen=True)
class ServiceResponse:
    """One answered request, in the versioned ``ok/result|error`` envelope.

    Implements the :class:`repro.results.Result` protocol: ``to_dict`` *is*
    the envelope, ``to_table`` renders it for humans, ``to_csv_rows``
    flattens it for plotting tools.
    """

    ok: bool
    result: dict | None = None
    error: dict | None = None
    request_key: str = ""
    #: Provenance, never part of the envelope: "computed", "coalesced".
    served_by: str = "computed"

    def __post_init__(self) -> None:
        if self.ok == (self.error is not None) or self.ok != (self.result is not None):
            raise ServiceError(
                "a response carries exactly one of result (ok) or error (not ok)"
            )

    @classmethod
    def success(
        cls, result: dict, *, request_key: str = "", served_by: str = "computed"
    ) -> "ServiceResponse":
        """An ``ok`` envelope around one JSON-able result payload."""
        return cls(
            ok=True, result=result, request_key=request_key, served_by=served_by
        )

    @classmethod
    def failure(
        cls, exc: BaseException, *, request_key: str = ""
    ) -> "ServiceResponse":
        """A structured error envelope for one exception."""
        error: dict = {
            "code": error_code(exc),
            "type": type(exc).__name__,
            "message": str(exc),
        }
        retry = getattr(exc, "retry_after_s", None)
        if retry is not None:
            error["retry_after_s"] = float(retry)
        return cls(ok=False, error=error, request_key=request_key)

    # -- Result protocol ----------------------------------------------------

    @property
    def result_id(self) -> str:
        """Stable identifier derived from the request content hash."""
        suffix = self.request_key[:12] if self.request_key else "unkeyed"
        return f"RESP-{suffix}"

    def to_dict(self) -> dict:
        """The versioned JSON envelope: ``v``, ``ok``, ``result`` | ``error``."""
        envelope: dict = {"v": PROTOCOL_VERSION, "ok": self.ok}
        if self.ok:
            envelope["result"] = self.result
        else:
            envelope["error"] = self.error
        return envelope

    def wire_json(self) -> str:
        """Canonical JSON of the envelope (sorted keys, compact separators)."""
        return _canonical_json(self.to_dict())

    def to_table(self) -> str:
        """Rendered key/value table of the envelope."""
        rows = [[key, value] for key, value in self._flat_items()]
        status = "ok" if self.ok else f"error:{self.error['code']}"
        return render_table(
            ["field", "value"],
            rows,
            title=f"[{self.result_id}] service response — {status} (v{PROTOCOL_VERSION})",
        )

    def to_csv_rows(self) -> dict[str, list[list[str]]]:
        """One CSV ("response") flattening the envelope to field/value rows."""
        rows = [["field", "value"]]
        rows += [[key, value] for key, value in self._flat_items()]
        return {"response": rows}

    def _flat_items(self) -> list[tuple[str, str]]:
        items: list[tuple[str, str]] = [("v", str(PROTOCOL_VERSION)), ("ok", str(self.ok).lower())]
        payload = self.result if self.ok else self.error
        prefix = "result" if self.ok else "error"

        def walk(prefix: str, value: object) -> None:
            if isinstance(value, Mapping):
                for key in sorted(value):
                    walk(f"{prefix}.{key}", value[key])
            elif isinstance(value, (list, tuple)):
                items.append((prefix, _canonical_json(list(value))))
            else:
                items.append((prefix, json.dumps(value)))

        walk(prefix, payload)
        return items
