"""Thin stdlib HTTP/JSON front over :class:`FacilityService`.

No web framework: a few dozen lines of :func:`asyncio.start_server` HTTP
parsing, because the service *is* the in-process object — HTTP is just one
more way to deliver an envelope to ``service.handle``. Everything stays on
one event loop, which is what lets requests arriving over separate
connections coalesce into one evaluation.

Routes:

* ``POST /v1/request`` — body is a request envelope, response is the
  versioned response envelope. Structured error codes map onto HTTP
  status (``rate-limited``/``overloaded`` → 429 with ``Retry-After``).
* ``GET /v1/health`` — liveness plus in-flight depth.
* ``GET /v1/metrics`` — the full :meth:`ServiceMetrics.state_dict`.
"""

from __future__ import annotations

import asyncio
import json

from .envelope import PROTOCOL_VERSION, ServiceResponse
from .service import FacilityService

__all__ = ["ServiceHTTPServer", "http_status"]

#: Structured error code → HTTP status. Admission refusals are 429s (the
#: client should back off and retry); malformed envelopes are 400s;
#: anything unexpected is a 500.
_STATUS_BY_CODE = {
    "rate-limited": 429,
    "overloaded": 429,
    "bad-request": 400,
    "unknown-method": 400,
    "unsupported-version": 400,
    "internal-error": 500,
}


def http_status(response: ServiceResponse) -> int:
    """The HTTP status one response envelope travels under."""
    if response.ok:
        return 200
    return _STATUS_BY_CODE.get(response.error["code"], 500)


class ServiceHTTPServer:
    """Serves one :class:`FacilityService` over a listening socket."""

    def __init__(
        self, service: FacilityService, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and start accepting; resolves ``self.port`` when 0."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and wait for the listener to close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Run until cancelled (call :meth:`start` first)."""
        assert self._server is not None, "call start() before serve_forever()"
        await self._server.serve_forever()

    # -- connection handling ------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                status, payload, extra = await self._route(method, path, body)
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._write_response(
                    writer, status, payload, extra, keep_alive
                )
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            pass  # client went away or spoke garbage; drop the connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict, dict[str, str]]:
        if method == "GET" and path == "/v1/health":
            return (
                200,
                {
                    "v": PROTOCOL_VERSION,
                    "ok": True,
                    "in_flight": self.service.in_flight,
                },
                {},
            )
        if method == "GET" and path == "/v1/metrics":
            return 200, self.service.metrics.state_dict(), {}
        if method == "POST" and path == "/v1/request":
            try:
                envelope = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                return (
                    400,
                    {
                        "v": PROTOCOL_VERSION,
                        "ok": False,
                        "error": {
                            "code": "bad-request",
                            "type": "JSONDecodeError",
                            "message": "request body is not valid JSON",
                        },
                    },
                    {},
                )
            response = await self.service.handle(envelope)
            extra: dict[str, str] = {}
            if not response.ok and "retry_after_s" in response.error:
                extra["Retry-After"] = str(
                    max(1, round(response.error["retry_after_s"]))
                )
            return http_status(response), response.to_dict(), extra
        return (
            404,
            {
                "v": PROTOCOL_VERSION,
                "ok": False,
                "error": {
                    "code": "not-found",
                    "type": "LookupError",
                    "message": f"no route for {method} {path}",
                },
            },
            {},
        )

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        extra_headers: dict[str, str],
        keep_alive: bool,
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   429: "Too Many Requests", 500: "Internal Server Error"}
        body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        head = [
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head += [f"{name}: {value}" for name, value in extra_headers.items()]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()
