"""Service accounting: every request in is served, rejected, or failed.

The live pipeline's discipline (``PipelineMetrics.reconciles()``, PR 3)
applied to the request plane::

    requests_in == served + rejected + failed        (per tenant)

* ``served`` — an ``ok`` envelope went back;
* ``rejected`` — admission control refused the request (rate-limited or
  overloaded) before any work was done;
* ``failed`` — the handler raised (bad request, internal error), or the
  request was cancelled/lost to a restart after admission.

Nothing is allowed to fall between the buckets: the selftest, the soak CI
job and ``benchmarks/bench_service.py`` all gate on :meth:`ServiceMetrics.
reconciles` under load *and* across kill/resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServiceMetrics"]


def _bump(counter: dict[str, int], key: str, n: int = 1) -> None:
    counter[key] = counter.get(key, 0) + n


@dataclass
class ServiceMetrics:
    """Counters describing one service's lifetime, keyed per tenant/method."""

    requests_in: dict[str, int] = field(default_factory=dict)
    served: dict[str, int] = field(default_factory=dict)
    rejected: dict[str, int] = field(default_factory=dict)
    failed: dict[str, int] = field(default_factory=dict)
    #: Requests answered by attaching to another request's in-flight
    #: evaluation (single-flight waiters), per tenant. A subset of served.
    coalesced: dict[str, int] = field(default_factory=dict)
    #: Actual handler executions, per method — the denominator of the
    #: coalescing gate (evaluations ≪ requests under identical load).
    evaluations: dict[str, int] = field(default_factory=dict)
    #: Rejection breakdown by structured error code ("rate-limited", …).
    rejections_by_code: dict[str, int] = field(default_factory=dict)
    #: Failure breakdown by structured error code ("bad-request", …).
    failures_by_code: dict[str, int] = field(default_factory=dict)
    #: Requests in flight when a restart snapshot was restored; they were
    #: counted in and folded into ``failed`` so the identity survives.
    lost_to_restart: int = 0
    in_flight_peak: int = 0

    # -- recording ---------------------------------------------------------

    def record_in(self, tenant: str) -> None:
        """Count one request arriving for a tenant."""
        _bump(self.requests_in, tenant)

    def record_served(self, tenant: str, *, coalesced: bool = False) -> None:
        """Count one ok response (``coalesced`` when it joined another flight)."""
        _bump(self.served, tenant)
        if coalesced:
            _bump(self.coalesced, tenant)

    def record_rejected(self, tenant: str, code: str) -> None:
        """Count one admission refusal."""
        _bump(self.rejected, tenant)
        _bump(self.rejections_by_code, code)

    def record_failed(self, tenant: str, code: str) -> None:
        """Count one failed request."""
        _bump(self.failed, tenant)
        _bump(self.failures_by_code, code)

    def record_evaluation(self, method: str) -> None:
        """Count one actual handler execution."""
        _bump(self.evaluations, method)

    def observe_in_flight(self, depth: int) -> None:
        """Track the deepest concurrent in-flight watermark."""
        self.in_flight_peak = max(self.in_flight_peak, depth)

    # -- identity ----------------------------------------------------------

    @property
    def total_requests_in(self) -> int:
        """Requests arrived across all tenants."""
        return sum(self.requests_in.values())

    @property
    def total_served(self) -> int:
        """Ok responses across all tenants."""
        return sum(self.served.values())

    @property
    def total_rejected(self) -> int:
        """Admission refusals across all tenants."""
        return sum(self.rejected.values())

    @property
    def total_failed(self) -> int:
        """Failed requests across all tenants."""
        return sum(self.failed.values())

    @property
    def total_coalesced(self) -> int:
        """Requests served by joining another flight, across all tenants."""
        return sum(self.coalesced.values())

    @property
    def total_evaluations(self) -> int:
        """Handler executions across all methods."""
        return sum(self.evaluations.values())

    def reconciles(self) -> bool:
        """Whether ``requests_in == served + rejected + failed`` per tenant."""
        tenants = (
            set(self.requests_in) | set(self.served) | set(self.rejected)
            | set(self.failed)
        )
        return all(
            self.requests_in.get(tenant, 0)
            == self.served.get(tenant, 0)
            + self.rejected.get(tenant, 0)
            + self.failed.get(tenant, 0)
            for tenant in tenants
        )

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of every counter."""
        return {
            "requests_in": dict(self.requests_in),
            "served": dict(self.served),
            "rejected": dict(self.rejected),
            "failed": dict(self.failed),
            "coalesced": dict(self.coalesced),
            "evaluations": dict(self.evaluations),
            "rejections_by_code": dict(self.rejections_by_code),
            "failures_by_code": dict(self.failures_by_code),
            "lost_to_restart": self.lost_to_restart,
            "in_flight_peak": self.in_flight_peak,
        }

    def load_state_dict(self, state: dict) -> None:
        """Overwrite every counter in place from a :meth:`state_dict` snapshot."""
        self.requests_in = dict(state["requests_in"])
        self.served = dict(state["served"])
        self.rejected = dict(state["rejected"])
        self.failed = dict(state["failed"])
        self.coalesced = dict(state["coalesced"])
        self.evaluations = dict(state["evaluations"])
        self.rejections_by_code = dict(state["rejections_by_code"])
        self.failures_by_code = dict(state["failures_by_code"])
        self.lost_to_restart = state["lost_to_restart"]
        self.in_flight_peak = state["in_flight_peak"]
