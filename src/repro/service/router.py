"""Request routing: versioned envelopes → FacilityCore calls → JSON payloads.

One handler per :data:`~repro.service.envelope.METHODS` entry. Handlers are
pure functions of ``(core, request)``: they parse :class:`~repro.service.
core.SessionParams` out of the request's params, call the shared core, and
serialise the answer to a JSON-able payload. The payload builders are
module-level so the parity benchmark can build the *expected* payload from
a direct :class:`~repro.api.FacilitySession` answer through exactly the
same serialisation — byte-identity then tests the service plumbing, not
the formatter.
"""

from __future__ import annotations

from typing import Mapping

from ..core.decision import ARCHER2_WINTER_2022, OperatingPointScore, Priorities
from ..core.efficiency import POST_FREQ_CONFIG, BenchmarkComparison
from ..engine.plan import CIScenario, SweepSpec
from ..engine.runner import SweepResult
from ..errors import ConfigurationError, ServiceError
from .core import FacilityCore, SessionParams, _parse_config
from .envelope import METHODS, ServiceRequest

__all__ = [
    "ServiceRouter",
    "payload_emissions",
    "payload_regime",
    "payload_efficiency",
    "payload_advice",
    "payload_sweep",
]


# -- payload builders (shared with the parity benchmark) -----------------------


def payload_emissions(row: Mapping[str, float]) -> dict:
    """The scalar engine row as a plain JSON-able mapping."""
    return {name: float(value) for name, value in row.items()}


def payload_regime(regime, target, ci_g_per_kwh: float) -> dict:
    """Regime classification with its optimisation target."""
    return {
        "ci_g_per_kwh": float(ci_g_per_kwh),
        "regime": regime.value,
        "target": target.value,
    }


def payload_efficiency(rows: list[BenchmarkComparison]) -> dict:
    """Tables 3/4-style comparison rows."""
    return {
        "rows": [
            {
                "app_name": row.app_name,
                "nodes": int(row.nodes),
                "perf_ratio": float(row.perf_ratio),
                "energy_ratio": float(row.energy_ratio),
                "paper_perf_ratio": row.paper_perf_ratio,
                "paper_energy_ratio": row.paper_energy_ratio,
            }
            for row in rows
        ]
    }


def payload_advice(score: OperatingPointScore) -> dict:
    """The recommended operating point plus its mix-weighted ratios."""
    return {
        "config": {
            "frequency": score.config.setting.value,
            "bios_mode": score.config.mode.value,
            "label": score.config.label(),
        },
        "mean_perf_ratio": float(score.mean_perf_ratio),
        "mean_energy_ratio": float(score.mean_energy_ratio),
        "mean_power_ratio": float(score.mean_power_ratio),
        "emissions_ratio": float(score.emissions_ratio),
        "cost_ratio": float(score.cost_ratio),
        "score": float(score.score),
        "feasible": bool(score.feasible),
    }


def payload_sweep(result: SweepResult) -> dict:
    """A sweep as its summary plus the full deterministic CSV grid.

    ``csv`` reuses :meth:`SweepResult.to_csv_rows` — floats rendered with
    ``repr`` — so a cache replay that reproduces the same float64 values
    reproduces the same payload bytes.
    """
    return {"summary": result.to_dict(), "csv": result.to_csv_rows()}


# -- routing -------------------------------------------------------------------


class ServiceRouter:
    """Maps envelope methods onto one shared :class:`FacilityCore`."""

    def __init__(self, core: FacilityCore) -> None:
        self.core = core
        self._handlers = {
            "emissions": self._emissions,
            "classify_regime": self._classify_regime,
            "efficiency": self._efficiency,
            "advise": self._advise,
            "sweep": self._sweep,
            "sched_compare": self._sched_compare,
        }
        assert set(self._handlers) == set(METHODS)

    def dispatch(self, request: ServiceRequest) -> dict:
        """Run one request's handler; returns the JSON-able result payload."""
        handler = self._handlers.get(request.method)
        if handler is None:
            raise ServiceError(
                f"unknown method {request.method!r}; choose from {METHODS}",
                code="unknown-method",
            )
        return handler(request.params)

    # -- handlers ----------------------------------------------------------

    def _emissions(self, params: Mapping) -> dict:
        session = SessionParams.from_mapping(params)
        return payload_emissions(self.core.emissions(session))

    def _classify_regime(self, params: Mapping) -> dict:
        session = SessionParams.from_mapping(params)
        ci = params.get("at_ci_g_per_kwh")
        ci = float(ci) if ci is not None else self.core.mean_ci_g_per_kwh(session)
        return payload_regime(
            self.core.classify_regime(session, ci),
            self.core.optimisation_target(session, ci),
            ci,
        )

    def _efficiency(self, params: Mapping) -> dict:
        session = SessionParams.from_mapping(params)
        candidate = (
            _parse_config(params["candidate"], "candidate")
            if "candidate" in params
            else POST_FREQ_CONFIG
        )
        baseline = (
            _parse_config(params["baseline"], "baseline")
            if "baseline" in params
            else None
        )
        return payload_efficiency(
            self.core.efficiency(
                session, candidate, baseline, params.get("app_name")
            )
        )

    def _advise(self, params: Mapping) -> dict:
        session = SessionParams.from_mapping(params)
        priorities = ARCHER2_WINTER_2022
        if "priorities" in params:
            spec = params["priorities"]
            if not isinstance(spec, Mapping):
                raise ConfigurationError(
                    f"priorities must be a mapping of weights, got {spec!r}"
                )
            try:
                priorities = Priorities(**dict(spec))
            except TypeError as exc:
                raise ConfigurationError(f"bad priorities: {exc}") from None
        return payload_advice(self.core.advise(session, priorities))

    def _sweep(self, params: Mapping) -> dict:
        session = SessionParams.from_mapping(params)
        spec = None
        if "spec" in params:
            spec = SweepSpec.from_canonical(params["spec"])
        overrides = dict(params.get("overrides", {}))
        if "ci_scenarios" in overrides:
            overrides["ci_scenarios"] = tuple(
                ci if isinstance(ci, CIScenario) else CIScenario.from_canonical(ci)
                for ci in overrides["ci_scenarios"]
            )
        chunk_size = int(params.get("chunk_size", 4096))
        result = self.core.sweep(
            session, spec, chunk_size=chunk_size, **overrides
        )
        return payload_sweep(result)

    def _sched_compare(self, params: Mapping) -> dict:
        # Heavy subsystem: import lazily so the service core stays light.
        import numpy as np

        from ..grid.carbon_intensity import SCENARIOS, CarbonIntensityModel
        from ..scheduler.backfill import StaticEnvironment
        from ..scheduler.malleable import compare_rigid_malleable
        from ..units import SECONDS_PER_DAY
        from ..workload.generator import JobStreamConfig, JobStreamGenerator
        from ..workload.mix import archer2_mix

        days = float(params.get("days", 1.0))
        nodes = int(params.get("nodes", 128))
        seed = int(params.get("seed", 42))
        scenario = params.get("scenario", "balanced")
        if scenario not in SCENARIOS:
            raise ConfigurationError(
                f"unknown CI scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
            )
        if days <= 0 or nodes <= 0:
            raise ConfigurationError("days and nodes must be positive")
        t_end_s = days * SECONDS_PER_DAY

        rng = np.random.default_rng(seed)
        config = JobStreamConfig(
            n_facility_nodes=nodes,
            offered_load=float(params.get("offered_load", 0.95)),
            mean_runtime_s=4.0 * 3600.0,
            max_job_nodes=max(1, nodes // 4),
            malleable_fraction=float(params.get("malleable_fraction", 0.5)),
            shift_slack_mean_s=float(params.get("slack_hours", 2.0)) * 3600.0,
        )
        jobs = JobStreamGenerator(archer2_mix(), config, rng).generate_until(
            t_end_s * 0.9
        )
        ci_model = CarbonIntensityModel.from_scenario(scenario)
        ci = ci_model.series(0.0, t_end_s + SECONDS_PER_DAY, 1800.0, rng)
        comparison = compare_rigid_malleable(
            jobs,
            t_end_s,
            StaticEnvironment(node_model=self.core.node_model),
            ci,
            n_nodes=nodes,
            carbon_tick_interval_s=float(params.get("tick_minutes", 30.0)) * 60.0,
            seed=seed,
        )
        rigid, malleable = comparison.rigid, comparison.malleable
        return {
            "n_jobs": len(jobs),
            "rigid": {
                "tco2e": float(comparison.rigid_tco2e),
                "energy_kwh": float(rigid.total_energy_kwh()),
                "mean_utilisation": float(rigid.mean_utilisation()),
                "mean_bounded_stretch": float(rigid.mean_bounded_stretch()),
            },
            "malleable": {
                "tco2e": float(comparison.malleable_tco2e),
                "energy_kwh": float(malleable.total_energy_kwh()),
                "mean_utilisation": float(malleable.mean_utilisation()),
                "mean_bounded_stretch": float(malleable.mean_bounded_stretch()),
                "n_shifted": int(malleable.n_shifted),
                "n_shrinks": int(malleable.n_shrinks),
                "n_grows": int(malleable.n_grows),
            },
            "emissions_saving_tco2e": float(comparison.emissions_saving_tco2e),
            "energy_saving_kwh": float(comparison.energy_saving_kwh),
        }
