"""Deterministic in-process soak: thousands of clients, one service.

``repro serve --selftest`` (the CI ``service-soak`` job) runs this module:
one :class:`~repro.service.service.FacilityService` over one shared core,
driven by a few thousand concurrent simulated clients, then a checklist of
gates — every check is a named boolean in the report, and the process exit
code is the conjunction.

Phases:

1. **coalesce** — half the clients issue the *same* sweep concurrently;
   the gate is exactly **one** engine evaluation and byte-identical
   envelopes for every caller.
2. **mixed** — the other half issue a deterministic mix of methods/params
   across tenants; everything must be answered and accounted.
3. **parity** — the service's sweep payload must be byte-identical to the
   same question answered by a direct :class:`repro.api.FacilitySession`.
4. **rate-limit** — a noisy tenant with a tiny bucket gets structured
   ``rate-limited`` refusals; polite tenants are untouched.
5. **shed** — with ``max_in_flight`` forced to 1, concurrent arrivals are
   shed with ``overloaded``, never queued unboundedly.
6. **kill/resume** — snapshot mid-flight, JSON round-trip, restore into a
   fresh service; the in-flight request folds into ``failed``
   (``lost-to-restart``) and the accounting identity survives.

Everything is seeded and clocked by injection — the selftest is replayable
bit-for-bit, which is why it can gate CI.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from .admission import AdmissionController
from .core import FacilityCore
from .envelope import ServiceRequest
from .metrics import ServiceMetrics
from .router import payload_sweep
from .service import FacilityService

__all__ = ["run_selftest", "format_report"]

#: The sweep every coalescing client asks for: tiny but a real grid.
_COALESCE_SWEEP = {
    "overrides": {"utilisations": [0.5, 0.9], "node_counts": [1024]},
    "chunk_size": 256,
}


def _mixed_request(rng: np.random.Generator, i: int, n_tenants: int) -> ServiceRequest:
    """One deterministic mixed-workload request (small shared param pools)."""
    tenant = f"tenant-{i % n_tenants}"
    kind = int(rng.integers(0, 10))
    if kind < 5:
        return ServiceRequest(
            "emissions",
            {"n_nodes": int(rng.choice([1024, 2048, 5860]))},
            tenant=tenant,
        )
    if kind < 8:
        return ServiceRequest(
            "classify_regime",
            {"at_ci_g_per_kwh": float(rng.choice([25.0, 190.0, 450.0]))},
            tenant=tenant,
        )
    if kind < 9:
        return ServiceRequest(
            "efficiency", {"app_name": "OpenSBLI TGV 1024^3"}, tenant=tenant
        )
    return ServiceRequest("advise", {}, tenant=tenant)


async def run_selftest(
    *, n_clients: int = 2000, n_tenants: int = 8, seed: int = 0
) -> dict:
    """Run every phase; returns the JSON-able report (``report["ok"]``)."""
    clock_s = [0.0]
    service = FacilityService(
        core=FacilityCore(),
        admission=AdmissionController(
            rate_per_s=1000.0, burst=float(2 * n_clients), max_in_flight=2 * n_clients
        ),
        metrics=ServiceMetrics(),
        clock=lambda: clock_s[0],
        seed=seed,
    )
    checks: dict[str, bool] = {}
    rng = service.rng  # drawing from it also exercises RNG persistence

    # -- phase 1: coalesce -------------------------------------------------
    n_coalesce = max(100, n_clients // 2)
    requests = [
        ServiceRequest("sweep", _COALESCE_SWEEP, tenant=f"tenant-{i % n_tenants}")
        for i in range(n_coalesce)
    ]
    responses = await asyncio.gather(*(service.handle(r) for r in requests))
    wires = {r.wire_json() for r in responses}
    checks["coalesce_all_ok"] = all(r.ok for r in responses)
    checks["coalesce_byte_identical"] = len(wires) == 1
    checks["coalesce_single_evaluation"] = (
        service.metrics.evaluations.get("sweep", 0) == 1
    )
    checks["coalesce_joins_accounted"] = (
        service.metrics.total_coalesced == n_coalesce - 1
    )

    # -- phase 2: mixed load ----------------------------------------------
    n_mixed = max(0, n_clients - n_coalesce)
    mixed = [_mixed_request(rng, i, n_tenants) for i in range(n_mixed)]
    mixed_responses = await asyncio.gather(*(service.handle(r) for r in mixed))
    checks["mixed_all_ok"] = all(r.ok for r in mixed_responses)
    checks["mixed_reconciles"] = service.metrics.reconciles()
    # Small param pools under full concurrency: far fewer evaluations than
    # requests is the whole point of the shared cache front.
    checks["mixed_coalesced"] = (
        n_mixed == 0 or service.metrics.total_evaluations < n_mixed
    )

    # -- phase 3: parity vs a direct session -------------------------------
    from ..api import FacilitySession

    session = FacilitySession()  # its own core and caches: independent path
    direct = payload_sweep(
        # lint: allow-blocking -- the parity phase runs the direct engine
        # path on purpose: the selftest is sequential, no tenant traffic
        # shares the loop while it computes
        session.sweep(
            chunk_size=_COALESCE_SWEEP["chunk_size"], **_COALESCE_SWEEP["overrides"]
        )
    )
    canonical = lambda data: json.dumps(  # noqa: E731
        data, sort_keys=True, separators=(",", ":")
    )
    checks["parity_byte_identical"] = canonical(direct) == canonical(
        responses[0].result
    )

    # -- phase 4: per-tenant rate limiting ----------------------------------
    service.admission.set_tenant_limits("noisy", rate_per_s=1.0, burst=5)
    noisy = [
        await service.call(
            "classify_regime", {"at_ci_g_per_kwh": 190.0}, tenant="noisy"
        )
        for _ in range(50)
    ]
    rate_limited = [
        r for r in noisy if not r.ok and r.error["code"] == "rate-limited"
    ]
    checks["rate_limit_shed"] = len(rate_limited) == 45
    checks["rate_limit_retry_after"] = all(
        r.error["retry_after_s"] > 0 for r in rate_limited
    )
    polite = await service.call(
        "classify_regime", {"at_ci_g_per_kwh": 190.0}, tenant="polite"
    )
    checks["rate_limit_isolated"] = polite.ok

    # -- phase 5: queue-depth shedding --------------------------------------
    saved_max = service.admission.max_in_flight
    service.admission.max_in_flight = 1
    burst = await asyncio.gather(
        *(
            service.call(
                "classify_regime",
                {"at_ci_g_per_kwh": 20.0 + i},  # distinct: no coalescing
                tenant="burst",
            )
            for i in range(20)
        )
    )
    service.admission.max_in_flight = saved_max
    shed = [r for r in burst if not r.ok and r.error["code"] == "overloaded"]
    checks["shed_overloaded"] = len(shed) == 19 and sum(r.ok for r in burst) == 1
    checks["shed_reconciles"] = service.metrics.reconciles()

    # -- phase 6: kill/resume mid-flight ------------------------------------
    victim = asyncio.ensure_future(
        service.call(
            "sweep",
            {"overrides": {"utilisations": [0.42]}, "chunk_size": 64},
            tenant="tenant-0",
        )
    )
    await asyncio.sleep(0)  # let it admit and lead its flight
    snapshot = json.loads(json.dumps(service.state_dict()))
    checks["snapshot_caught_in_flight"] = snapshot["in_flight"] == {"tenant-0": 1}
    victim.cancel()
    await asyncio.gather(victim, return_exceptions=True)

    resumed = FacilityService(
        core=FacilityCore(), clock=lambda: clock_s[0], seed=seed + 1
    )
    resumed.load_state_dict(snapshot)
    checks["resume_rng_restored"] = (
        resumed.rng.bit_generator.state["state"]
        == snapshot["rng_state"]["state"]
    )
    checks["resume_lost_folded"] = resumed.metrics.lost_to_restart == 1
    checks["resume_reconciles"] = resumed.metrics.reconciles()
    after = await asyncio.gather(
        *(
            resumed.call("emissions", {"n_nodes": 512 + i}, tenant="tenant-1")
            for i in range(8)
        )
    )
    checks["resume_serves"] = (
        all(r.ok for r in after) and resumed.metrics.reconciles()
    )

    await service.drain()
    checks["drained"] = service.in_flight == 0 and len(service.flights) == 0
    checks["final_reconciles"] = service.metrics.reconciles()

    return {
        "n_clients": n_clients,
        "n_tenants": n_tenants,
        "seed": seed,
        "ok": all(checks.values()),
        "checks": checks,
        "coalescing": {
            "leads": service.flights.leads,
            "joins": service.flights.joins,
            "handoffs": service.flights.handoffs,
        },
        "metrics": service.metrics.state_dict(),
    }


def format_report(report: dict) -> str:
    """Human-readable summary (the JSON report is the machine artefact)."""
    lines = [
        f"service selftest: {'PASS' if report['ok'] else 'FAIL'} "
        f"({report['n_clients']} clients, {report['n_tenants']} tenants, "
        f"seed {report['seed']})"
    ]
    for name, passed in report["checks"].items():
        lines.append(f"  [{'ok' if passed else 'FAIL'}] {name}")
    metrics = report["metrics"]
    lines.append(
        "  totals: in=%d served=%d rejected=%d failed=%d coalesced=%d evaluations=%d"
        % (
            sum(metrics["requests_in"].values()),
            sum(metrics["served"].values()),
            sum(metrics["rejected"].values()),
            sum(metrics["failed"].values()),
            sum(metrics["coalesced"].values()),
            sum(metrics["evaluations"].values()),
        )
    )
    return "\n".join(lines)
