"""The multi-tenant facility service: one shared cache, many sessions.

:class:`FacilityService` composes the pieces of this package into a single
request plane over one shared :class:`~repro.service.core.FacilityCore`:

1. parse/validate the versioned envelope (:mod:`~repro.service.envelope`);
2. admit or shed (:mod:`~repro.service.admission` — per-tenant token
   buckets, queue-depth shedding);
3. coalesce identical in-flight questions (:mod:`~repro.service.coalesce`
   — N concurrent identical sweeps cost exactly one evaluation);
4. dispatch to the shared core (:mod:`~repro.service.router`);
5. account the outcome (:mod:`~repro.service.metrics` — every request in
   is served, rejected or failed, per tenant).

The service is an ordinary asyncio object: ``await service.handle(req)``
from any task. The HTTP front (:mod:`~repro.service.http`) is a thin
stdlib adapter over exactly this method.

Time is injected (``clock=``; defaults to the running loop's clock) and
randomness is owned (``seed=``), so the whole service round-trips through
``state_dict``/``load_state_dict``: buckets, counters, RNG — and requests
in flight at snapshot time are folded into ``failed`` on restore
(``lost_to_restart``), keeping the accounting identity true across a
kill/resume.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Mapping

import numpy as np

from ..errors import AdmissionError, ConfigurationError, ServiceError
from .admission import AdmissionController
from .coalesce import SingleFlight
from .core import FacilityCore
from .envelope import ServiceRequest, ServiceResponse, error_code
from .metrics import ServiceMetrics
from .router import ServiceRouter

__all__ = ["FacilityService"]


class FacilityService:
    """Serves many tenants' facility questions over one shared core."""

    def __init__(
        self,
        *,
        core: FacilityCore | None = None,
        cache_dir=None,
        admission: AdmissionController | None = None,
        metrics: ServiceMetrics | None = None,
        clock: Callable[[], float] | None = None,
        seed: int = 0,
    ) -> None:
        """Build a service around ``core`` (or a fresh one over ``cache_dir``).

        ``clock`` is seconds-monotonic used for admission decisions; it
        defaults to the running event loop's clock. Tests inject a manual
        clock to make bucket refills deterministic.
        """
        if core is not None and cache_dir is not None:
            raise ConfigurationError("pass either core or cache_dir, not both")
        self.core = core if core is not None else FacilityCore(cache_dir=cache_dir)
        self.router = ServiceRouter(self.core)
        self.admission = admission if admission is not None else AdmissionController()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.flights = SingleFlight()
        self.rng = np.random.default_rng(seed)
        self._clock = clock
        self._in_flight: dict[str, int] = {}

    # -- request plane -----------------------------------------------------

    async def handle(self, request: ServiceRequest | Mapping) -> ServiceResponse:
        """Answer one request; always returns an envelope, never raises.

        (Except for :class:`asyncio.CancelledError`, which is accounted as
        a failure and then re-raised — the caller is going away.)
        """
        if isinstance(request, Mapping):
            tenant = request.get("tenant")
            tenant = tenant if isinstance(tenant, str) and tenant else "default"
            try:
                request = ServiceRequest.from_wire(request)
            except ServiceError as exc:
                self.metrics.record_in(tenant)
                self.metrics.record_failed(tenant, exc.code)
                return ServiceResponse.failure(exc)

        tenant = request.tenant
        key = request.request_key
        self.metrics.record_in(tenant)

        try:
            self.admission.admit(
                tenant, now_s=self._now(), in_flight=self.in_flight
            )
        except AdmissionError as exc:
            self.metrics.record_rejected(tenant, exc.code)
            return ServiceResponse.failure(exc, request_key=key)

        # No await between the join-peek and flights.run(): in a single
        # event loop nothing can change the flight table in between, so
        # the peek is an exact prediction.
        joining = key in self.flights
        self._in_flight[tenant] = self._in_flight.get(tenant, 0) + 1
        self.metrics.observe_in_flight(self.in_flight)

        async def evaluate() -> dict:
            # Yield once before computing so every concurrently-created
            # task reaches flights.run() and attaches as a waiter first.
            await asyncio.sleep(0)
            self.metrics.record_evaluation(request.method)
            # lint: allow-blocking -- the single-flight leader evaluates
            # in-loop by design: one bounded computation serves every
            # coalesced waiter, and moving it off-loop would break the
            # deterministic wire-parity guarantee (DESIGN.md, PR 9)
            return self.router.dispatch(request)

        try:
            payload = await self.flights.run(key, evaluate)
        except asyncio.CancelledError:
            self.metrics.record_failed(tenant, "cancelled")
            raise
        except Exception as exc:
            self.metrics.record_failed(tenant, error_code(exc))
            return ServiceResponse.failure(exc, request_key=key)
        else:
            self.metrics.record_served(tenant, coalesced=joining)
            return ServiceResponse.success(
                payload,
                request_key=key,
                served_by="coalesced" if joining else "computed",
            )
        finally:
            remaining = self._in_flight.get(tenant, 0) - 1
            if remaining > 0:
                self._in_flight[tenant] = remaining
            else:
                self._in_flight.pop(tenant, None)

    async def call(
        self, method: str, params: Mapping | None = None, *, tenant: str = "default"
    ) -> ServiceResponse:
        """Convenience: build the request envelope and :meth:`handle` it."""
        return await self.handle(
            ServiceRequest(method=method, params=dict(params or {}), tenant=tenant)
        )

    @property
    def in_flight(self) -> int:
        """Requests admitted and not yet answered, across all tenants."""
        return sum(self._in_flight.values())

    async def drain(self) -> None:
        """Wait until every admitted request has been answered."""
        while self.in_flight > 0 or len(self.flights) > 0:
            await asyncio.sleep(0)

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_running_loop().time()

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot: admission, metrics, RNG, in-flight.

        In-flight work cannot be snapshotted mid-computation; it is
        recorded per tenant so :meth:`load_state_dict` can fold it into
        ``failed`` and keep ``requests_in == served + rejected + failed``.
        """
        rng_state = self.rng.bit_generator.state
        return {
            "admission": self.admission.state_dict(),
            "metrics": self.metrics.state_dict(),
            "in_flight": {
                tenant: self._in_flight[tenant]
                for tenant in sorted(self._in_flight)
            },
            "inflight_keys": self.flights.inflight_keys(),
            "rng_state": {
                "bit_generator": rng_state["bit_generator"],
                "state": dict(rng_state["state"]),
                "has_uint32": int(rng_state["has_uint32"]),
                "uinteger": int(rng_state["uinteger"]),
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot into this (idle) service.

        Requests that were in flight when the snapshot was taken are
        accounted as failed with code ``"lost-to-restart"`` — the restarted
        process will never answer them — so the accounting identity holds
        across the kill/resume.
        """
        if self.in_flight:
            raise ServiceError(
                f"cannot load state into a service with {self.in_flight} "
                "requests in flight; drain first"
            )
        self.admission.load_state_dict(state["admission"])
        self.metrics.load_state_dict(state["metrics"])
        self.rng.bit_generator.state = {
            "bit_generator": state["rng_state"]["bit_generator"],
            "state": dict(state["rng_state"]["state"]),
            "has_uint32": state["rng_state"]["has_uint32"],
            "uinteger": state["rng_state"]["uinteger"],
        }
        lost = state["in_flight"]
        for tenant in sorted(lost):
            for _ in range(lost[tenant]):
                self.metrics.record_failed(tenant, "lost-to-restart")
            self.metrics.lost_to_restart += lost[tenant]
        # inflight_keys are informational: the computations died with the
        # old process, so the new service starts with an empty flight table.
        _ = state["inflight_keys"]
        self._in_flight = {}
