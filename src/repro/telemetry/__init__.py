"""Telemetry substrate: time series, power meters, recording, persistence."""

from .io import load_csv, load_npz, save_csv, save_npz
from .meters import MeterSpec, PowerMeter
from .quality import Gap, QualityReport, assess_quality, find_flatlines, find_gaps
from .recorder import CabinetPowerRecorder
from .series import TimeSeries
from .streaming import (
    ChunkedSeriesReader,
    MergingQuantileSketch,
    OnlineStats,
    P2Quantile,
    SeriesChunk,
    as_chunk_reader,
    stream_stats,
)

__all__ = [
    "TimeSeries",
    "OnlineStats",
    "P2Quantile",
    "MergingQuantileSketch",
    "SeriesChunk",
    "ChunkedSeriesReader",
    "as_chunk_reader",
    "stream_stats",
    "MeterSpec",
    "PowerMeter",
    "Gap",
    "QualityReport",
    "assess_quality",
    "find_gaps",
    "find_flatlines",
    "CabinetPowerRecorder",
    "save_csv",
    "load_csv",
    "save_npz",
    "load_npz",
]
