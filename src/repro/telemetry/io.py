"""Telemetry persistence: CSV (interchange) and NPZ (compact) round-trips."""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..errors import TelemetryError
from .series import TimeSeries

__all__ = ["save_csv", "load_csv", "save_npz", "load_npz"]

_CSV_HEADER = ("time_s", "value")


def save_csv(series: TimeSeries, path: str | Path) -> None:
    """Write a series as two-column CSV with a header row.

    NaN dropouts are written as empty fields, the common telemetry-export
    convention.
    """
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_HEADER)
        for t, v in zip(series.times_s, series.values):
            writer.writerow([f"{t:.6f}", "" if np.isnan(v) else f"{v:.6f}"])


def load_csv(path: str | Path, name: str = "") -> TimeSeries:
    """Read a series written by :func:`save_csv` (empty fields → NaN)."""
    path = Path(path)
    times: list[float] = []
    values: list[float] = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None or tuple(header) != _CSV_HEADER:
            raise TelemetryError(f"{path}: not a telemetry CSV (bad header {header!r})")
        for line, row in enumerate(reader, start=2):
            if len(row) != 2:
                raise TelemetryError(f"{path}:{line}: malformed row {row!r}")
            try:
                times.append(float(row[0]))
                values.append(float("nan") if row[1] == "" else float(row[1]))
            except ValueError as exc:
                raise TelemetryError(
                    f"{path}:{line}: non-numeric field in row {row!r}: {exc}"
                ) from exc
    return TimeSeries(np.asarray(times), np.asarray(values), name or path.stem)


def save_npz(series: TimeSeries, path: str | Path) -> None:
    """Write a series as a compressed NPZ archive."""
    np.savez_compressed(
        Path(path), times_s=series.times_s, values=series.values, name=series.name
    )


def load_npz(path: str | Path) -> TimeSeries:
    """Read a series written by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        try:
            return TimeSeries(
                data["times_s"], data["values"], str(data["name"])
            )
        except KeyError as exc:
            raise TelemetryError(f"{path}: missing array {exc}") from exc
