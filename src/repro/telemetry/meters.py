"""Power meters: noisy, lossy sampling of the true facility power.

The ARCHER2 analysis consumed cabinet-level power telemetry provided by the
vendor's monitoring database. Real meters sample on a fixed cadence, carry
calibration and quantisation noise, and occasionally drop samples. The meter
model reproduces those artefacts so the downstream analysis (change-point
detection, baseline means) is exercised against realistic data rather than
the simulator's exact piecewise-constant truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TelemetryError
from ..units import ensure_fraction, ensure_nonnegative, ensure_positive
from .series import TimeSeries

__all__ = ["MeterSpec", "PowerMeter"]


@dataclass(frozen=True)
class MeterSpec:
    """Measurement characteristics of a power meter.

    Parameters
    ----------
    interval_s:
        Sampling cadence (ARCHER2 cabinet telemetry is minute-scale; the
        figures in the paper are plotted from coarser aggregates).
    noise_fraction:
        Relative 1σ Gaussian noise per sample (sensor accuracy class).
    dropout_probability:
        Chance a sample is lost (recorded as NaN).
    quantisation_w:
        Measurement resolution in watts; 0 disables quantisation.
    """

    interval_s: float = 900.0
    noise_fraction: float = 0.01
    dropout_probability: float = 0.002
    quantisation_w: float = 100.0

    def __post_init__(self) -> None:
        ensure_positive(self.interval_s, "interval_s")
        ensure_fraction(self.noise_fraction, "noise_fraction")
        ensure_fraction(self.dropout_probability, "dropout_probability")
        ensure_nonnegative(self.quantisation_w, "quantisation_w")


@dataclass(frozen=True)
class PowerMeter:
    """Samples a true power signal into a measured :class:`TimeSeries`."""

    spec: MeterSpec
    name: str = "meter"

    def sample_function(
        self,
        true_power_w,
        t_start_s: float,
        t_end_s: float,
        rng: np.random.Generator,
    ) -> TimeSeries:
        """Measure a callable ``true_power_w(times) -> watts`` over a span.

        ``true_power_w`` must accept a numpy array of sample times and
        return the instantaneous true power at each — the scheduler's
        :meth:`~repro.scheduler.accounting.PowerTrace.sample` composed with
        the facility roll-up has exactly this shape.
        """
        if t_end_s <= t_start_s:
            raise TelemetryError("t_end_s must exceed t_start_s")
        times = np.arange(t_start_s, t_end_s, self.spec.interval_s)
        if len(times) == 0:
            raise TelemetryError("span shorter than one sampling interval")
        truth = np.asarray(true_power_w(times), dtype=float)
        if truth.shape != times.shape:
            raise TelemetryError(
                f"true power shape {truth.shape} != sample times shape {times.shape}"
            )
        return self._measure(times, truth, rng)

    def _measure(
        self, times: np.ndarray, truth: np.ndarray, rng: np.random.Generator
    ) -> TimeSeries:
        # Invariant: a dropped sample stays dropped. Noise and quantisation
        # both propagate NaN, and dropout is applied last, so neither stage
        # can resurrect a NaN — and NaNs already present in the truth signal
        # survive to the measured series.
        noisy = truth * (1.0 + rng.normal(0.0, self.spec.noise_fraction, size=truth.shape))
        if self.spec.quantisation_w > 0:
            noisy = np.round(noisy / self.spec.quantisation_w) * self.spec.quantisation_w
            noisy = np.where(np.isnan(truth), np.nan, noisy)
        if self.spec.dropout_probability > 0:
            lost = rng.random(noisy.shape) < self.spec.dropout_probability
            noisy = np.where(lost, np.nan, noisy)
        return TimeSeries(times, noisy, self.name)
