"""Telemetry data-quality checks.

Facility power analysis is only as good as its telemetry. Before computing
baselines or intervention impacts, production pipelines validate coverage
(what fraction of expected samples arrived), locate gaps (meter outages) and
flag flatlines (stuck sensors). The paper's multi-month means implicitly
assume healthy telemetry; this module makes the assumption checkable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TelemetryError
from ..units import ensure_positive
from .series import TimeSeries

__all__ = ["Gap", "QualityReport", "find_gaps", "find_flatlines", "assess_quality"]


@dataclass(frozen=True)
class Gap:
    """A telemetry outage: no valid sample for longer than the threshold."""

    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        """Outage length, seconds."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class QualityReport:
    """Summary of a series' fitness for baseline/impact analysis."""

    n_samples: int
    n_valid: int
    coverage: float  # valid samples / total samples
    gaps: tuple[Gap, ...]
    longest_gap_s: float
    flatline_fraction: float

    def healthy(
        self,
        min_coverage: float = 0.95,
        max_gap_s: float = 86_400.0,
        max_flatline: float = 0.2,
    ) -> bool:
        """Whether the series passes the default analysis gates."""
        return (
            self.coverage >= min_coverage
            and self.longest_gap_s <= max_gap_s
            and self.flatline_fraction <= max_flatline
        )


def find_gaps(series: TimeSeries, max_gap_s: float) -> list[Gap]:
    """Spans longer than ``max_gap_s`` without a valid sample.

    Both NaN dropouts and missing timestamps count: the gap is measured
    between consecutive *valid* samples.
    """
    ensure_positive(max_gap_s, "max_gap_s")
    valid_times = series.times_s[~np.isnan(series.values)]
    if len(valid_times) < 2:
        if len(series) >= 2:
            return [Gap(start_s=series.t_start_s, end_s=series.t_end_s)]
        return []
    deltas = np.diff(valid_times)
    idx = np.nonzero(deltas > max_gap_s)[0]
    return [Gap(start_s=float(valid_times[i]), end_s=float(valid_times[i + 1])) for i in idx]


def find_flatlines(series: TimeSeries, min_run: int = 8) -> float:
    """Fraction of samples inside runs of ``min_run``+ identical values.

    Power telemetry from a live facility always jitters; long exact repeats
    indicate a stuck sensor or an upstream fill-forward. NaNs never count as
    flat.
    """
    if min_run < 2:
        raise TelemetryError("min_run must be at least 2")
    values = series.values
    n = len(values)
    if n < min_run:
        return 0.0
    same = np.zeros(n, dtype=bool)
    same[1:] = (values[1:] == values[:-1]) & ~np.isnan(values[1:])
    # Run-length encode the "same as previous" flags.
    flat = np.zeros(n, dtype=bool)
    run_start = 0
    run_len = 1
    for i in range(1, n + 1):
        if i < n and same[i]:
            run_len += 1
            continue
        if run_len >= min_run:
            flat[run_start : run_start + run_len] = True
        run_start = i
        run_len = 1
    return float(np.count_nonzero(flat)) / n


def assess_quality(series: TimeSeries, max_gap_s: float = 3600.0) -> QualityReport:
    """Full quality assessment of a power series."""
    gaps = find_gaps(series, max_gap_s)
    longest = max((g.duration_s for g in gaps), default=0.0)
    return QualityReport(
        n_samples=len(series),
        n_valid=series.n_valid,
        coverage=series.n_valid / len(series),
        gaps=tuple(gaps),
        longest_gap_s=longest,
        flatline_fraction=find_flatlines(series),
    )
