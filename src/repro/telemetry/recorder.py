"""Recording pipeline: simulation truth → facility power → metered series.

Composes the scheduler's busy-node power trace with the facility inventory's
static components (idle nodes, switches, cabinet overheads) into the *true*
compute-cabinet power signal, then measures it through a
:class:`~repro.telemetry.meters.PowerMeter`. The output is the synthetic
equivalent of the cabinet telemetry behind the paper's Figures 1–3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..facility.hardware import ComponentKind
from ..facility.inventory import FacilityInventory
from ..scheduler.accounting import PowerTrace
from .meters import MeterSpec, PowerMeter
from .series import TimeSeries

__all__ = ["CabinetPowerRecorder"]


@dataclass(frozen=True)
class CabinetPowerRecorder:
    """Turns simulation traces into (true or metered) cabinet power series."""

    inventory: FacilityInventory
    meter: PowerMeter = PowerMeter(MeterSpec(), name="compute-cabinets")

    def _static_coefficients(self) -> tuple[float, float, float]:
        """Linear cabinet-power terms: (node_idle_w_each, base_w, slope_w).

        ``base_w + slope_w · utilisation`` covers switches and cabinet
        overheads; idle nodes contribute ``node_idle_w_each`` per idle node.
        """
        inv = self.inventory
        node_idle_each = sum(e.idle_power_w for e in inv.node_entries) / inv.n_nodes
        base = 0.0
        slope = 0.0
        for kind in (ComponentKind.SWITCH, ComponentKind.CABINET_OVERHEAD):
            for e in inv.entries_of_kind(kind):
                base += e.idle_power_w
                slope += e.loaded_power_w - e.idle_power_w
        return node_idle_each, base, slope

    def true_power_w(self, trace: PowerTrace, times_s: np.ndarray) -> np.ndarray:
        """Instantaneous true compute-cabinet power at sample times, watts."""
        node_idle_each, base, slope = self._static_coefficients()
        n_nodes = self.inventory.n_nodes
        busy_power = trace.sample(times_s)
        busy_nodes = trace.sample_busy_nodes(times_s)
        utilisation = busy_nodes / n_nodes
        idle_power = (n_nodes - busy_nodes) * node_idle_each
        return busy_power + idle_power + base + slope * utilisation

    def true_series(self, trace: PowerTrace, interval_s: float = 900.0) -> TimeSeries:
        """Noise-free cabinet power series on a regular grid."""
        times = np.arange(trace.t_start_s, trace.t_end_s, interval_s)
        return TimeSeries(times, self.true_power_w(trace, times), "compute-cabinets/true")

    def record(
        self,
        trace: PowerTrace,
        rng: np.random.Generator,
    ) -> TimeSeries:
        """Metered cabinet power series (noise, quantisation, dropouts)."""
        return self.meter.sample_function(
            lambda times: self.true_power_w(trace, times),
            trace.t_start_s,
            trace.t_end_s,
            rng,
        )
