"""Numpy-backed time series for power telemetry.

The fundamental data shape of the paper's §3: timestamped power samples from
the cabinet meters. The series is immutable, keeps timestamps strictly
increasing, and provides the handful of operations the analysis layer needs —
slicing, resampling, rolling means, and gap handling (meters drop samples).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SeriesShapeError

__all__ = ["TimeSeries"]


@dataclass(frozen=True)
class TimeSeries:
    """An irregular (or regular) scalar time series.

    ``times_s`` must be strictly increasing; ``values`` is any float signal
    (watts for power series). NaN values are allowed and represent meter
    dropouts; statistics skip them.
    """

    times_s: np.ndarray
    values: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        times = np.asarray(self.times_s, dtype=float)
        values = np.asarray(self.values, dtype=float)
        if times.ndim != 1 or values.ndim != 1:
            raise SeriesShapeError("times and values must be 1-D")
        if len(times) != len(values):
            raise SeriesShapeError(
                f"length mismatch: {len(times)} times vs {len(values)} values"
            )
        if len(times) == 0:
            raise SeriesShapeError("series cannot be empty")
        if np.any(~np.isfinite(times)):
            raise SeriesShapeError("timestamps must be finite")
        if np.any(np.diff(times) <= 0):
            raise SeriesShapeError("timestamps must be strictly increasing")
        object.__setattr__(self, "times_s", times)
        object.__setattr__(self, "values", values)

    # -- basics ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.times_s)

    @property
    def t_start_s(self) -> float:
        """First timestamp."""
        return float(self.times_s[0])

    @property
    def t_end_s(self) -> float:
        """Last timestamp."""
        return float(self.times_s[-1])

    @property
    def span_s(self) -> float:
        """Covered span, seconds."""
        return self.t_end_s - self.t_start_s

    @property
    def n_valid(self) -> int:
        """Number of non-NaN samples."""
        return int(np.count_nonzero(~np.isnan(self.values)))

    # -- statistics -------------------------------------------------------------

    def mean(self) -> float:
        """Arithmetic mean over valid samples (the paper's orange lines)."""
        return float(np.nanmean(self.values))

    def std(self) -> float:
        """Standard deviation over valid samples."""
        return float(np.nanstd(self.values))

    def percentile(self, q: float | np.ndarray) -> float | np.ndarray:
        """Percentile(s) over valid samples."""
        out = np.nanpercentile(self.values, q)
        return float(out) if np.ndim(out) == 0 else out

    def min(self) -> float:
        """Minimum over valid samples."""
        return float(np.nanmin(self.values))

    def max(self) -> float:
        """Maximum over valid samples."""
        return float(np.nanmax(self.values))

    def time_weighted_mean(self) -> float:
        """Mean weighting each sample by its holding interval.

        For regular sampling this equals :meth:`mean`; for irregular series
        it is the better estimate of energy-relevant average power. NaN
        samples contribute neither value nor time. The final sample has no
        successor, so it is held for the last observed inter-sample interval
        (timestamp-offset independent, so epoch-second series weight
        correctly).
        """
        if len(self) == 1:
            # A sole NaN sample carries no information: NaN propagates.
            return float(self.values[0])
        intervals = np.diff(self.times_s)
        durations = np.append(intervals, intervals[-1])
        valid = ~np.isnan(self.values)
        if not np.any(valid):
            return float("nan")
        return float(
            np.dot(self.values[valid], durations[valid]) / durations[valid].sum()
        )

    # -- transforms --------------------------------------------------------------

    def slice(self, t_from_s: float, t_to_s: float) -> "TimeSeries":
        """Sub-series with ``t_from_s <= t < t_to_s``."""
        if t_to_s <= t_from_s:
            raise SeriesShapeError("t_to_s must exceed t_from_s")
        mask = (self.times_s >= t_from_s) & (self.times_s < t_to_s)
        if not np.any(mask):
            raise SeriesShapeError(
                f"no samples in [{t_from_s}, {t_to_s}) for series {self.name!r}"
            )
        return TimeSeries(self.times_s[mask], self.values[mask], self.name)

    def resample(self, interval_s: float) -> "TimeSeries":
        """Regular resampling by previous-value hold onto a uniform grid.

        NaN gaps propagate: a grid point whose most recent sample is NaN is
        NaN. The grid starts at the first timestamp and covers every whole
        interval of the span — the point count is computed explicitly so the
        final grid point is neither dropped nor duplicated when ``span_s``
        is an exact multiple of ``interval_s``.
        """
        if interval_s <= 0:
            raise SeriesShapeError("interval_s must be positive")
        n_steps = int(np.floor(self.span_s / interval_s + 1e-9))
        grid = self.t_start_s + interval_s * np.arange(n_steps + 1)
        idx = np.searchsorted(self.times_s, grid, side="right") - 1
        idx = np.clip(idx, 0, len(self) - 1)
        return TimeSeries(grid, self.values[idx], self.name)

    def rolling_mean(self, window_s: float) -> "TimeSeries":
        """Centred rolling mean over a time window (NaN-skipping).

        Implemented with cumulative sums over sample counts so it stays
        O(n log n) even for irregular series.
        """
        if window_s <= 0:
            raise SeriesShapeError("window_s must be positive")
        half = window_s / 2.0
        lo = np.searchsorted(self.times_s, self.times_s - half, side="left")
        hi = np.searchsorted(self.times_s, self.times_s + half, side="right")
        vals = np.nan_to_num(self.values, nan=0.0)
        valid = (~np.isnan(self.values)).astype(float)
        csum = np.concatenate([[0.0], np.cumsum(vals)])
        ccnt = np.concatenate([[0.0], np.cumsum(valid)])
        sums = csum[hi] - csum[lo]
        counts = ccnt[hi] - ccnt[lo]
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, sums / counts, np.nan)
        return TimeSeries(self.times_s, means, self.name)

    def dropna(self) -> "TimeSeries":
        """Series with NaN samples removed."""
        mask = ~np.isnan(self.values)
        if not np.any(mask):
            raise SeriesShapeError(f"series {self.name!r} has no valid samples")
        return TimeSeries(self.times_s[mask], self.values[mask], self.name)

    def shift_values(self, offset: float) -> "TimeSeries":
        """Series with a constant added to every value."""
        return TimeSeries(self.times_s, self.values + offset, self.name)

    def scale_values(self, factor: float) -> "TimeSeries":
        """Series with every value multiplied by a constant (e.g. W→kW)."""
        return TimeSeries(self.times_s, self.values * factor, self.name)

    def __add__(self, other: "TimeSeries") -> "TimeSeries":
        """Pointwise sum of two series sharing identical timestamps."""
        if not isinstance(other, TimeSeries):
            return NotImplemented
        if len(self) != len(other) or not np.array_equal(self.times_s, other.times_s):
            raise SeriesShapeError("can only add series with identical timestamps")
        return TimeSeries(
            self.times_s, self.values + other.values, self.name or other.name
        )
