"""Single-pass streaming statistics for facility-scale power telemetry.

A five-month cabinet series at 900 s cadence is small, but the same pipeline
at 1 Hz across hundreds of cabinets is not: the batch
:class:`~repro.telemetry.series.TimeSeries` statistics materialise the whole
series in memory and rescan it per call. This module is the constant-memory
alternative the analysis layer feeds from:

* :class:`OnlineStats` — Welford/Chan accumulator for mean, variance,
  min/max, NaN-aware valid counts and the time-weighted mean, updatable in
  arbitrary chunks and mergeable across adjacent spans.
* :class:`P2Quantile` — the P² marker estimator for streaming percentiles.
* :class:`MergingQuantileSketch` — a block-merging quantile summary whose
  state depends only on the sequence of observations, never on how they
  were chunked, so scalar and vectorised consumers agree bit-for-bit.
* :class:`ChunkedSeriesReader` — fixed-size chunk iteration over a
  :class:`TimeSeries`, a telemetry CSV, or an NPZ archive; re-iterable so
  multi-pass algorithms (change-point detection) can rewind.
* :func:`stream_stats` — one-call reduction of any chunk source.

Any chunking of a series yields the same statistics as the batch methods to
within floating-point accumulation error (regression-tested at 1e-9), so a
months-long series never needs to be fully resident.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Iterator, NamedTuple

import numpy as np

from ..errors import SeriesShapeError, TelemetryError
from .series import TimeSeries

__all__ = [
    "SeriesChunk",
    "OnlineStats",
    "P2Quantile",
    "MergingQuantileSketch",
    "ChunkedSeriesReader",
    "as_chunk_reader",
    "stream_stats",
]

DEFAULT_CHUNK_SIZE = 65_536

_CSV_HEADER = ("time_s", "value")


class SeriesChunk(NamedTuple):
    """One contiguous slab of a time series: parallel time/value arrays."""

    times_s: np.ndarray
    values: np.ndarray


class OnlineStats:
    """Single-pass accumulator over timestamped samples.

    Maintains, in O(1) state, everything :class:`TimeSeries` computes by
    rescanning: NaN-aware valid count, mean and variance (Welford, with
    Chan's parallel merge for chunk updates), min/max, and the
    time-weighted mean via interval accumulation. Feed it any chunking of a
    series — sample by sample via :meth:`push` or slab by slab via
    :meth:`update` — and the results agree with the batch statistics to
    float accumulation error.

    Time-weighting follows :meth:`TimeSeries.time_weighted_mean`: sample
    *i* is held for ``t[i+1] - t[i]``, the final sample for the last
    observed interval, and NaN samples contribute neither value nor time.
    """

    __slots__ = (
        "name",
        "_n_total",
        "_n_valid",
        "_mean",
        "_m2",
        "_min",
        "_max",
        "_t_first",
        "_t_last",
        "_v_last",
        "_last_dt",
        "_tw_sum",
        "_tw_weight",
    )

    def __init__(self, name: str = "") -> None:
        """Start an empty accumulator (optionally tagged with a series name)."""
        self.name = name
        self._n_total = 0
        self._n_valid = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._t_first = math.nan
        self._t_last = math.nan
        self._v_last = math.nan
        self._last_dt = math.nan
        self._tw_sum = 0.0
        self._tw_weight = 0.0

    # -- ingestion -------------------------------------------------------------

    def update(self, times_s: np.ndarray, values: np.ndarray) -> "OnlineStats":
        """Fold one chunk of samples in; returns ``self`` for chaining.

        Chunks must continue the strictly-increasing timestamp order of
        everything already absorbed.
        """
        times = np.asarray(times_s, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.ndim != 1 or values.ndim != 1:
            raise SeriesShapeError("chunk times and values must be 1-D")
        if len(times) != len(values):
            raise SeriesShapeError(
                f"chunk length mismatch: {len(times)} times vs {len(values)} values"
            )
        if len(times) == 0:
            return self
        if np.any(~np.isfinite(times)):
            raise SeriesShapeError("chunk timestamps must be finite")
        if np.any(np.diff(times) <= 0):
            raise SeriesShapeError("chunk timestamps must be strictly increasing")
        if self._n_total and times[0] <= self._t_last:
            raise SeriesShapeError(
                f"chunk starts at t={times[0]} but {self._t_last} was already seen; "
                "chunks must arrive in strictly increasing time order"
            )
        return self._fold_chunk(times, values)

    def update_trusted(self, times_s: np.ndarray, values: np.ndarray) -> "OnlineStats":
        """Fold a pre-validated chunk in, skipping the shape and order checks.

        For hot paths feeding float slices of batches that were already
        validated at construction (the live rollup's window slices): the
        arithmetic is byte-for-byte :meth:`update`'s — only the error
        checks are skipped — so the resulting state is bit-identical.
        """
        if len(times_s) == 0:
            return self
        return self._fold_chunk(times_s, values)

    def _fold_chunk(self, times: np.ndarray, values: np.ndarray) -> "OnlineStats":
        """Accumulate one non-empty, validated chunk (shared by both updates)."""
        # Time-weighting: the pending last sample's interval completes at the
        # chunk's first timestamp, then every in-chunk interval completes.
        # The interval/holder arrays are built by direct assignment — the
        # same pairwise differences a diff over the concatenation computes,
        # without materialising the concatenated copies.
        m = len(times)
        if self._n_total == 0:
            self._t_first = float(times[0])
            dts = times[1:] - times[:-1] if m >= 2 else None
            holders = values[:-1] if m >= 2 else None
        else:
            dts = np.empty(m)
            dts[0] = times[0] - self._t_last
            np.subtract(times[1:], times[:-1], out=dts[1:])
            holders = np.empty(m)
            holders[0] = self._v_last
            holders[1:] = values[:-1]
        if dts is not None:
            held = ~np.isnan(holders)
            self._tw_sum += float(np.dot(holders[held], dts[held]))
            self._tw_weight += float(dts[held].sum())
            self._last_dt = float(dts[-1])

        # Value moments: per-chunk batch statistics merged via Chan's formula.
        valid = ~np.isnan(values)
        n_b = int(np.count_nonzero(valid))
        if n_b:
            vv = values[valid]
            mean_b = float(vv.mean())
            m2_b = float(np.sum((vv - mean_b) ** 2))
            n_a = self._n_valid
            if n_a == 0:
                self._mean, self._m2 = mean_b, m2_b
            else:
                delta = mean_b - self._mean
                n_ab = n_a + n_b
                self._mean += delta * n_b / n_ab
                self._m2 += m2_b + delta * delta * n_a * n_b / n_ab
            self._n_valid += n_b
            self._min = min(self._min, float(vv.min()))
            self._max = max(self._max, float(vv.max()))

        self._n_total += len(times)
        self._t_last = float(times[-1])
        self._v_last = float(values[-1])
        return self

    def push(self, time_s: float, value: float) -> "OnlineStats":
        """Fold a single sample in (live-ingest convenience)."""
        return self.update(np.array([time_s]), np.array([value]))

    @classmethod
    def from_series(cls, series: TimeSeries) -> "OnlineStats":
        """Accumulator equivalent to the batch statistics of ``series``."""
        return cls(name=series.name).update(series.times_s, series.values)

    def merge(self, later: "OnlineStats") -> "OnlineStats":
        """Combine with an accumulator covering a strictly later span.

        Enables parallel reduction: split a series into adjacent spans,
        accumulate each independently, then fold the results left to right.
        Returns a new accumulator; neither input is modified.
        """
        if later._n_total == 0:
            return self._copy()
        if self._n_total == 0:
            out = later._copy()
            out.name = self.name or later.name
            return out
        if later._t_first <= self._t_last:
            raise SeriesShapeError(
                f"cannot merge: later span starts at t={later._t_first} "
                f"but this span already covers t={self._t_last}"
            )
        out = self._copy()
        boundary_dt = later._t_first - self._t_last
        out._tw_sum += later._tw_sum
        out._tw_weight += later._tw_weight
        if not math.isnan(self._v_last):
            out._tw_sum += self._v_last * boundary_dt
            out._tw_weight += boundary_dt
        out._last_dt = later._last_dt if later._n_total >= 2 else boundary_dt
        if later._n_valid:
            n_a, n_b = self._n_valid, later._n_valid
            if n_a == 0:
                out._mean, out._m2 = later._mean, later._m2
            else:
                delta = later._mean - self._mean
                n_ab = n_a + n_b
                out._mean += delta * n_b / n_ab
                out._m2 += later._m2 + delta * delta * n_a * n_b / n_ab
            out._n_valid = n_a + n_b
            out._min = min(self._min, later._min)
            out._max = max(self._max, later._max)
        out._n_total = self._n_total + later._n_total
        out._t_last = later._t_last
        out._v_last = later._v_last
        return out

    def _copy(self) -> "OnlineStats":
        out = OnlineStats(self.name)
        for slot in OnlineStats.__slots__:
            setattr(out, slot, getattr(self, slot))
        return out

    # -- persistence -----------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the accumulator (see ``restore``)."""
        return {slot: getattr(self, slot) for slot in OnlineStats.__slots__}

    def load_state_dict(self, state: dict) -> None:
        """Overwrite this accumulator in place from a :meth:`state_dict` snapshot.

        The round-trip is exact: every statistic of the restored accumulator
        is bit-identical to the original's, so a checkpointed monitor resumes
        with no drift.
        """
        for slot in OnlineStats.__slots__:
            if slot != "name":
                setattr(self, slot, state[slot])
        self.name = state.get("name", self.name)

    @classmethod
    def restore(cls, state: dict) -> "OnlineStats":
        """Rebuild an accumulator from a :meth:`state_dict` snapshot."""
        out = cls(state.get("name", ""))
        out.load_state_dict(state)
        return out

    # -- results ---------------------------------------------------------------

    @property
    def n_total(self) -> int:
        """Total samples absorbed, NaN dropouts included."""
        return self._n_total

    @property
    def n_valid(self) -> int:
        """Non-NaN samples absorbed."""
        return self._n_valid

    @property
    def mean(self) -> float:
        """Arithmetic mean over valid samples (NaN while empty)."""
        return self._mean if self._n_valid else math.nan

    @property
    def variance(self) -> float:
        """Population variance over valid samples, matching ``np.nanstd**2``."""
        return self._m2 / self._n_valid if self._n_valid else math.nan

    @property
    def std(self) -> float:
        """Population standard deviation over valid samples."""
        return math.sqrt(self.variance) if self._n_valid else math.nan

    @property
    def minimum(self) -> float:
        """Minimum over valid samples (NaN while empty)."""
        return self._min if self._n_valid else math.nan

    @property
    def maximum(self) -> float:
        """Maximum over valid samples (NaN while empty)."""
        return self._max if self._n_valid else math.nan

    @property
    def t_start_s(self) -> float:
        """First timestamp absorbed."""
        return self._t_first

    @property
    def t_end_s(self) -> float:
        """Last timestamp absorbed."""
        return self._t_last

    @property
    def span_s(self) -> float:
        """Covered span, seconds."""
        return self._t_last - self._t_first if self._n_total else math.nan

    @property
    def time_weighted_mean(self) -> float:
        """Interval-weighted mean, matching the batch semantics exactly."""
        if self._n_total == 0:
            return math.nan
        if self._n_total == 1:
            return self._v_last
        tw_sum, weight = self._tw_sum, self._tw_weight
        if not math.isnan(self._v_last):
            tw_sum += self._v_last * self._last_dt
            weight += self._last_dt
        if weight <= 0:
            return math.nan
        return tw_sum / weight


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm (Jain & Chlamtac 1985).

    Five markers track the target quantile in O(1) memory with no sorting.
    Exact for fewer than five observations; asymptotically accurate beyond.
    NaN observations are skipped, matching ``np.nanpercentile``'s intent.
    """

    def __init__(self, q: float) -> None:
        """Track the ``q``-quantile, ``0 < q < 1``."""
        if not 0.0 < q < 1.0:
            raise TelemetryError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._buffer: list[float] = []
        self._heights: list[float] | None = None
        self._pos: list[float] = []
        self._desired: list[float] = []
        self._dn = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, x: float) -> None:
        """Absorb one observation (NaN ignored)."""
        if math.isnan(x):
            return
        if self._heights is None:
            self._buffer.append(x)
            if len(self._buffer) == 5:
                self._buffer.sort()
                self._heights = list(self._buffer)
                self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
            return
        h, pos = self._heights, self._pos
        if x < h[0]:
            h[0] = x
            cell = 0
        elif x >= h[4]:
            h[4] = x
            cell = 3
        else:
            cell = 0
            while cell < 3 and x >= h[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._dn[i]
        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    j = i + int(step)
                    h[i] += step * (h[j] - h[i]) / (pos[j] - pos[i])
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, pos = self._heights, self._pos
        return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def update(self, values: np.ndarray) -> "P2Quantile":
        """Absorb a chunk of observations; returns ``self`` for chaining."""
        for x in np.asarray(values, dtype=float):
            self.add(float(x))
        return self

    def result(self) -> float:
        """Current quantile estimate (NaN if nothing absorbed yet)."""
        if self._heights is None:
            if not self._buffer:
                return math.nan
            return float(np.percentile(self._buffer, 100.0 * self.q))
        return float(self._heights[2])

    # -- persistence -----------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the marker state (see ``restore``)."""
        return {
            "q": self.q,
            "buffer": list(self._buffer),
            "heights": list(self._heights) if self._heights is not None else None,
            "pos": list(self._pos),
            "desired": list(self._desired),
        }

    def load_state_dict(self, state: dict) -> None:
        """Overwrite the marker state in place from a :meth:`state_dict` snapshot."""
        self.q = state["q"]
        self._buffer = list(state["buffer"])
        self._heights = list(state["heights"]) if state["heights"] is not None else None
        self._pos = list(state["pos"])
        self._desired = list(state["desired"])

    @classmethod
    def restore(cls, state: dict) -> "P2Quantile":
        """Rebuild a tracker from a :meth:`state_dict` snapshot, exactly."""
        out = cls(state["q"])
        out.load_state_dict(state)
        return out


class MergingQuantileSketch:
    """Deterministic block-merging quantile summary over a value stream.

    Observations fill a fixed buffer of ``block_size`` values; every time
    the buffer fills *exactly*, the sorted block is merged into a bounded
    summary of ``summary_size`` equally-weighted points (a one-level
    weight-collapsing merge in the spirit of Greenwald–Khanna / KLL
    compactors). Because compaction happens at fixed sample counts and all
    arithmetic is array-deterministic, the sketch state is a pure function
    of the observation *sequence* — feeding samples one at a time or in
    arbitrary chunks yields bit-identical state and results. That property
    is what lets the scalar and columnar rollup paths share one estimator.

    Memory is O(block_size + summary_size); rank error after *F* folds is
    about ``F / (4 * summary_size)`` of the distribution, exact while fewer
    than ``block_size`` observations have been absorbed. NaN observations
    are skipped, matching ``np.nanpercentile``'s intent.
    """

    def __init__(self, block_size: int = 16384, summary_size: int = 2048) -> None:
        """Buffer ``block_size`` values per fold; keep ``summary_size`` points."""
        if block_size < 2:
            raise TelemetryError(f"block_size must be >= 2, got {block_size}")
        if summary_size < 2:
            raise TelemetryError(f"summary_size must be >= 2, got {summary_size}")
        self.block_size = int(block_size)
        self.summary_size = int(summary_size)
        # Allocated on first observation: an idle sketch (a rollup window
        # that never receives its stream) costs no block-sized buffer.
        self._buffer: np.ndarray | None = None
        self._fill = 0
        self._summary = np.empty(0, dtype=float)
        self._weight = 0.0
        self._n_valid = 0

    def add(self, x: float) -> None:
        """Absorb one observation (NaN ignored)."""
        if math.isnan(x):
            return
        if self._buffer is None:
            self._buffer = np.empty(self.block_size, dtype=float)
        self._buffer[self._fill] = x
        self._fill += 1
        self._n_valid += 1
        if self._fill == self.block_size:
            self._fold()

    def update(self, values: np.ndarray) -> "MergingQuantileSketch":
        """Absorb a chunk of observations; returns ``self`` for chaining."""
        chunk = np.asarray(values, dtype=float)
        if chunk.ndim != 1:
            raise SeriesShapeError("chunk values must be 1-D")
        chunk = chunk[~np.isnan(chunk)]
        if not len(chunk):
            return self
        if self._buffer is None:
            self._buffer = np.empty(self.block_size, dtype=float)
        self._n_valid += len(chunk)
        pos = 0
        while pos < len(chunk):
            take = min(self.block_size - self._fill, len(chunk) - pos)
            self._buffer[self._fill : self._fill + take] = chunk[pos : pos + take]
            self._fill += take
            pos += take
            if self._fill == self.block_size:
                self._fold()
        return self

    def _fold(self) -> None:
        """Collapse the full buffer and the summary into a fresh summary."""
        values, weights = self._merged(np.sort(self._buffer))
        cum = np.cumsum(weights)
        del weights
        total = float(cum[-1])
        m = self.summary_size
        # One representative per equal-mass stratum: the first point whose
        # cumulative weight reaches the stratum's centre of mass.
        targets = (np.arange(m) + 0.5) * (total / m)
        picks = np.minimum(np.searchsorted(cum, targets, side="left"), len(values) - 1)
        self._summary = values[picks]
        self._weight = total / m
        self._fill = 0

    def _merged(self, block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Weighted merge of the summary with a sorted block of unit weights.

        The stable argsort keeps summary points ahead of equal block values
        (deterministic tie order); the block itself needs no stable sort —
        its entries all carry unit weight, so equal values are
        interchangeable.
        """
        n_s = len(self._summary)
        if not n_s:
            return block, np.ones(len(block))
        n = n_s + len(block)
        values = np.concatenate((self._summary, block))
        del block  # drop the sorted copy before the argsort transient peaks
        weights = np.empty(n)
        weights[:n_s] = self._weight
        weights[n_s:] = 1.0
        order = np.argsort(values, kind="stable")
        values = values.take(order)
        weights = weights.take(order)
        del order
        return values, weights

    def result(self, q: float) -> float:
        """Estimate the ``q``-quantile (NaN if nothing absorbed yet)."""
        if not 0.0 < q < 1.0:
            raise TelemetryError(f"quantile must be in (0, 1), got {q}")
        if self._n_valid == 0:
            return math.nan
        pending = (
            self._buffer[: self._fill]
            if self._buffer is not None
            else np.empty(0, dtype=float)
        )
        if not len(self._summary):
            return float(np.percentile(pending, 100.0 * q))
        values, weights = self._merged(np.sort(pending))
        cum = np.cumsum(weights)
        centres = cum - weights / 2.0
        return float(np.interp(q * cum[-1], centres, values))

    # -- persistence -----------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the sketch (see ``restore``)."""
        return {
            "block_size": self.block_size,
            "summary_size": self.summary_size,
            "n_valid": self._n_valid,
            "pending": (
                [float(x) for x in self._buffer[: self._fill]]
                if self._buffer is not None
                else []
            ),
            "summary": [float(x) for x in self._summary],
            "summary_weight": self._weight,
        }

    def load_state_dict(self, state: dict) -> None:
        """Overwrite the sketch in place from a :meth:`state_dict` snapshot.

        The round-trip is exact: JSON float serialisation is shortest
        round-trip, so a restored sketch continues bit-identically.
        """
        self.block_size = int(state["block_size"])
        self.summary_size = int(state["summary_size"])
        pending = np.asarray(state["pending"], dtype=float)
        self._fill = len(pending)
        if self._fill:
            self._buffer = np.empty(self.block_size, dtype=float)
            self._buffer[: self._fill] = pending
        else:
            self._buffer = None
        self._summary = np.asarray(state["summary"], dtype=float)
        self._weight = float(state["summary_weight"])
        self._n_valid = int(state["n_valid"])

    @classmethod
    def restore(cls, state: dict) -> "MergingQuantileSketch":
        """Rebuild a sketch from a :meth:`state_dict` snapshot, exactly."""
        out = cls(int(state["block_size"]), int(state["summary_size"]))
        out.load_state_dict(state)
        return out

    @property
    def n_valid(self) -> int:
        """Non-NaN observations absorbed."""
        return self._n_valid


class ChunkedSeriesReader:
    """Re-iterable fixed-size chunk source over telemetry.

    Accepts an in-memory :class:`TimeSeries` (chunks are zero-copy views),
    a telemetry CSV path (rows are streamed — the whole file is never
    resident), or an NPZ path (arrays are decompressed once per pass, then
    sliced). Each ``iter()`` restarts from the beginning, which is what
    multi-pass consumers like change-point detection need.
    """

    @property
    def prevalidated(self) -> bool:
        """Whether chunks are views of an already-validated in-memory series.

        True only for :class:`TimeSeries` sources, whose constructor has
        already enforced finite, strictly-increasing timestamps; file
        sources are parsed row-by-row and must be re-checked by consumers.
        """
        return self._series is not None

    def __init__(
        self,
        source: TimeSeries | str | Path,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        name: str = "",
    ) -> None:
        """Wrap ``source`` for iteration in chunks of ``chunk_size`` samples."""
        if chunk_size < 1:
            raise TelemetryError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = int(chunk_size)
        if isinstance(source, TimeSeries):
            self._series: TimeSeries | None = source
            self._path: Path | None = None
            self.name = name or source.name
        elif isinstance(source, (str, Path)):
            path = Path(source)
            if path.suffix.lower() not in (".csv", ".npz"):
                raise TelemetryError(
                    f"{path}: unsupported telemetry source (want .csv or .npz)"
                )
            self._series = None
            self._path = path
            self.name = name or path.stem
        else:
            raise TelemetryError(
                f"unsupported chunk source {type(source).__name__}; "
                "pass a TimeSeries or a .csv/.npz path"
            )

    def __iter__(self) -> Iterator[SeriesChunk]:
        if self._series is not None:
            yield from self._iter_arrays(self._series.times_s, self._series.values)
        elif self._path.suffix.lower() == ".npz":
            with np.load(self._path, allow_pickle=False) as data:
                try:
                    times, values = data["times_s"], data["values"]
                except KeyError as exc:
                    raise TelemetryError(f"{self._path}: missing array {exc}") from exc
            yield from self._iter_arrays(times, values)
        else:
            yield from self._iter_csv()

    def _iter_arrays(
        self, times: np.ndarray, values: np.ndarray
    ) -> Iterator[SeriesChunk]:
        for lo in range(0, len(times), self.chunk_size):
            hi = lo + self.chunk_size
            yield SeriesChunk(times[lo:hi], values[lo:hi])

    def _iter_csv(self) -> Iterator[SeriesChunk]:
        times: list[float] = []
        values: list[float] = []
        with self._path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header is None or tuple(header) != _CSV_HEADER:
                raise TelemetryError(
                    f"{self._path}: not a telemetry CSV (bad header {header!r})"
                )
            for line, row in enumerate(reader, start=2):
                if len(row) != 2:
                    raise TelemetryError(f"{self._path}:{line}: malformed row {row!r}")
                try:
                    times.append(float(row[0]))
                    values.append(float("nan") if row[1] == "" else float(row[1]))
                except ValueError as exc:
                    raise TelemetryError(
                        f"{self._path}:{line}: non-numeric field in row {row!r}: {exc}"
                    ) from exc
                if len(times) == self.chunk_size:
                    yield SeriesChunk(np.asarray(times), np.asarray(values))
                    times, values = [], []
        if times:
            yield SeriesChunk(np.asarray(times), np.asarray(values))


def as_chunk_reader(
    source: TimeSeries | str | Path | ChunkedSeriesReader,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> ChunkedSeriesReader:
    """Coerce any accepted chunk source into a :class:`ChunkedSeriesReader`."""
    if isinstance(source, ChunkedSeriesReader):
        return source
    return ChunkedSeriesReader(source, chunk_size)


def stream_stats(
    source: TimeSeries | str | Path | ChunkedSeriesReader,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> OnlineStats:
    """Single-pass :class:`OnlineStats` over any chunk source."""
    reader = as_chunk_reader(source, chunk_size)
    stats = OnlineStats(name=reader.name)
    for chunk in reader:
        stats.update(chunk.times_s, chunk.values)
    return stats
