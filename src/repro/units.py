"""Unit-safe conversion helpers.

The library keeps a small set of canonical internal units and converts at the
boundary:

========== ==================== =========================
Quantity   Canonical unit        Common alternates
========== ==================== =========================
power      watt (W)              kW, MW
energy     joule (J)             Wh, kWh, MWh, kW·h
time       second (s)            minute, hour, day, month
emissions  gram CO₂e (g)         kg, tonne
intensity  gCO₂e per kWh         kg/MWh (numerically equal)
========== ==================== =========================

Functions are deliberately tiny and total: they accept floats or numpy arrays
and return the same type (numpy broadcasting applies). Negative values are
rejected for physically non-negative quantities via :func:`ensure_nonnegative`
at construction sites, not inside every converter, so the converters stay
vectorisation-friendly.
"""

from __future__ import annotations

from typing import TypeVar

import numpy as np

from .errors import UnitError

__all__ = [
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "SECONDS_PER_WEEK",
    "SECONDS_PER_MONTH",
    "SECONDS_PER_YEAR",
    "JOULES_PER_KWH",
    "kw_to_w",
    "w_to_kw",
    "mw_to_w",
    "w_to_mw",
    "kwh_to_j",
    "j_to_kwh",
    "mwh_to_j",
    "j_to_mwh",
    "wh_to_j",
    "j_to_wh",
    "hours_to_s",
    "s_to_hours",
    "days_to_s",
    "s_to_days",
    "minutes_to_s",
    "months_to_s",
    "years_to_s",
    "g_to_kg",
    "kg_to_g",
    "g_to_tonnes",
    "tonnes_to_g",
    "kg_to_tonnes",
    "energy_j",
    "emissions_g",
    "node_hours",
    "ensure_nonnegative",
    "ensure_positive",
    "ensure_fraction",
]

_T = TypeVar("_T", float, np.ndarray)

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86_400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY
#: Mean Gregorian month (365.2425 / 12 days) — used for coarse campaign spans.
SECONDS_PER_MONTH = 365.2425 / 12.0 * SECONDS_PER_DAY
SECONDS_PER_YEAR = 365.2425 * SECONDS_PER_DAY

JOULES_PER_KWH = 3.6e6


# --- power ---------------------------------------------------------------

def kw_to_w(value_kw: _T) -> _T:
    """Convert kilowatts to watts."""
    return value_kw * 1e3


def w_to_kw(value_w: _T) -> _T:
    """Convert watts to kilowatts."""
    return value_w / 1e3


def mw_to_w(value_mw: _T) -> _T:
    """Convert megawatts to watts."""
    return value_mw * 1e6


def w_to_mw(value_w: _T) -> _T:
    """Convert watts to megawatts."""
    return value_w / 1e6


# --- energy --------------------------------------------------------------

def kwh_to_j(value_kwh: _T) -> _T:
    """Convert kilowatt-hours to joules."""
    return value_kwh * JOULES_PER_KWH


def j_to_kwh(value_j: _T) -> _T:
    """Convert joules to kilowatt-hours."""
    return value_j / JOULES_PER_KWH


def mwh_to_j(value_mwh: _T) -> _T:
    """Convert megawatt-hours to joules."""
    return value_mwh * (JOULES_PER_KWH * 1e3)


def j_to_mwh(value_j: _T) -> _T:
    """Convert joules to megawatt-hours."""
    return value_j / (JOULES_PER_KWH * 1e3)


def wh_to_j(value_wh: _T) -> _T:
    """Convert watt-hours to joules."""
    return value_wh * 3600.0


def j_to_wh(value_j: _T) -> _T:
    """Convert joules to watt-hours."""
    return value_j / 3600.0


# --- time ----------------------------------------------------------------

def hours_to_s(hours: _T) -> _T:
    """Convert hours to seconds."""
    return hours * SECONDS_PER_HOUR


def s_to_hours(seconds: _T) -> _T:
    """Convert seconds to hours."""
    return seconds / SECONDS_PER_HOUR


def days_to_s(days: _T) -> _T:
    """Convert days to seconds."""
    return days * SECONDS_PER_DAY


def s_to_days(seconds: _T) -> _T:
    """Convert seconds to days."""
    return seconds / SECONDS_PER_DAY


def minutes_to_s(minutes: _T) -> _T:
    """Convert minutes to seconds."""
    return minutes * SECONDS_PER_MINUTE


def months_to_s(months: _T) -> _T:
    """Convert mean Gregorian months to seconds."""
    return months * SECONDS_PER_MONTH


def years_to_s(years: _T) -> _T:
    """Convert mean Gregorian years to seconds."""
    return years * SECONDS_PER_YEAR


# --- emissions -----------------------------------------------------------

def g_to_kg(grams: _T) -> _T:
    """Convert grams to kilograms."""
    return grams / 1e3


def kg_to_g(kilograms: _T) -> _T:
    """Convert kilograms to grams."""
    return kilograms * 1e3


def g_to_tonnes(grams: _T) -> _T:
    """Convert grams to metric tonnes."""
    return grams / 1e6


def tonnes_to_g(tonnes: _T) -> _T:
    """Convert metric tonnes to grams."""
    return tonnes * 1e6


def kg_to_tonnes(kilograms: _T) -> _T:
    """Convert kilograms to metric tonnes."""
    return kilograms / 1e3


# --- derived quantities ---------------------------------------------------

def energy_j(power_w: _T, duration_s: _T) -> _T:
    """Energy in joules for a constant power draw over a duration."""
    return power_w * duration_s


def emissions_g(energy_j_: _T, intensity_gco2_per_kwh: _T) -> _T:
    """Operational (scope 2) emissions in grams CO₂e.

    Parameters
    ----------
    energy_j_:
        Electrical energy consumed, in joules.
    intensity_gco2_per_kwh:
        Grid carbon intensity, in gCO₂e per kWh.
    """
    return j_to_kwh(energy_j_) * intensity_gco2_per_kwh


def node_hours(n_nodes: _T, duration_s: _T) -> _T:
    """Node-hours consumed by ``n_nodes`` over ``duration_s`` seconds."""
    return n_nodes * s_to_hours(duration_s)


# --- validation -----------------------------------------------------------

def ensure_nonnegative(value: float, name: str) -> float:
    """Return ``value`` unchanged, raising :class:`UnitError` if negative or NaN."""
    if not np.isfinite(value) or value < 0:
        raise UnitError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def ensure_positive(value: float, name: str) -> float:
    """Return ``value`` unchanged, raising :class:`UnitError` unless strictly positive."""
    if not np.isfinite(value) or value <= 0:
        raise UnitError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def ensure_fraction(value: float, name: str) -> float:
    """Return ``value`` unchanged, raising :class:`UnitError` unless in [0, 1]."""
    if not np.isfinite(value) or not 0.0 <= value <= 1.0:
        raise UnitError(f"{name} must be within [0, 1], got {value!r}")
    return float(value)
