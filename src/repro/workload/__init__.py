"""Workload substrate: roofline execution models, app profiles, job streams."""

from .applications import (
    AppProfile,
    CALIBRATION_LOW_GHZ,
    CALIBRATION_REFERENCE_GHZ,
    TABLE3_PAPER_ROWS,
    TABLE4_PAPER_ROWS,
    full_catalogue,
    paper_bios_benchmarks,
    paper_curated_apps,
    paper_frequency_benchmarks,
    synthetic_archetypes,
)
from .generator import JobStreamConfig, JobStreamGenerator
from .jobs import Job, JobRecord
from .mix import WorkloadMix, archer2_mix
from .scaling import ScalingPoint, StrongScalingModel, nodes_for_deadline, tradeoff_curve
from .trace_replay import SwfParseStats, jobs_from_swf, load_swf
from .toolchain import (
    REFERENCE_TOOLCHAINS,
    Toolchain,
    apply_toolchain,
    frequency_sensitivity_shift,
)
from .roofline import (
    ExecutionProfile,
    RooflineModel,
    compute_fraction_from_arithmetic_intensity,
    compute_fraction_from_perf_ratio,
)

__all__ = [
    "RooflineModel",
    "ExecutionProfile",
    "compute_fraction_from_perf_ratio",
    "compute_fraction_from_arithmetic_intensity",
    "AppProfile",
    "paper_frequency_benchmarks",
    "paper_bios_benchmarks",
    "paper_curated_apps",
    "synthetic_archetypes",
    "full_catalogue",
    "TABLE3_PAPER_ROWS",
    "TABLE4_PAPER_ROWS",
    "CALIBRATION_LOW_GHZ",
    "CALIBRATION_REFERENCE_GHZ",
    "Job",
    "JobRecord",
    "WorkloadMix",
    "archer2_mix",
    "Toolchain",
    "REFERENCE_TOOLCHAINS",
    "apply_toolchain",
    "frequency_sensitivity_shift",
    "StrongScalingModel",
    "ScalingPoint",
    "nodes_for_deadline",
    "tradeoff_curve",
    "SwfParseStats",
    "load_swf",
    "jobs_from_swf",
    "JobStreamConfig",
    "JobStreamGenerator",
]
