"""Application profile catalogue.

One :class:`AppProfile` per application benchmark from the paper, plus
synthetic archetypes for workload generation. Each profile carries:

* the roofline **compute fraction** — calibrated from the paper's measured
  Table 4 performance ratio via the closed-form inversion in
  :func:`repro.workload.roofline.compute_fraction_from_perf_ratio`;
* the paper's published perf/energy ratios, kept as *expected values* so the
  experiment drivers can print predicted-vs-paper comparisons;
* the research area and typical node counts used to synthesise a realistic
  ARCHER2 job mix.

Applications that only appear in Table 3 (the BIOS study: OpenSBLI, VASP
TiO₂) have no measured frequency response in the paper; their compute
fractions are assigned from domain knowledge (stencil CFD codes are strongly
memory bound; VASP TiO₂ behaves like VASP CdTe) and flagged ``assumed=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import ensure_fraction, ensure_positive
from .roofline import RooflineModel, compute_fraction_from_perf_ratio

__all__ = [
    "AppProfile",
    "paper_frequency_benchmarks",
    "paper_bios_benchmarks",
    "synthetic_archetypes",
    "full_catalogue",
    "TABLE4_PAPER_ROWS",
    "TABLE3_PAPER_ROWS",
    "CALIBRATION_LOW_GHZ",
    "CALIBRATION_REFERENCE_GHZ",
]

#: Frequencies between which Table 4 ratios were measured: the 2.0 GHz cap
#: versus the 2.25 GHz setting that boosts to ~2.8 GHz in practice (§4.2).
CALIBRATION_LOW_GHZ = 2.0
CALIBRATION_REFERENCE_GHZ = 2.8

#: Paper Table 4 — (nodes, perf ratio, energy ratio) at 2.0 GHz vs 2.25+turbo.
TABLE4_PAPER_ROWS: dict[str, tuple[int, float, float]] = {
    "CASTEP Al Slab": (4, 0.93, 0.88),
    "CP2K H2O 2048": (4, 0.91, 0.93),
    "GROMACS 1400k": (3, 0.83, 0.92),
    "LAMMPS Ethanol": (4, 0.74, 0.92),
    "Nektar++ TGV 128DoF": (2, 0.80, 0.80),
    "ONETEP hBN-BP-hBN": (4, 0.92, 0.82),
    "VASP CdTe": (8, 0.95, 0.88),
}

#: Paper Table 3 — (nodes, perf ratio, energy ratio) for Performance vs
#: Power Determinism at the 2.25 GHz+turbo setting.
TABLE3_PAPER_ROWS: dict[str, tuple[int, float, float]] = {
    "CASTEP Al Slab": (16, 0.99, 0.94),
    "OpenSBLI TGV 1024^3": (32, 1.00, 0.90),
    "VASP TiO2": (32, 0.99, 0.93),
}


@dataclass(frozen=True)
class AppProfile:
    """Workload characterisation of one application benchmark."""

    name: str
    research_area: str
    compute_fraction: float
    typical_nodes: int
    baseline_runtime_s: float = 3600.0
    paper_perf_ratio: float | None = None
    paper_energy_ratio: float | None = None
    assumed: bool = False
    reference_ghz: float = CALIBRATION_REFERENCE_GHZ

    def __post_init__(self) -> None:
        ensure_fraction(self.compute_fraction, "compute_fraction")
        ensure_positive(self.baseline_runtime_s, "baseline_runtime_s")
        if self.typical_nodes <= 0:
            raise ConfigurationError(f"{self.name}: typical_nodes must be positive")

    @property
    def roofline(self) -> RooflineModel:
        """The execution model implied by this profile's compute fraction."""
        return RooflineModel(
            compute_fraction=self.compute_fraction, reference_ghz=self.reference_ghz
        )

    @classmethod
    def from_paper_perf_ratio(
        cls,
        name: str,
        research_area: str,
        nodes: int,
        perf_ratio: float,
        energy_ratio: float | None = None,
        baseline_runtime_s: float = 3600.0,
    ) -> "AppProfile":
        """Calibrate a profile from a measured perf ratio at 2.0 GHz.

        ``energy_ratio`` is optional: when omitted the model predicts it and
        there is no expected value to validate against.
        """
        phi = compute_fraction_from_perf_ratio(
            perf_ratio, CALIBRATION_LOW_GHZ, CALIBRATION_REFERENCE_GHZ
        )
        return cls(
            name=name,
            research_area=research_area,
            compute_fraction=phi,
            typical_nodes=nodes,
            baseline_runtime_s=baseline_runtime_s,
            paper_perf_ratio=perf_ratio,
            paper_energy_ratio=energy_ratio,
        )


_AREA: dict[str, str] = {
    "CASTEP Al Slab": "materials science",
    "CP2K H2O 2048": "chemistry",
    "GROMACS 1400k": "biomolecular modelling",
    "LAMMPS Ethanol": "materials science",
    "Nektar++ TGV 128DoF": "engineering (CFD)",
    "ONETEP hBN-BP-hBN": "materials science",
    "VASP CdTe": "materials science",
}


def paper_frequency_benchmarks() -> dict[str, AppProfile]:
    """The seven Table 4 benchmarks, calibrated from their perf ratios."""
    catalogue: dict[str, AppProfile] = {}
    for name, (nodes, perf, energy) in TABLE4_PAPER_ROWS.items():
        catalogue[name] = AppProfile.from_paper_perf_ratio(
            name=name,
            research_area=_AREA[name],
            nodes=nodes,
            perf_ratio=perf,
            energy_ratio=energy,
        )
    return catalogue


def paper_bios_benchmarks() -> dict[str, AppProfile]:
    """The three Table 3 benchmarks (BIOS determinism study).

    CASTEP Al Slab reuses its Table 4 calibration (at Table 3's node count);
    OpenSBLI and VASP TiO₂ get domain-knowledge compute fractions and are
    flagged ``assumed``.
    """
    castep_phi = compute_fraction_from_perf_ratio(
        TABLE4_PAPER_ROWS["CASTEP Al Slab"][1],
        CALIBRATION_LOW_GHZ,
        CALIBRATION_REFERENCE_GHZ,
    )
    vasp_phi = compute_fraction_from_perf_ratio(
        TABLE4_PAPER_ROWS["VASP CdTe"][1],
        CALIBRATION_LOW_GHZ,
        CALIBRATION_REFERENCE_GHZ,
    )
    rows = TABLE3_PAPER_ROWS
    return {
        "CASTEP Al Slab": AppProfile(
            name="CASTEP Al Slab",
            research_area="materials science",
            compute_fraction=castep_phi,
            typical_nodes=rows["CASTEP Al Slab"][0],
            paper_perf_ratio=rows["CASTEP Al Slab"][1],
            paper_energy_ratio=rows["CASTEP Al Slab"][2],
        ),
        "OpenSBLI TGV 1024^3": AppProfile(
            name="OpenSBLI TGV 1024^3",
            research_area="engineering (CFD)",
            compute_fraction=0.10,  # stencil CFD: strongly memory bound
            typical_nodes=rows["OpenSBLI TGV 1024^3"][0],
            paper_perf_ratio=rows["OpenSBLI TGV 1024^3"][1],
            paper_energy_ratio=rows["OpenSBLI TGV 1024^3"][2],
            assumed=True,
        ),
        "VASP TiO2": AppProfile(
            name="VASP TiO2",
            research_area="materials science",
            compute_fraction=vasp_phi,
            typical_nodes=rows["VASP TiO2"][0],
            paper_perf_ratio=rows["VASP TiO2"][1],
            paper_energy_ratio=rows["VASP TiO2"][2],
            assumed=True,
        ),
    }


def synthetic_archetypes() -> dict[str, AppProfile]:
    """Archetype profiles for research areas with no paper benchmark.

    Climate/ocean models and seismology codes are predominantly memory- and
    communication-bound; plasma PIC codes sit in the middle. These pad the
    job mix to ARCHER2's published research-area spread.
    """
    return {
        "Climate/Ocean archetype": AppProfile(
            name="Climate/Ocean archetype",
            research_area="climate/ocean modelling",
            compute_fraction=0.15,
            typical_nodes=64,
            assumed=True,
        ),
        "Seismology archetype": AppProfile(
            name="Seismology archetype",
            research_area="seismology",
            compute_fraction=0.25,
            typical_nodes=32,
            assumed=True,
        ),
        "Plasma archetype": AppProfile(
            name="Plasma archetype",
            research_area="plasma physics",
            compute_fraction=0.45,
            typical_nodes=48,
            assumed=True,
        ),
        "Mineral physics archetype": AppProfile(
            name="Mineral physics archetype",
            research_area="mineral physics",
            compute_fraction=0.30,
            typical_nodes=16,
            assumed=True,
        ),
    }


def paper_curated_apps() -> frozenset[str]:
    """Names of applications the service's CSE team actively benchmarks.

    On the real service, only centrally known codes had their module setup
    altered to reset the CPU frequency when the 2.0 GHz default landed
    (§4.2); the long tail of research software follows the default. These
    are the paper's Table 3/4 benchmark applications.
    """
    return frozenset(TABLE4_PAPER_ROWS) | frozenset(TABLE3_PAPER_ROWS)


def full_catalogue() -> dict[str, AppProfile]:
    """Every profile known to the library, keyed by name.

    Table 4 calibrations take precedence where an app appears in both
    studies (CASTEP).
    """
    catalogue = paper_bios_benchmarks()
    catalogue.update(paper_frequency_benchmarks())
    catalogue.update(synthetic_archetypes())
    return catalogue
