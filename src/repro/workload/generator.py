"""Stochastic job-stream generation.

Produces synthetic batch workloads with the statistical texture of a busy
national service: lognormal job sizes anchored on each app's typical node
count, lognormal runtimes, and Poisson arrivals whose rate is set from a
target *offered load* so the scheduler can hold >90 % utilisation (the
operating point all of the paper's measurements assume).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..node.pstates import FrequencySetting
from ..units import SECONDS_PER_DAY, ensure_positive
from .jobs import Job
from .mix import WorkloadMix

__all__ = ["JobStreamConfig", "JobStreamGenerator"]


@dataclass(frozen=True)
class JobStreamConfig:
    """Statistical parameters of the generated stream.

    ``offered_load`` is the *peak weekday* ratio of requested node-seconds
    per wall second to facility capacity; values slightly above 1 keep a
    persistent backlog so achieved utilisation is scheduler-limited (>90 %),
    matching §3.2. Arrivals are a non-homogeneous Poisson process with
    diurnal, weekend and holiday modulation — the texture visible in the
    paper's Figure 1 (including the Christmas dip).

    ``malleable_fraction`` of jobs declare an elastic shape — they can shrink
    to ``n_nodes / malleable_span`` nodes at runtime and tolerate a start
    delay drawn exponentially with mean ``shift_slack_mean_s`` — which is
    what the carbon-aware malleable scheduler exploits.
    """

    n_facility_nodes: int
    offered_load: float = 1.04
    mean_runtime_s: float = 12.0 * 3600.0
    runtime_sigma: float = 0.6
    nodes_sigma: float = 0.8
    max_job_nodes: int = 2048
    user_override_fraction: float = 0.0
    override_setting: FrequencySetting = FrequencySetting.GHZ_2_25_TURBO
    diurnal_amplitude: float = 0.12
    weekend_factor: float = 0.85
    holiday_factor: float = 0.35
    holiday_windows_s: tuple[tuple[float, float], ...] = ()
    malleable_fraction: float = 0.0
    malleable_span: float = 4.0
    shift_slack_mean_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_facility_nodes <= 0:
            raise ConfigurationError("n_facility_nodes must be positive")
        ensure_positive(self.offered_load, "offered_load")
        ensure_positive(self.mean_runtime_s, "mean_runtime_s")
        ensure_positive(self.runtime_sigma, "runtime_sigma")
        ensure_positive(self.nodes_sigma, "nodes_sigma")
        if self.max_job_nodes <= 0 or self.max_job_nodes > self.n_facility_nodes:
            raise ConfigurationError(
                "max_job_nodes must be in [1, n_facility_nodes]"
            )
        if not 0.0 <= self.user_override_fraction <= 1.0:
            raise ConfigurationError("user_override_fraction must be in [0, 1]")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigurationError("diurnal_amplitude must be in [0, 1)")
        for name, factor in (
            ("weekend_factor", self.weekend_factor),
            ("holiday_factor", self.holiday_factor),
        ):
            if not 0.0 < factor <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1]")
        for start, end in self.holiday_windows_s:
            if end <= start:
                raise ConfigurationError("holiday window end must exceed start")
        if not 0.0 <= self.malleable_fraction <= 1.0:
            raise ConfigurationError("malleable_fraction must be in [0, 1]")
        if self.malleable_span < 1.0:
            raise ConfigurationError("malleable_span must be at least 1")
        if self.shift_slack_mean_s < 0.0:
            raise ConfigurationError("shift_slack_mean_s must be non-negative")


class JobStreamGenerator:
    """Draws :class:`Job` streams from a mix under a stream configuration."""

    def __init__(
        self,
        mix: WorkloadMix,
        config: JobStreamConfig,
        rng: np.random.Generator,
    ) -> None:
        self.mix = mix
        self.config = config
        self.rng = rng
        self._next_id = 0

    # -- statistical draws ---------------------------------------------------

    def _draw_nodes(self, typical: int) -> int:
        """Lognormal node count anchored on the app's typical size."""
        cfg = self.config
        raw = self.rng.lognormal(mean=np.log(typical), sigma=cfg.nodes_sigma)
        return int(np.clip(round(raw), 1, cfg.max_job_nodes))

    def _draw_runtime_s(self) -> float:
        """Lognormal runtime with the configured mean.

        The lognormal's ``mu`` is shifted by ``-σ²/2`` so the distribution's
        arithmetic mean equals ``mean_runtime_s`` exactly.
        """
        cfg = self.config
        mu = np.log(cfg.mean_runtime_s) - 0.5 * cfg.runtime_sigma**2
        return float(self.rng.lognormal(mean=mu, sigma=cfg.runtime_sigma))

    def _draw_override(self) -> FrequencySetting | None:
        """User frequency override (None = accept facility default)."""
        if self.rng.random() < self.config.user_override_fraction:
            return self.config.override_setting
        return None

    def _draw_shape(self, n_nodes: int) -> tuple[int | None, int | None, float]:
        """Elastic-shape draw: (min_nodes, max_nodes, shift_slack_s).

        Rigid jobs (the ``1 - malleable_fraction`` majority) get
        ``(None, None, 0.0)``. Malleable jobs can shrink down to
        ``n_nodes / malleable_span`` (at least 1 node) and carry an
        exponentially distributed start slack with the configured mean.
        No draws are consumed when ``malleable_fraction`` is zero, so
        existing seeded streams are unchanged.
        """
        cfg = self.config
        if cfg.malleable_fraction <= 0.0:
            return None, None, 0.0
        if self.rng.random() >= cfg.malleable_fraction:
            return None, None, 0.0
        min_nodes = max(1, int(round(n_nodes / cfg.malleable_span)))
        slack_s = 0.0
        if cfg.shift_slack_mean_s > 0.0:
            slack_s = float(self.rng.exponential(cfg.shift_slack_mean_s))
        return min_nodes, n_nodes, slack_s

    def mean_job_node_seconds(self) -> float:
        """Expected node-seconds per job under the current configuration.

        Used to convert offered load into an arrival rate. The lognormal
        node draw has mean ``typical·exp(σ²/2)`` before clipping; clipping
        bias is small for facility-scale caps, and the arrival-rate feedback
        through ``offered_load`` tolerates it.
        """
        cfg = self.config
        node_inflation = float(np.exp(cfg.nodes_sigma**2 / 2.0))
        mean_nodes = sum(
            w * a.typical_nodes * node_inflation
            for a, w in zip(self.mix.apps, self.mix.weights)
        )
        return mean_nodes * cfg.mean_runtime_s

    def arrival_rate_per_s(self) -> float:
        """Peak-weekday Poisson arrival rate for the configured offered load."""
        cfg = self.config
        capacity_node_seconds_per_s = float(cfg.n_facility_nodes)
        return cfg.offered_load * capacity_node_seconds_per_s / self.mean_job_node_seconds()

    def rate_modulation(self, time_s: float) -> float:
        """Relative arrival intensity at ``time_s`` ∈ (0, 1 + diurnal_amplitude].

        Combines a diurnal cycle peaking mid-afternoon, a weekend slowdown
        (days 5 and 6 of each 7-day week) and any configured holiday windows.
        """
        cfg = self.config
        day_index = int(time_s // SECONDS_PER_DAY) % 7
        factor = cfg.weekend_factor if day_index >= 5 else 1.0
        for start, end in cfg.holiday_windows_s:
            if start <= time_s < end:
                factor = min(factor, cfg.holiday_factor)
                break
        hour = (time_s % SECONDS_PER_DAY) / 3600.0
        diurnal = 1.0 + cfg.diurnal_amplitude * np.cos(2 * np.pi * (hour - 15.0) / 24.0)
        return factor * diurnal

    # -- generation ------------------------------------------------------------

    def generate_until(self, t_end_s: float, t_start_s: float = 0.0) -> list[Job]:
        """All jobs submitted in ``[t_start_s, t_end_s)``, submit-time ordered.

        Uses Lewis–Shedler thinning for the non-homogeneous Poisson process:
        draw candidate arrivals at the peak rate, accept each with
        probability ``rate(t)/rate_peak``.
        """
        if t_end_s <= t_start_s:
            raise ConfigurationError("t_end_s must exceed t_start_s")
        base_rate = self.arrival_rate_per_s()
        peak = 1.0 + self.config.diurnal_amplitude
        jobs: list[Job] = []
        t = t_start_s
        while True:
            t += float(self.rng.exponential(1.0 / (base_rate * peak)))
            if t >= t_end_s:
                break
            if self.rng.random() < self.rate_modulation(t) / peak:
                jobs.append(self._make_job(t))
        return jobs

    def generate(self, n_jobs: int, t_start_s: float = 0.0) -> list[Job]:
        """Exactly ``n_jobs`` jobs with Poisson arrivals starting at ``t_start_s``."""
        if n_jobs <= 0:
            raise ConfigurationError("n_jobs must be positive")
        rate = self.arrival_rate_per_s()
        gaps = self.rng.exponential(1.0 / rate, size=n_jobs)
        times = t_start_s + np.cumsum(gaps)
        return [self._make_job(float(t)) for t in times]

    def _make_job(self, submit_time_s: float) -> Job:
        app = self.mix.sample_app(self.rng)
        n_nodes = self._draw_nodes(app.typical_nodes)
        min_nodes, max_nodes, slack_s = self._draw_shape(n_nodes)
        job = Job(
            job_id=self._next_id,
            app=app,
            n_nodes=n_nodes,
            submit_time_s=submit_time_s,
            reference_runtime_s=self._draw_runtime_s(),
            frequency_override=self._draw_override(),
            min_nodes=min_nodes,
            max_nodes=max_nodes,
            shift_slack_s=slack_s,
        )
        self._next_id += 1
        return job
