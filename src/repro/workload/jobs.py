"""Job and job-record types.

A :class:`Job` is a scheduling request: an application, a node count and a
reference runtime (wall time the job would take at the facility's reference
operating point — 2.25 GHz+turbo, Power Determinism). The scheduler resolves
it into a :class:`JobRecord` once placed, with actual runtime stretched by
the roofline time ratio for the operating point the job ran at.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..node.pstates import FrequencySetting
from ..units import ensure_nonnegative, ensure_positive  # noqa: F401  (ensure_nonnegative used by JobRecord)
from .applications import AppProfile

__all__ = ["Job", "JobRecord"]


@dataclass(frozen=True)
class Job:
    """A batch job request.

    ``frequency_override`` is the user's explicit ``--cpu-freq`` choice; when
    ``None`` the facility's default-frequency policy decides (§4.2: users
    could revert the 2.0 GHz default for their jobs).

    ``min_nodes``/``max_nodes`` declare an *elastic shape*: the job can run
    anywhere in ``[min_nodes, max_nodes]`` with ``n_nodes`` as its preferred
    allocation, and a malleable scheduler may grow or shrink it at runtime.
    Rigid jobs leave both ``None``. ``shift_slack_s`` is how far past
    submission the job's start may be delayed (temporal load shifting into
    low-carbon windows); 0 means start as soon as possible.
    """

    job_id: int
    app: AppProfile
    n_nodes: int
    submit_time_s: float
    reference_runtime_s: float
    frequency_override: FrequencySetting | None = None
    min_nodes: int | None = None
    max_nodes: int | None = None
    shift_slack_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ConfigurationError(f"job {self.job_id}: n_nodes must be positive")
        # Negative submit times are legal: campaigns place their warm-up
        # before the reporting window's t=0 origin.
        if not np.isfinite(self.submit_time_s):
            raise ConfigurationError(f"job {self.job_id}: submit_time_s must be finite")
        ensure_positive(self.reference_runtime_s, f"job {self.job_id}: reference_runtime_s")
        if (self.min_nodes is None) != (self.max_nodes is None):
            raise ConfigurationError(
                f"job {self.job_id}: min_nodes and max_nodes must be set together "
                f"(got min={self.min_nodes}, max={self.max_nodes})"
            )
        if self.min_nodes is not None and self.max_nodes is not None:
            if not 1 <= self.min_nodes <= self.n_nodes <= self.max_nodes:
                raise ConfigurationError(
                    f"job {self.job_id}: elastic shape must satisfy "
                    f"1 <= min_nodes <= n_nodes <= max_nodes, got "
                    f"min={self.min_nodes}, n={self.n_nodes}, max={self.max_nodes}"
                )
        if not np.isfinite(self.shift_slack_s) or self.shift_slack_s < 0:
            raise ConfigurationError(
                f"job {self.job_id}: shift_slack_s must be finite and "
                f"non-negative, got {self.shift_slack_s}"
            )

    @property
    def is_elastic(self) -> bool:
        """Whether the job declares a malleable/moldable node-count shape."""
        return self.min_nodes is not None

    def runtime_at_s(self, effective_ghz: float) -> float:
        """Wall time when executed at ``effective_ghz``, seconds."""
        return self.reference_runtime_s * float(self.app.roofline.time_ratio(effective_ghz))

    @property
    def reference_node_seconds(self) -> float:
        """Node-seconds at the reference operating point."""
        return self.n_nodes * self.reference_runtime_s


@dataclass(frozen=True)
class JobRecord:
    """A completed (placed) job with its realised schedule and power.

    ``node_power_w`` is the per-node busy power for this job at the operating
    point it ran at — the scheduler computes it once at job start from the
    node power model and the app's execution profile.

    ``interrupted`` marks an attempt killed by a node failure before
    completing: its node-seconds were burned but delivered no science, so
    fault accounting charges them as wasted energy. The job itself may
    reappear in a later (requeued) record.
    """

    job: Job
    start_time_s: float
    end_time_s: float
    setting: FrequencySetting
    effective_ghz: float
    node_power_w: float
    interrupted: bool = False

    def __post_init__(self) -> None:
        if self.end_time_s <= self.start_time_s:
            raise ConfigurationError(
                f"job {self.job.job_id}: end time must exceed start time"
            )
        if self.start_time_s < self.job.submit_time_s:
            raise ConfigurationError(
                f"job {self.job.job_id}: started before submission"
            )
        ensure_nonnegative(self.node_power_w, f"job {self.job.job_id}: node_power_w")

    @property
    def runtime_s(self) -> float:
        """Realised wall time, seconds."""
        return self.end_time_s - self.start_time_s

    @property
    def wait_s(self) -> float:
        """Queue wait, seconds."""
        return self.start_time_s - self.job.submit_time_s

    @property
    def node_seconds(self) -> float:
        """Realised node-seconds (grows when a lower frequency stretches runtime)."""
        return self.job.n_nodes * self.runtime_s

    @property
    def node_hours(self) -> float:
        """Realised node-hours."""
        return self.node_seconds / 3600.0

    @property
    def energy_j(self) -> float:
        """Compute-node energy consumed by the job, joules."""
        return self.node_power_w * self.node_seconds

    @property
    def energy_kwh(self) -> float:
        """Compute-node energy consumed by the job, kWh."""
        return self.energy_j / 3.6e6
