"""Research-area job mix.

ARCHER2 supports 3000+ users whose major research areas the paper lists as
materials science, climate/ocean modelling, biomolecular modelling,
engineering, mineral physics, seismology and plasma physics (§1.1). The mix
assigns node-hour weights to application profiles so synthetic job streams
reproduce a facility-realistic blend of compute- and memory-bound work —
which is what determines the facility-level response to the §4 interventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .applications import AppProfile, full_catalogue

__all__ = ["WorkloadMix", "archer2_mix"]

#: Default node-hour weights approximating ARCHER2 usage by research area.
#: Materials science codes (VASP, CASTEP, CP2K, LAMMPS, ONETEP) dominate,
#: followed by climate/ocean work — consistent with §1.1 and the HPC-JEEP
#: usage reports the paper cites.
_ARCHER2_WEIGHTS: dict[str, float] = {
    "VASP CdTe": 0.17,
    "CASTEP Al Slab": 0.11,
    "CP2K H2O 2048": 0.09,
    "LAMMPS Ethanol": 0.07,
    "ONETEP hBN-BP-hBN": 0.04,
    "GROMACS 1400k": 0.10,
    "Nektar++ TGV 128DoF": 0.04,
    "OpenSBLI TGV 1024^3": 0.05,
    "Climate/Ocean archetype": 0.18,
    "Seismology archetype": 0.05,
    "Plasma archetype": 0.06,
    "Mineral physics archetype": 0.04,
}


@dataclass(frozen=True)
class WorkloadMix:
    """Node-hour-weighted mixture over application profiles."""

    apps: tuple[AppProfile, ...]
    weights: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.apps:
            raise ConfigurationError("mix needs at least one application")
        weights = self.weights or tuple(1.0 / len(self.apps) for _ in self.apps)
        if len(weights) != len(self.apps):
            raise ConfigurationError("weights and apps must have equal length")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ConfigurationError("weights must be non-negative and sum > 0")
        total = sum(weights)
        object.__setattr__(self, "weights", tuple(w / total for w in weights))

    def __len__(self) -> int:
        return len(self.apps)

    @property
    def names(self) -> list[str]:
        """Application names, mix order."""
        return [a.name for a in self.apps]

    def weight_of(self, name: str) -> float:
        """Normalised weight of an application by name."""
        for app, w in zip(self.apps, self.weights):
            if app.name == name:
                return w
        raise ConfigurationError(f"no application named {name!r} in the mix")

    def sample_app(self, rng: np.random.Generator) -> AppProfile:
        """Draw one application, weighted by node-hour share."""
        idx = rng.choice(len(self.apps), p=np.asarray(self.weights))
        return self.apps[int(idx)]

    def mean_compute_fraction(self) -> float:
        """Node-hour-weighted mean roofline compute fraction of the mix."""
        return float(
            sum(w * a.compute_fraction for a, w in zip(self.apps, self.weights))
        )

    def reweighted(self, scale: dict[str, float]) -> "WorkloadMix":
        """A new mix with some apps' weights multiplied (for ablations)."""
        new_weights = [
            w * scale.get(a.name, 1.0) for a, w in zip(self.apps, self.weights)
        ]
        return WorkloadMix(apps=self.apps, weights=tuple(new_weights))


def archer2_mix() -> WorkloadMix:
    """The default ARCHER2-like workload mix over the full catalogue."""
    catalogue = full_catalogue()
    apps: list[AppProfile] = []
    weights: list[float] = []
    for name, weight in _ARCHER2_WEIGHTS.items():
        if name not in catalogue:
            raise ConfigurationError(f"mix references unknown app {name!r}")
        apps.append(catalogue[name])
        weights.append(weight)
    return WorkloadMix(apps=tuple(apps), weights=tuple(weights))
