"""Roofline-style two-component execution model.

The paper's central performance observation (§4.2) is that frequency scaling
hurts compute-bound applications far more than memory-bound ones: LAMMPS
loses 26 % at 2.0 GHz while VASP CdTe loses only 5 %. A two-component model
captures exactly this:

``t(f) = T_c · (f₀ / f) + T_m``

where ``T_c`` is time in core-rate-limited execution (scales inversely with
frequency) and ``T_m`` is time limited by memory transfers (frequency
invariant). The single shape parameter is the **compute fraction at the
reference frequency** ``φ = T_c / (T_c + T_m)`` evaluated at ``f₀``.

Given a measured performance ratio between two frequencies, φ is recoverable
in closed form (:func:`compute_fraction_from_perf_ratio`) — that inversion is
how the application catalogue is calibrated from the paper's Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import ensure_fraction, ensure_positive

__all__ = [
    "ExecutionProfile",
    "RooflineModel",
    "compute_fraction_from_perf_ratio",
    "compute_fraction_from_arithmetic_intensity",
]


@dataclass(frozen=True)
class ExecutionProfile:
    """Resolved execution behaviour at one frequency."""

    frequency_ghz: float
    time_ratio: float  # wall time relative to the reference frequency
    compute_activity: float  # α_c: fraction of wall time core-rate limited
    memory_activity: float  # α_m: fraction of wall time memory limited

    @property
    def perf_ratio(self) -> float:
        """Performance relative to the reference frequency (1/time_ratio)."""
        return 1.0 / self.time_ratio


@dataclass(frozen=True)
class RooflineModel:
    """Two-component execution model for one application workload.

    Parameters
    ----------
    compute_fraction:
        φ ∈ [0, 1]: fraction of runtime that is core-rate limited when
        running at ``reference_ghz``. 1 = perfectly compute bound,
        0 = perfectly memory bound.
    reference_ghz:
        The frequency at which φ is defined — for ARCHER2 calibration this
        is the ~2.8 GHz turbo operating point.
    """

    compute_fraction: float
    reference_ghz: float = 2.8

    def __post_init__(self) -> None:
        ensure_fraction(self.compute_fraction, "compute_fraction")
        ensure_positive(self.reference_ghz, "reference_ghz")

    def time_ratio(self, frequency_ghz: float | np.ndarray) -> float | np.ndarray:
        """Wall time at ``frequency_ghz`` relative to the reference frequency.

        Monotonically decreasing in frequency; equals 1 at the reference.
        """
        f = np.asarray(frequency_ghz, dtype=float)
        if np.any(f <= 0):
            raise ConfigurationError("frequency must be positive")
        phi = self.compute_fraction
        ratio = phi * (self.reference_ghz / f) + (1.0 - phi)
        return float(ratio) if ratio.ndim == 0 else ratio

    def perf_ratio(self, frequency_ghz: float, baseline_ghz: float | None = None) -> float:
        """Performance at ``frequency_ghz`` relative to ``baseline_ghz``.

        Defaults the baseline to the reference frequency; this is the
        "Perf. ratio" column of the paper's Tables 3 and 4.
        """
        base = self.reference_ghz if baseline_ghz is None else baseline_ghz
        return float(self.time_ratio(base)) / float(self.time_ratio(frequency_ghz))

    def at(self, frequency_ghz: float) -> ExecutionProfile:
        """Full execution profile (time ratio and activities) at a frequency."""
        t = float(self.time_ratio(frequency_ghz))
        compute_time = self.compute_fraction * (self.reference_ghz / frequency_ghz)
        alpha_c = compute_time / t
        alpha_m = (1.0 - self.compute_fraction) / t
        return ExecutionProfile(
            frequency_ghz=float(frequency_ghz),
            time_ratio=t,
            compute_activity=alpha_c,
            memory_activity=alpha_m,
        )

    def frequency_for_perf_target(self, perf_ratio_target: float) -> float:
        """Lowest frequency keeping performance ≥ ``perf_ratio_target``.

        Inverts the time-ratio relation; returns ``inf``-safe values: a
        target of 1 (or higher) requires the reference frequency, while a
        target at or below the memory-bound floor is achievable at any
        frequency (returns 0 to signal "unconstrained").
        """
        ensure_positive(perf_ratio_target, "perf_ratio_target")
        phi = self.compute_fraction
        if perf_ratio_target >= 1.0:
            return self.reference_ghz
        if phi == 0.0:  # lint: exact-float -- memory-bound sentinel; continuous as phi->0
            return 0.0
        # time_ratio allowed = 1 / target; solve φ·(f0/f) + (1-φ) = 1/target
        allowed = 1.0 / perf_ratio_target
        denom = allowed - (1.0 - phi)
        if denom <= 0:
            return 0.0
        return phi * self.reference_ghz / denom


def compute_fraction_from_perf_ratio(
    perf_ratio: float, low_ghz: float, reference_ghz: float
) -> float:
    """Recover φ from a measured performance ratio between two frequencies.

    ``perf_ratio`` is performance at ``low_ghz`` relative to ``reference_ghz``
    (< 1 when lowering frequency hurts). Closed form:

    ``φ = (1/r − 1) / (f₀/f_low − 1)``

    Raises if the measured ratio is outside what the model can express —
    e.g. a ratio below ``f_low/f₀`` would need φ > 1.
    """
    ensure_positive(perf_ratio, "perf_ratio")
    ensure_positive(low_ghz, "low_ghz")
    ensure_positive(reference_ghz, "reference_ghz")
    if low_ghz >= reference_ghz:
        raise ConfigurationError("low_ghz must be below reference_ghz")
    if perf_ratio > 1.0:
        raise ConfigurationError(
            f"perf ratio {perf_ratio} > 1 at a lower frequency is unphysical here"
        )
    phi = (1.0 / perf_ratio - 1.0) / (reference_ghz / low_ghz - 1.0)
    if phi > 1.0 + 1e-9:
        raise ConfigurationError(
            f"perf ratio {perf_ratio} below the compute-bound floor "
            f"{low_ghz / reference_ghz:.3f}; no φ <= 1 reproduces it"
        )
    return min(float(phi), 1.0)


def compute_fraction_from_arithmetic_intensity(
    ai_flops_per_byte: float,
    peak_gflops_at_ref: float,
    memory_bandwidth_gbs: float,
) -> float:
    """Map an arithmetic intensity onto the model's compute fraction.

    In the classical roofline, a kernel with arithmetic intensity ``AI``
    against machine balance ``MB = peak/bandwidth`` is compute bound when
    ``AI >= MB``. The two-component model smears that hard transition:
    compute time ∝ flops/peak and memory time ∝ bytes/bandwidth, giving

    ``φ = (AI/MB) / (1 + AI/MB)``  — asymptotically 1 for AI ≫ MB.
    """
    ensure_positive(ai_flops_per_byte, "ai_flops_per_byte")
    ensure_positive(peak_gflops_at_ref, "peak_gflops_at_ref")
    ensure_positive(memory_bandwidth_gbs, "memory_bandwidth_gbs")
    machine_balance = peak_gflops_at_ref / memory_bandwidth_gbs
    x = ai_flops_per_byte / machine_balance
    return x / (1.0 + x)
