"""Strong-scaling model: node count, runtime and energy-to-solution.

The paper's benchmarks run at fixed node counts (Table 3/4's "Nodes"
column). Operators also choose *how many* nodes a job gets, and that choice
has an energy dimension: more nodes finish faster (less static-energy
accrual) but waste energy on communication and imperfect scaling. The
classic model:

``t(n) = t₁ · ( s + (1−s)/n + c·ln(n) )``

with serial fraction ``s`` (Amdahl) and a logarithmic communication term
``c`` (tree collectives). Energy per run is node-count × runtime × node
power — and because overheads only grow with node count, energy is
*monotone increasing* in nodes: running wide always buys time with kWh.
The operational question is therefore constrained: the fewest nodes (least
energy) that still meet a deadline, which
:func:`nodes_for_deadline` answers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import ensure_fraction, ensure_nonnegative, ensure_positive

__all__ = ["StrongScalingModel", "ScalingPoint", "nodes_for_deadline", "tradeoff_curve"]


@dataclass(frozen=True)
class StrongScalingModel:
    """Runtime vs node count for one application problem size."""

    t1_s: float  # single-node runtime
    serial_fraction: float = 0.02
    comm_coefficient: float = 0.01

    def __post_init__(self) -> None:
        ensure_positive(self.t1_s, "t1_s")
        ensure_fraction(self.serial_fraction, "serial_fraction")
        ensure_nonnegative(self.comm_coefficient, "comm_coefficient")

    def runtime_s(self, n_nodes: int | np.ndarray) -> float | np.ndarray:
        """Wall time on ``n_nodes``."""
        n = np.asarray(n_nodes, dtype=float)
        if np.any(n < 1):
            raise ConfigurationError("n_nodes must be at least 1")
        s = self.serial_fraction
        t = self.t1_s * (s + (1.0 - s) / n + self.comm_coefficient * np.log(n))
        return float(t) if t.ndim == 0 else t

    def speedup(self, n_nodes: int | np.ndarray) -> float | np.ndarray:
        """Speedup over one node."""
        t = self.runtime_s(n_nodes)
        return self.t1_s / t

    def parallel_efficiency(self, n_nodes: int | np.ndarray) -> float | np.ndarray:
        """Speedup per node (1 = perfect scaling)."""
        n = np.asarray(n_nodes, dtype=float)
        eff = self.speedup(n_nodes) / n
        return float(eff) if np.ndim(eff) == 0 else eff

    def energy_kwh(
        self, n_nodes: int | np.ndarray, node_power_w: float
    ) -> float | np.ndarray:
        """Compute-node energy of one run on ``n_nodes``."""
        ensure_positive(node_power_w, "node_power_w")
        n = np.asarray(n_nodes, dtype=float)
        e = n * node_power_w * self.runtime_s(n_nodes) / 3.6e6
        return float(e) if e.ndim == 0 else e


@dataclass(frozen=True)
class ScalingPoint:
    """One candidate node count with its time/energy consequences."""

    n_nodes: int
    runtime_s: float
    energy_kwh: float
    parallel_efficiency: float


def _power_of_two_candidates(max_nodes: int, min_nodes: int = 1) -> list[int]:
    if max_nodes < 1 or min_nodes < 1 or min_nodes > max_nodes:
        raise ConfigurationError("need 1 <= min_nodes <= max_nodes")
    candidates = [min_nodes]
    while candidates[-1] * 2 <= max_nodes:
        candidates.append(candidates[-1] * 2)
    return candidates


def tradeoff_curve(
    model: StrongScalingModel,
    node_power_w: float,
    max_nodes: int = 4096,
    min_nodes: int = 1,
) -> list[ScalingPoint]:
    """Time/energy points over power-of-two node counts.

    ``min_nodes`` encodes the memory-footprint floor: below it the problem
    does not fit. The curve makes the §2 trade visible — every extra
    doubling buys wall time at an energy premium set by the scaling
    overheads.
    """
    ensure_positive(node_power_w, "node_power_w")
    points = []
    for n in _power_of_two_candidates(max_nodes, min_nodes):
        points.append(
            ScalingPoint(
                n_nodes=n,
                runtime_s=float(model.runtime_s(n)),
                energy_kwh=float(model.energy_kwh(n, node_power_w)),
                parallel_efficiency=float(model.parallel_efficiency(n)),
            )
        )
    return points


def nodes_for_deadline(
    model: StrongScalingModel,
    node_power_w: float,
    deadline_s: float,
    max_nodes: int = 4096,
    min_nodes: int = 1,
) -> ScalingPoint:
    """The least-energy node count meeting a wall-time deadline.

    Because energy grows with node count, the minimum-energy feasible point
    is simply the *smallest* candidate whose runtime fits the deadline.
    Raises :class:`ConfigurationError` when no candidate meets it (the
    scaling curve may turn over before the deadline is reachable).
    """
    ensure_positive(deadline_s, "deadline_s")
    for point in tradeoff_curve(model, node_power_w, max_nodes, min_nodes):
        if point.runtime_s <= deadline_s:
            return point
    raise ConfigurationError(
        f"no node count up to {max_nodes} meets the {deadline_s:.0f}s deadline"
    )
