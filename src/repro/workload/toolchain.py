"""Compiler/library toolchain effects on the execution model.

The paper's stated future work includes "investigating the impact of
compiler and library choices on the energy efficiency of application
benchmarks at different CPU frequencies" (§5). This module provides the
machinery: a toolchain transforms an application's roofline components —

* ``compute_speedup`` — better instruction selection / vectorisation lowers
  the core-rate-limited time ``T_c``;
* ``memory_speedup`` — prefetching, blocking and better libraries lower the
  bandwidth-limited time ``T_m``.

Because frequency scaling only stretches the compute component, a toolchain
that shrinks ``T_c`` makes an application *less* frequency-sensitive (lower
effective compute fraction) — so compiler choice and the §4.2 frequency
policy interact, which :func:`frequency_sensitivity_shift` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..units import ensure_positive
from .applications import AppProfile

__all__ = [
    "Toolchain",
    "REFERENCE_TOOLCHAINS",
    "apply_toolchain",
    "frequency_sensitivity_shift",
]


@dataclass(frozen=True)
class Toolchain:
    """A compiler + maths-library configuration.

    Speedups are relative to the baseline toolchain the catalogue profiles
    were calibrated with (>1 = faster component).
    """

    name: str
    compute_speedup: float = 1.0
    memory_speedup: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.compute_speedup, "compute_speedup")
        ensure_positive(self.memory_speedup, "memory_speedup")
        if self.compute_speedup > 4.0 or self.memory_speedup > 4.0:
            raise ConfigurationError(
                f"{self.name}: speedups above 4x are outside the model's validity"
            )

    @property
    def overall_label(self) -> str:
        """Short display label."""
        return (
            f"{self.name} (compute x{self.compute_speedup:.2f}, "
            f"memory x{self.memory_speedup:.2f})"
        )


#: Archetype toolchains. Values are representative of published HPC compiler
#: comparisons on EPYC-class hardware (vendor compiler with tuned BLAS vs a
#: stock GNU baseline), not measurements of any specific product version.
REFERENCE_TOOLCHAINS: dict[str, Toolchain] = {
    "baseline-gnu": Toolchain(name="baseline-gnu"),
    "vendor-tuned": Toolchain(name="vendor-tuned", compute_speedup=1.15, memory_speedup=1.05),
    "vector-aggressive": Toolchain(
        name="vector-aggressive", compute_speedup=1.30, memory_speedup=1.0
    ),
    "memory-optimised": Toolchain(
        name="memory-optimised", compute_speedup=1.05, memory_speedup=1.20
    ),
}


def apply_toolchain(app: AppProfile, toolchain: Toolchain) -> AppProfile:
    """The application as built with ``toolchain``.

    With baseline components ``T_c = φ`` and ``T_m = 1 − φ`` (normalised at
    the reference frequency), the new components are ``T_c/s_c`` and
    ``T_m/s_m``; the profile's compute fraction and baseline runtime are
    updated accordingly. Paper-expected ratios are dropped — they belong to
    the calibration toolchain only.
    """
    t_c = app.compute_fraction / toolchain.compute_speedup
    t_m = (1.0 - app.compute_fraction) / toolchain.memory_speedup
    total = t_c + t_m
    return replace(
        app,
        compute_fraction=t_c / total,
        baseline_runtime_s=app.baseline_runtime_s * total,
        paper_perf_ratio=None,
        paper_energy_ratio=None,
        assumed=True,
    )


def frequency_sensitivity_shift(
    app: AppProfile, toolchain: Toolchain, low_ghz: float = 2.0
) -> float:
    """Change in performance impact at ``low_ghz`` due to the toolchain.

    Returns ``impact_after − impact_before`` where impact = 1 − perf ratio.
    Negative values mean the toolchain makes the frequency cap cheaper —
    e.g. a vectorising compiler can move an app below the §4.2 10 %
    module-reset threshold, letting it take the efficient default.
    """
    before = 1.0 - app.roofline.perf_ratio(low_ghz)
    after_app = apply_toolchain(app, toolchain)
    after = 1.0 - after_app.roofline.perf_ratio(low_ghz)
    return after - before
