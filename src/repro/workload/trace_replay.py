"""Replay job traces in the Standard Workload Format (SWF).

Production facilities publish scheduler logs in SWF (the Parallel Workloads
Archive format): one job per line, twenty whitespace-separated fields, ``;``
comment lines. Replaying a real trace through the simulator grounds the
workload side of the model in measured data instead of the synthetic
generator — the natural next step when a site wants to apply the paper's
methodology to its own machine.

Only the fields the simulator needs are consumed:

====== ============================== =========================
Field  SWF meaning                     Used as
====== ============================== =========================
1      job number                      job id
2      submit time (s)                 submit time
4      run time (s)                    reference runtime
5      number of allocated processors  node count (÷ cores/node)
====== ============================== =========================

Applications are assigned by hashing the job id onto the workload mix, so
the facility's research-area blend is preserved statistically even though
SWF carries no application identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import ConfigurationError
from .jobs import Job
from .mix import WorkloadMix

__all__ = ["SwfParseStats", "load_swf", "jobs_from_swf"]


@dataclass(frozen=True)
class SwfParseStats:
    """What happened while parsing an SWF file."""

    n_lines: int
    n_jobs: int
    n_skipped: int
    t_first_submit_s: float
    t_last_submit_s: float

    @property
    def span_s(self) -> float:
        """Submit-time span covered by the trace."""
        return self.t_last_submit_s - self.t_first_submit_s


def load_swf(path: str | Path) -> tuple[np.ndarray, SwfParseStats]:
    """Parse an SWF file into an ``(n_jobs, 4)`` array.

    Columns: job id, submit time (s), runtime (s), processors. Jobs with
    non-positive runtime or processor counts (cancelled/failed entries in
    archive traces) are skipped and counted.
    """
    path = Path(path)
    ids: list[float] = []
    submits: list[float] = []
    runtimes: list[float] = []
    procs: list[float] = []
    n_lines = 0
    n_skipped = 0
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith(";"):
                continue
            n_lines += 1
            fields = line.split()
            if len(fields) < 5:
                n_skipped += 1
                continue
            try:
                job_id = float(fields[0])
                submit = float(fields[1])
                runtime = float(fields[3])
                n_proc = float(fields[4])
            except ValueError:
                n_skipped += 1
                continue
            if runtime <= 0 or n_proc <= 0 or submit < 0:
                n_skipped += 1
                continue
            ids.append(job_id)
            submits.append(submit)
            runtimes.append(runtime)
            procs.append(n_proc)
    if not ids:
        raise ConfigurationError(f"{path}: no usable jobs in SWF file")
    data = np.column_stack([ids, submits, runtimes, procs])
    order = np.argsort(data[:, 1], kind="stable")
    data = data[order]
    stats = SwfParseStats(
        n_lines=n_lines,
        n_jobs=len(ids),
        n_skipped=n_skipped,
        t_first_submit_s=float(data[0, 1]),
        t_last_submit_s=float(data[-1, 1]),
    )
    return data, stats


def jobs_from_swf(
    path: str | Path,
    mix: WorkloadMix,
    cores_per_node: int = 128,
    max_nodes: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[list[Job], SwfParseStats]:
    """Build simulator jobs from an SWF trace.

    ``cores_per_node`` converts SWF processor counts to node counts
    (ARCHER2: 128). Jobs larger than ``max_nodes`` are clamped (archive
    traces sometimes contain full-machine jobs larger than the simulated
    pool). Application assignment is a seeded draw from ``mix`` per job so
    replays are reproducible.
    """
    if cores_per_node <= 0:
        raise ConfigurationError("cores_per_node must be positive")
    data, stats = load_swf(path)
    rng = rng or np.random.default_rng(0)
    jobs: list[Job] = []
    for job_id, submit, runtime, n_proc in data:
        nodes = max(1, int(np.ceil(n_proc / cores_per_node)))
        if max_nodes is not None:
            nodes = min(nodes, max_nodes)
        app = mix.sample_app(rng)
        jobs.append(
            Job(
                job_id=int(job_id),
                app=app,
                n_nodes=nodes,
                submit_time_s=float(submit),
                reference_runtime_s=float(runtime),
            )
        )
    return jobs, stats
