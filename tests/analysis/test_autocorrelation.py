"""Autocorrelation diagnostic tests."""

import numpy as np
import pytest

from repro.analysis.autocorrelation import (
    autocorrelation_function,
    integrated_autocorrelation_time,
    summarise_autocorrelation,
)
from repro.errors import AnalysisError
from repro.telemetry.series import TimeSeries


def ar1(n, rho, rng, step=900.0):
    noise = np.empty(n)
    state = 0.0
    for i in range(n):
        state = rho * state + np.sqrt(1 - rho**2) * rng.normal()
        noise[i] = state
    return TimeSeries(step * np.arange(n), 100.0 + noise)


class TestAcf:
    def test_lag0_is_one(self, rng):
        acf = autocorrelation_function(ar1(500, 0.8, rng), 20)
        assert acf[0] == pytest.approx(1.0)

    def test_ar1_lag1_matches_rho(self, rng):
        acf = autocorrelation_function(ar1(20_000, 0.7, rng), 5)
        assert acf[1] == pytest.approx(0.7, abs=0.05)

    def test_white_noise_decorrelated(self, rng):
        acf = autocorrelation_function(ar1(20_000, 0.0, rng), 5)
        assert abs(acf[1]) < 0.05

    def test_constant_series_zero_acf(self):
        series = TimeSeries(np.arange(50.0), np.full(50, 7.0))
        acf = autocorrelation_function(series, 5)
        assert acf[0] == 1.0
        np.testing.assert_allclose(acf[1:], 0.0)

    def test_bad_lag_rejected(self, rng):
        with pytest.raises(AnalysisError):
            autocorrelation_function(ar1(100, 0.5, rng), 100)

    def test_too_short_rejected(self):
        with pytest.raises(AnalysisError):
            autocorrelation_function(TimeSeries(np.arange(3.0), np.arange(3.0)), 1)


class TestIntegratedTime:
    def test_white_noise_tau_near_one(self, rng):
        tau = integrated_autocorrelation_time(ar1(20_000, 0.0, rng))
        assert tau == pytest.approx(1.0, abs=0.3)

    def test_ar1_tau_matches_theory(self, rng):
        """For AR(1), τ = (1+ρ)/(1−ρ): ρ=0.8 → 9."""
        tau = integrated_autocorrelation_time(ar1(50_000, 0.8, rng))
        assert tau == pytest.approx(9.0, rel=0.25)

    def test_more_correlation_more_tau(self, rng):
        low = integrated_autocorrelation_time(ar1(20_000, 0.3, np.random.default_rng(1)))
        high = integrated_autocorrelation_time(ar1(20_000, 0.9, np.random.default_rng(1)))
        assert high > low


class TestSummarise:
    def test_summary_consistency(self, rng):
        series = ar1(5000, 0.8, rng)
        summary = summarise_autocorrelation(series)
        assert summary.n_samples == 5000
        assert summary.effective_samples == pytest.approx(
            5000 / summary.tau_samples
        )
        assert summary.tau_seconds == pytest.approx(summary.tau_samples * 900.0)
        assert 2 <= summary.recommended_block <= 5000 // 4

    def test_campaign_telemetry_is_correlated(self, baseline_campaign):
        """Real (simulated) facility power has hours-scale memory — the
        motivation for the block bootstrap."""
        summary = summarise_autocorrelation(baseline_campaign.measured_kw)
        assert summary.tau_samples > 3.0
        assert summary.tau_seconds > 3600.0

    def test_block_feeds_bootstrap(self, rng):
        """The recommended block is valid input for the bootstrap."""
        from repro.analysis.bootstrap import block_bootstrap_mean

        series = ar1(2000, 0.9, rng)
        summary = summarise_autocorrelation(series)
        interval = block_bootstrap_mean(series, rng, block=summary.recommended_block)
        assert interval.contains(100.0)
