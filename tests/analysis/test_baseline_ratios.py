"""Baseline statistics and ratio estimation tests."""

import numpy as np
import pytest

from repro.analysis.baseline import compare_to_inventory, summarise
from repro.analysis.ratios import paired_ratio, ratio_of_means
from repro.errors import AnalysisError
from repro.telemetry.series import TimeSeries
from repro.units import SECONDS_PER_DAY


class TestSummarise:
    def test_constant_series(self):
        times = np.arange(0.0, 10 * SECONDS_PER_DAY, 900.0)
        stats = summarise(TimeSeries(times, np.full(len(times), 3220.0)))
        assert stats.mean == 3220.0
        assert stats.std == 0.0
        assert stats.p5 == stats.p95 == 3220.0
        assert stats.span_days == pytest.approx(10.0, rel=0.01)

    def test_nan_excluded(self):
        series = TimeSeries(
            np.arange(4.0), np.array([np.nan, 100.0, 200.0, np.nan])
        )
        stats = summarise(series)
        assert stats.mean == pytest.approx(150.0)
        assert stats.n_samples == 2

    def test_all_nan_rejected(self):
        series = TimeSeries(np.arange(4.0), np.full(4, np.nan))
        with pytest.raises(AnalysisError):
            summarise(series)

    def test_standard_error_decreases_with_samples(self, rng):
        small = TimeSeries(
            np.arange(100.0), 100.0 + rng.normal(0, 5, 100)
        )
        big = TimeSeries(
            np.arange(10_000.0), 100.0 + rng.normal(0, 5, 10_000)
        )
        assert summarise(big).standard_error < summarise(small).standard_error


class TestInventoryComparison:
    def test_baseline_below_loaded_above_idle(self, inventory):
        times = np.arange(0.0, SECONDS_PER_DAY, 900.0)
        series = TimeSeries(times, np.full(len(times), 3.22e6))  # watts
        result = compare_to_inventory(summarise(series), inventory)
        assert 0.9 < result["fraction_of_loaded"] < 1.0
        assert result["fraction_of_idle"] > 1.5


class TestRatioOfMeans:
    def test_exact_for_constants(self):
        est = ratio_of_means(np.full(5, 90.0), np.full(5, 100.0))
        assert est.value == pytest.approx(0.9)
        assert est.standard_error == 0.0

    def test_uncertainty_from_spread(self, rng):
        a = 90.0 * (1 + rng.normal(0, 0.02, 10))
        b = 100.0 * (1 + rng.normal(0, 0.02, 10))
        est = ratio_of_means(a, b)
        assert est.standard_error > 0
        assert est.consistent_with(0.9, n_sigma=3.0)

    def test_single_samples_zero_error(self):
        est = ratio_of_means(np.array([95.0]), np.array([100.0]))
        assert est.value == pytest.approx(0.95)
        assert est.standard_error == 0.0

    def test_nonpositive_rejected(self):
        with pytest.raises(AnalysisError):
            ratio_of_means(np.array([0.0]), np.array([1.0]))

    def test_nonfinite_rejected(self):
        with pytest.raises(AnalysisError):
            ratio_of_means(np.array([np.inf]), np.array([1.0]))

    def test_str_format(self):
        est = ratio_of_means(np.array([95.0]), np.array([100.0]))
        assert "0.950" in str(est)


class TestPairedRatio:
    def test_pairing_removes_shared_variation(self, rng):
        """Shared per-pair scale cancels exactly in the paired estimator."""
        shared = rng.lognormal(0, 0.3, 20)
        a = 0.9 * shared
        b = 1.0 * shared
        est = paired_ratio(a, b)
        assert est.value == pytest.approx(0.9, abs=1e-12)
        assert est.standard_error == pytest.approx(0.0, abs=1e-12)

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            paired_ratio(np.ones(3), np.ones(4))
