"""Moving-block bootstrap tests."""

import numpy as np
import pytest

from repro.analysis.bootstrap import block_bootstrap_mean, bootstrap_impact_delta
from repro.errors import AnalysisError
from repro.telemetry.series import TimeSeries


def ar1_series(n, mean, sigma, rho, rng, step=900.0):
    """AR(1) noise around a mean — the texture of real power telemetry."""
    noise = np.empty(n)
    state = 0.0
    for i in range(n):
        state = rho * state + np.sqrt(1 - rho**2) * rng.normal()
        noise[i] = state
    return TimeSeries(step * np.arange(n), mean + sigma * noise)


class TestBlockBootstrapMean:
    def test_interval_contains_truth(self, rng):
        series = ar1_series(2000, 3220.0, 50.0, 0.9, rng)
        interval = block_bootstrap_mean(series, rng, block=50)
        assert interval.contains(3220.0)
        assert interval.lower < interval.estimate < interval.upper

    def test_wider_than_naive_for_correlated_data(self, rng):
        """The whole point: autocorrelation inflates the real uncertainty."""
        series = ar1_series(2000, 3220.0, 50.0, 0.95, rng)
        interval = block_bootstrap_mean(series, rng, block=100)
        naive_se = series.std() / np.sqrt(len(series))
        assert interval.half_width > 1.5 * naive_se

    def test_iid_data_close_to_naive(self, rng):
        series = ar1_series(2000, 100.0, 10.0, 0.0, rng)
        interval = block_bootstrap_mean(series, rng, block=2)
        naive_hw = 1.96 * series.std() / np.sqrt(len(series))
        assert interval.half_width == pytest.approx(naive_hw, rel=0.3)

    def test_nan_samples_skipped(self, rng):
        values = np.full(100, 50.0)
        values[::7] = np.nan
        series = TimeSeries(np.arange(100.0), values)
        interval = block_bootstrap_mean(series, rng)
        assert interval.estimate == pytest.approx(50.0)

    def test_validation(self, rng):
        series = ar1_series(100, 1.0, 0.1, 0.5, rng)
        with pytest.raises(AnalysisError):
            block_bootstrap_mean(series, rng, n_resamples=10)
        with pytest.raises(AnalysisError):
            block_bootstrap_mean(series, rng, confidence=1.5)
        with pytest.raises(AnalysisError):
            block_bootstrap_mean(series, rng, block=101)

    def test_too_few_samples(self, rng):
        series = TimeSeries(np.arange(4.0), np.ones(4))
        with pytest.raises(AnalysisError):
            block_bootstrap_mean(series, rng)

    def test_block_equal_to_n_not_degenerate(self, rng):
        """Regression: block == n used to make every resample the full
        series, collapsing the CI to zero width; it is now clamped."""
        series = ar1_series(100, 50.0, 5.0, 0.3, rng)
        interval = block_bootstrap_mean(series, rng, block=100)
        assert interval.half_width > 0.0

    def test_block_beyond_n_raises_analysis_error(self, rng):
        """Regression: block > n used to surface as a numpy ValueError from
        rng.integers; it must be a clear AnalysisError."""
        series = ar1_series(50, 1.0, 0.1, 0.5, rng)
        with pytest.raises(AnalysisError, match="block"):
            block_bootstrap_mean(series, rng, block=51)

    def test_impact_delta_short_segment_clamped(self, rng):
        """A huge requested block must clamp to the shorter segment rather
        than degenerate or raise."""
        values = np.concatenate([np.full(10, 100.0), np.full(200, 80.0)])
        values += rng.normal(0, 1.0, len(values))
        series = TimeSeries(900.0 * np.arange(len(values)), values)
        interval = bootstrap_impact_delta(
            series, change_time_s=900.0 * 9.5, rng=rng, block=500
        )
        assert interval.half_width > 0.0
        assert interval.estimate == pytest.approx(20.0, abs=3.0)


class TestBootstrapImpactDelta:
    def make_step(self, rng, delta=210.0, sigma=40.0, n=2000):
        times = 900.0 * np.arange(n)
        values = np.where(np.arange(n) < n // 2, 3220.0, 3220.0 - delta)
        values = values + rng.normal(0, sigma, n)
        return TimeSeries(times, values), times[n // 2]

    def test_real_step_resolved(self, rng):
        """Figure 2's 210 kW step must be significant above 40 kW noise."""
        series, change = self.make_step(rng)
        interval = bootstrap_impact_delta(series, change, rng)
        assert interval.contains(210.0)
        assert interval.lower > 0.0  # significant saving

    def test_null_step_not_resolved(self, rng):
        series, change = self.make_step(rng, delta=0.0)
        interval = bootstrap_impact_delta(series, change, rng)
        assert interval.contains(0.0)

    def test_settle_window_respected(self, rng):
        series, change = self.make_step(rng)
        with_settle = bootstrap_impact_delta(
            series, change, rng, settle_s=5 * 900.0
        )
        assert with_settle.contains(210.0)
