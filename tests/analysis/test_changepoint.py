"""Change-point detection tests."""

import numpy as np
import pytest

from repro.analysis.changepoint import (
    binary_segmentation,
    cusum_statistic,
    detect_single,
    segment_means,
)
from repro.errors import AnalysisError
from repro.telemetry.series import TimeSeries


def step_series(n=1000, split=600, before=3220.0, after=2530.0, noise=0.0, rng=None):
    times = 900.0 * np.arange(n)
    values = np.where(np.arange(n) < split, before, after)
    if noise and rng is not None:
        values = values + rng.normal(0, noise, n)
    return TimeSeries(times, values.astype(float), "step")


class TestDetectSingle:
    def test_clean_step_located_exactly(self):
        series = step_series()
        cp = detect_single(series)
        assert cp.index == 600
        assert cp.mean_before == pytest.approx(3220.0)
        assert cp.mean_after == pytest.approx(2530.0)
        assert cp.delta == pytest.approx(-690.0)
        assert cp.relative_change == pytest.approx(-690.0 / 3220.0)

    def test_noisy_step_located_approximately(self, rng):
        series = step_series(noise=50.0, rng=rng)
        cp = detect_single(series)
        assert abs(cp.index - 600) < 10

    def test_realistic_noise_level(self, rng):
        """Figure 2's step (~210 kW) against realistic telemetry noise."""
        series = step_series(before=3220.0, after=3010.0, noise=80.0, rng=rng)
        cp = detect_single(series)
        assert abs(cp.index - 600) < 30
        assert cp.mean_before - cp.mean_after == pytest.approx(210.0, abs=30.0)

    def test_significance_high_for_step(self):
        assert detect_single(step_series()).significance > 5.0

    def test_significance_low_without_change(self, rng):
        times = 900.0 * np.arange(1000)
        flat = TimeSeries(times, 3220.0 + rng.normal(0, 30, 1000))
        cp = detect_single(flat)
        assert cp.significance < 2.5

    def test_nan_samples_skipped(self):
        series = step_series()
        values = series.values.copy()
        values[::50] = np.nan
        cp = detect_single(TimeSeries(series.times_s, values))
        assert cp.mean_before == pytest.approx(3220.0)

    def test_too_few_samples_rejected(self):
        with pytest.raises(AnalysisError):
            detect_single(TimeSeries(np.arange(3.0), np.arange(3.0)))


class TestCusum:
    def test_zero_for_constant(self):
        times = np.arange(100.0)
        series = TimeSeries(times, np.full(100, 5.0))
        np.testing.assert_allclose(cusum_statistic(series), 0.0)

    def test_peak_at_change(self):
        curve = cusum_statistic(step_series())
        assert abs(int(np.argmax(np.abs(curve))) - 600) < 3


class TestBinarySegmentation:
    def test_two_steps_found(self, rng):
        """The C1 scenario: baseline → post-BIOS → post-frequency."""
        n = 1500
        times = 900.0 * np.arange(n)
        values = np.full(n, 3220.0)
        values[500:1000] = 3010.0
        values[1000:] = 2530.0
        values += rng.normal(0, 40, n)
        changes = binary_segmentation(TimeSeries(times, values))
        assert len(changes) == 2
        assert abs(changes[0].index - 500) < 20
        assert abs(changes[1].index - 1000) < 20

    def test_no_changes_in_flat_series(self, rng):
        times = 900.0 * np.arange(800)
        flat = TimeSeries(times, 3000.0 + rng.normal(0, 50, 800))
        assert binary_segmentation(flat) == []

    def test_max_changes_respected(self, rng):
        n = 1200
        times = 900.0 * np.arange(n)
        values = 3000.0 + 200.0 * (np.arange(n) // 100 % 2) + rng.normal(0, 10, n)
        changes = binary_segmentation(TimeSeries(times, values), max_changes=3)
        assert len(changes) <= 3

    def test_results_time_ordered(self, rng):
        n = 1500
        times = 900.0 * np.arange(n)
        values = np.full(n, 3220.0)
        values[500:1000] = 3010.0
        values[1000:] = 2530.0
        changes = binary_segmentation(TimeSeries(times, values + rng.normal(0, 30, n)))
        assert [c.time_s for c in changes] == sorted(c.time_s for c in changes)


class TestSegmentMeans:
    def test_known_change_times(self):
        n = 1500
        times = 900.0 * np.arange(n)
        values = np.full(n, 3220.0)
        values[500:1000] = 3010.0
        values[1000:] = 2530.0
        means = segment_means(
            TimeSeries(times, values), [times[500], times[1000]]
        )
        assert means == pytest.approx([3220.0, 3010.0, 2530.0])

    def test_empty_segment_rejected(self):
        series = step_series(n=100, split=50)
        with pytest.raises(AnalysisError):
            segment_means(series, [-100.0])
