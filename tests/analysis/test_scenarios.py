"""Emissions scenario sweep tests."""

import numpy as np
import pytest

from repro.analysis.scenarios import (
    ci_sweep,
    lifetime_sensitivity,
    regime_boundaries_map,
)
from repro.core.emissions import EmbodiedProfile, EmissionsModel
from repro.core.regimes import OptimisationTarget, Regime
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def model():
    return EmissionsModel(embodied=EmbodiedProfile(), mean_power_kw=3500.0)


class TestCiSweep:
    def test_regimes_progress_with_ci(self, model):
        points = ci_sweep(model, np.array([10.0, 60.0, 200.0]))
        assert points[0].regime is Regime.SCOPE3_DOMINATED
        assert points[1].regime is Regime.BALANCED
        assert points[2].regime is Regime.SCOPE2_DOMINATED

    def test_advice_attached(self, model):
        points = ci_sweep(model, np.array([200.0]))
        assert points[0].target is OptimisationTarget.MAXIMISE_ENERGY_EFFICIENCY

    def test_scope2_share_monotone(self, model):
        points = ci_sweep(model, np.linspace(1.0, 400.0, 20))
        shares = [p.scope2_share for p in points]
        assert shares == sorted(shares)

    def test_scope3_constant_across_sweep(self, model):
        points = ci_sweep(model, np.array([10.0, 100.0]))
        assert points[0].scope3_tco2e_per_year == points[1].scope3_tco2e_per_year

    def test_empty_sweep_rejected(self, model):
        with pytest.raises(AnalysisError):
            ci_sweep(model, np.array([]))


class TestLifetimeSensitivity:
    def test_longer_life_lower_crossover(self):
        result = lifetime_sensitivity(3500.0, 10_000.0, np.array([4.0, 6.0, 8.0]))
        crossovers = [result[4.0], result[6.0], result[8.0]]
        assert crossovers == sorted(crossovers, reverse=True)

    def test_six_year_crossover_in_balanced_band(self):
        result = lifetime_sensitivity(3500.0, 10_000.0, np.array([6.0]))
        assert 30.0 < result[6.0] < 100.0


class TestRegimeBoundariesMap:
    def test_larger_embodied_raises_boundaries(self):
        rows = regime_boundaries_map(3500.0, np.array([5_000.0, 10_000.0, 20_000.0]))
        crossovers = [r["crossover_ci"] for r in rows]
        assert crossovers == sorted(crossovers)

    def test_row_structure(self):
        rows = regime_boundaries_map(3500.0, np.array([10_000.0]))
        row = rows[0]
        assert row["low_ci"] < row["crossover_ci"] < row["high_ci"]
        assert row["low_ci"] == pytest.approx(row["crossover_ci"] / 2)

    def test_paper_band_robust_across_embodied_uncertainty(self):
        """Even a 2x embodied-audit error keeps the band overlapping the
        paper's [30, 100] — the reason round thresholds are usable."""
        rows = regime_boundaries_map(3500.0, np.array([5_000.0, 20_000.0]))
        for row in rows:
            assert row["low_ci"] < 100.0
            assert row["high_ci"] > 30.0
