"""Chunk-fed analysis variants must agree with their batch counterparts."""

import numpy as np
import pytest

from repro.analysis.baseline import summarise, summarise_streaming
from repro.analysis.changepoint import (
    detect_single,
    detect_single_streaming,
    segment_means,
    segment_means_streaming,
)
from repro.errors import AnalysisError
from repro.telemetry.streaming import ChunkedSeriesReader
from repro.telemetry.series import TimeSeries


def step_series(n=5000, split=3000, before=3220.0, after=3010.0, seed=9):
    rng = np.random.default_rng(seed)
    times = 1.6e9 + 900.0 * np.arange(n)
    values = np.where(np.arange(n) < split, before, after)
    values = values + 30.0 * rng.standard_normal(n)
    values[rng.random(n) < 0.02] = np.nan
    return TimeSeries(times, values, "step")


class TestDetectSingleStreaming:
    @pytest.mark.parametrize("chunk_size", [64, 997, 10_000])
    def test_matches_batch(self, chunk_size):
        series = step_series()
        batch = detect_single(series)
        stream = detect_single_streaming(series, chunk_size)
        assert stream.index == batch.index
        assert stream.time_s == batch.time_s
        assert stream.mean_before == pytest.approx(batch.mean_before, rel=1e-9)
        assert stream.mean_after == pytest.approx(batch.mean_after, rel=1e-9)
        assert stream.significance == pytest.approx(batch.significance, rel=1e-9)

    def test_accepts_reader(self):
        series = step_series(1000, 400)
        reader = ChunkedSeriesReader(series, chunk_size=77)
        batch = detect_single(series)
        stream = detect_single_streaming(reader)
        assert stream.index == batch.index
        assert stream.delta == pytest.approx(batch.delta, rel=1e-9)

    def test_accepts_file_source(self, tmp_path):
        from repro.telemetry.io import save_csv

        series = step_series(600, 250)
        path = tmp_path / "step.csv"
        save_csv(series, path)
        stream = detect_single_streaming(str(path), chunk_size=101)
        batch = detect_single(series)
        assert stream.index == batch.index
        assert stream.mean_before == pytest.approx(batch.mean_before, rel=1e-6)

    def test_split_on_chunk_boundary(self):
        # The best split's right segment starts exactly at a chunk start.
        values = np.concatenate([np.full(200, 100.0), np.zeros(200)])
        series = TimeSeries(np.arange(400.0), values)
        batch = detect_single(series)
        stream = detect_single_streaming(series, chunk_size=50)
        assert batch.index == 200
        assert stream.index == batch.index
        assert stream.time_s == batch.time_s
        assert stream.mean_before == pytest.approx(100.0)
        assert stream.mean_after == pytest.approx(0.0)

    def test_too_few_valid_samples(self):
        series = TimeSeries(np.arange(5.0), [1.0, np.nan, np.nan, 2.0, 3.0])
        with pytest.raises(AnalysisError):
            detect_single_streaming(series)

    def test_constant_series_zero_significance(self):
        series = TimeSeries(np.arange(10.0), np.full(10, 5.0))
        stream = detect_single_streaming(series, chunk_size=3)
        batch = detect_single(series)
        assert stream.significance == batch.significance == 0.0
        assert stream.index == batch.index


class TestSegmentMeansStreaming:
    def test_matches_batch(self):
        series = step_series()
        changes = [float(series.times_s[3000]), float(series.times_s[4000])]
        batch = segment_means(series, changes)
        stream = segment_means_streaming(series, changes, chunk_size=333)
        assert stream == pytest.approx(batch, rel=1e-9)

    def test_empty_segment_raises(self):
        series = step_series(100, 50)
        far_future = float(series.times_s[-1]) + 1e6
        with pytest.raises(AnalysisError):
            segment_means_streaming(series, [far_future], chunk_size=17)

    def test_too_few_valid_samples(self):
        series = TimeSeries(np.arange(3.0), np.array([1.0, 2.0, np.nan]))
        with pytest.raises(AnalysisError):
            segment_means_streaming(series, [1.5])


class TestSummariseStreaming:
    def test_moments_match_batch(self):
        series = step_series()
        batch = summarise(series)
        stream = summarise_streaming(series, chunk_size=256)
        assert stream.mean == pytest.approx(batch.mean, rel=1e-9)
        assert stream.std == pytest.approx(batch.std, rel=1e-9)
        assert stream.minimum == batch.minimum
        assert stream.maximum == batch.maximum
        assert stream.n_samples == batch.n_samples
        assert stream.span_days == pytest.approx(batch.span_days, rel=1e-9)

    def test_percentiles_approximate_batch(self):
        # Stationary (no step): P² is asymptotically accurate for unimodal
        # data; the bimodal step case is covered by the exact moments above.
        series = step_series(20_000, split=0)
        batch = summarise(series)
        stream = summarise_streaming(series, chunk_size=4096)
        spread = batch.p95 - batch.p5
        assert stream.p5 == pytest.approx(batch.p5, abs=0.02 * spread)
        assert stream.median == pytest.approx(batch.median, abs=0.02 * spread)
        assert stream.p95 == pytest.approx(batch.p95, abs=0.02 * spread)

    def test_standard_error_available(self):
        stats = summarise_streaming(step_series(500, 200))
        assert stats.standard_error > 0

    def test_all_nan_raises(self):
        series = TimeSeries(np.arange(5.0), np.full(5, np.nan), "dead-meter")
        with pytest.raises(AnalysisError):
            summarise_streaming(series)
