"""Shared fixtures for the hpcem test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.interventions import (
    BiosDeterminismChange,
    DefaultFrequencyChange,
    InterventionSchedule,
    OperatingState,
)
from repro.facility.archer2 import archer2_inventory, scaled_inventory
from repro.node.calibration import build_node_model
from repro.node.determinism import DeterminismMode
from repro.scheduler.frequency_policy import FrequencyPolicy
from repro.units import SECONDS_PER_DAY
from repro.workload.applications import paper_curated_apps
from repro.workload.generator import JobStreamConfig
from repro.workload.mix import archer2_mix


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def node_model():
    """The default ARCHER2-calibrated node power model."""
    return build_node_model()


@pytest.fixture(scope="session")
def inventory():
    """The full ARCHER2 inventory."""
    return archer2_inventory()


@pytest.fixture(scope="session")
def small_inventory():
    """A 5 %-scale ARCHER2-proportioned facility for fast simulations."""
    return scaled_inventory(0.05)


@pytest.fixture(scope="session")
def mix():
    """The default ARCHER2 workload mix."""
    return archer2_mix()


def _small_campaign_config(
    duration_days: float,
    schedule: InterventionSchedule,
    seed: int,
) -> CampaignConfig:
    inv = scaled_inventory(0.05)
    return CampaignConfig(
        duration_s=duration_days * SECONDS_PER_DAY,
        schedule=schedule,
        inventory=inv,
        node_model=build_node_model(),
        mix=archer2_mix(),
        stream=JobStreamConfig(n_facility_nodes=inv.n_nodes, max_job_nodes=128),
        seed=seed,
        warmup_s=5 * SECONDS_PER_DAY,
    )


@pytest.fixture(scope="session")
def baseline_campaign():
    """A 20-day baseline campaign on the small facility (session-cached)."""
    schedule = InterventionSchedule(OperatingState())
    return run_campaign(_small_campaign_config(20, schedule, seed=1))


@pytest.fixture(scope="session")
def intervention_campaign():
    """A 30-day campaign with both interventions on the small facility."""
    initial = OperatingState(
        mode=DeterminismMode.POWER,
        policy=FrequencyPolicy(curated_apps=paper_curated_apps()),
    )
    schedule = InterventionSchedule(
        initial,
        [
            BiosDeterminismChange(time_s=10 * SECONDS_PER_DAY),
            DefaultFrequencyChange(time_s=20 * SECONDS_PER_DAY),
        ],
    )
    return run_campaign(_small_campaign_config(30, schedule, seed=2))
