"""Campaign integration tests (on the small scaled facility)."""

import numpy as np
import pytest

from repro.core.campaign import CampaignConfig
from repro.units import SECONDS_PER_DAY


class TestBaselineCampaign:
    def test_reporting_window_starts_at_zero(self, baseline_campaign):
        assert baseline_campaign.measured_kw.t_start_s == 0.0

    def test_high_utilisation(self, baseline_campaign):
        assert baseline_campaign.utilisation() > 0.85

    def test_measured_tracks_truth(self, baseline_campaign):
        assert baseline_campaign.mean_cabinet_kw == pytest.approx(
            baseline_campaign.true_kw.mean(), rel=0.01
        )

    def test_power_scales_with_facility(self, baseline_campaign):
        """5 % facility → mean power roughly 5 % of the ARCHER2 figure."""
        assert 100.0 < baseline_campaign.mean_cabinet_kw < 250.0

    def test_phase_means_single_phase(self, baseline_campaign):
        means = baseline_campaign.phase_means_kw()
        assert len(means) == 1
        assert means[0] == pytest.approx(baseline_campaign.mean_cabinet_kw, rel=0.01)

    def test_no_impacts_without_interventions(self, baseline_campaign):
        assert baseline_campaign.impacts() == []


class TestInterventionCampaign:
    def test_three_phases_decreasing(self, intervention_campaign):
        means = intervention_campaign.phase_means_kw()
        assert len(means) == 3
        assert means[0] > means[1] > means[2]

    def test_impacts_reported_per_intervention(self, intervention_campaign):
        impacts = intervention_campaign.impacts()
        assert len(impacts) == 2
        assert impacts[0].name.startswith("BIOS")
        assert all(impact.saving > 0 for impact in impacts)

    def test_relative_savings_shape(self, intervention_campaign):
        """BIOS ~5-10 %, frequency change the larger of the two."""
        means = intervention_campaign.phase_means_kw()
        bios = (means[0] - means[1]) / means[0]
        freq = (means[1] - means[2]) / means[1]
        assert 0.03 < bios < 0.12
        assert freq > bios

    def test_setting_split_after_frequency_change(self, intervention_campaign):
        split = intervention_campaign.simulation.node_hours_by_setting()
        assert "2.0GHz" in split
        assert split["2.0GHz"] > 0


class TestFailureIntegration:
    def test_failures_reduce_utilisation_and_power(self):
        """With a lossy fleet, some nodes are always offline: utilisation
        against the full inventory drops and so does cabinet power."""
        from repro.core.campaign import run_campaign
        from repro.facility.archer2 import scaled_inventory
        from repro.facility.failures import FailureModel
        from repro.workload.generator import JobStreamConfig

        inv = scaled_inventory(0.05)
        base_kwargs = dict(
            duration_s=10 * SECONDS_PER_DAY,
            inventory=inv,
            stream=JobStreamConfig(n_facility_nodes=inv.n_nodes, max_job_nodes=64),
            seed=9,
            warmup_s=3 * SECONDS_PER_DAY,
        )
        healthy = run_campaign(CampaignConfig(**base_kwargs))
        lossy = run_campaign(
            CampaignConfig(
                **base_kwargs,
                failure_model=FailureModel(mtbf_hours=200.0, mttr_hours=20.0),
            )
        )
        assert lossy.utilisation() < healthy.utilisation()
        assert lossy.mean_cabinet_kw < healthy.mean_cabinet_kw

    def test_offline_fraction_matches_model(self):
        from repro.facility.failures import FailureModel
        from repro.scheduler.backfill import BackfillScheduler

        model = FailureModel(mtbf_hours=100.0, mttr_hours=10.0)
        offline = round(1000 * model.steady_state_unavailability)
        scheduler = BackfillScheduler(1000, offline_nodes=offline)
        assert scheduler.offline_nodes == 91


class TestCampaignConfigValidation:
    def test_bad_duration_rejected(self):
        with pytest.raises(Exception):
            CampaignConfig(duration_s=0.0)

    def test_stream_defaults_to_inventory_size(self):
        config = CampaignConfig(duration_s=SECONDS_PER_DAY)
        assert config.resolved_stream().n_facility_nodes == config.inventory.n_nodes


class TestDeterminism:
    def test_same_seed_same_result(self, intervention_campaign):
        """Re-running the fixture's config reproduces the result exactly."""
        from repro.core.campaign import run_campaign

        again = run_campaign(intervention_campaign.config)
        np.testing.assert_array_equal(
            again.measured_kw.values, intervention_campaign.measured_kw.values
        )
        assert len(again.simulation.records) == len(
            intervention_campaign.simulation.records
        )
