"""Carbon-aware load-shifting tests."""

import numpy as np
import pytest

from repro.core.carbon_aware import optimal_shift_savings
from repro.errors import ConfigurationError
from repro.telemetry.series import TimeSeries


def day_series(n_days=4, step_s=3600.0, power_kw=3000.0, ci_amplitude=0.3):
    """Flat power against a sinusoidal daily CI cycle."""
    times = np.arange(0.0, n_days * 86_400.0, step_s)
    hours = (times % 86_400.0) / 3600.0
    ci = 200.0 * (1.0 + ci_amplitude * np.cos(2 * np.pi * (hours - 19.0) / 24.0))
    return (
        TimeSeries(times, np.full(len(times), power_kw)),
        TimeSeries(times, ci),
    )


class TestOptimalShift:
    def test_zero_flexibility_is_noop(self):
        power, ci = day_series()
        outcome = optimal_shift_savings(power, ci, flexible_fraction=0.0)
        assert outcome.saving_tco2e == pytest.approx(0.0, abs=1e-9)

    def test_savings_grow_with_flexibility(self):
        power, ci = day_series()
        savings = [
            optimal_shift_savings(power, ci, f).relative_saving
            for f in (0.1, 0.3, 0.5)
        ]
        assert savings[0] < savings[1] < savings[2]
        assert all(s > 0 for s in savings)

    def test_flat_ci_nothing_to_gain(self):
        power, _ = day_series()
        flat_ci = TimeSeries(power.times_s, np.full(len(power), 200.0))
        outcome = optimal_shift_savings(power, flat_ci, flexible_fraction=0.5)
        assert outcome.saving_tco2e == pytest.approx(0.0, abs=1e-9)

    def test_energy_conserved(self):
        """Shifting defers, never deletes: with CI ≡ 1 the 'emissions' equal
        the energy and must be identical before and after."""
        power, _ = day_series()
        unit_ci = TimeSeries(power.times_s, np.ones(len(power)))
        outcome = optimal_shift_savings(power, unit_ci, flexible_fraction=0.4)
        assert outcome.shifted_tco2e == pytest.approx(outcome.baseline_tco2e, rel=1e-9)

    def test_saving_bounded_by_ci_swing(self):
        """Relative saving cannot exceed flexibility × relative CI swing."""
        power, ci = day_series(ci_amplitude=0.3)
        outcome = optimal_shift_savings(power, ci, flexible_fraction=0.3)
        assert outcome.relative_saving < 0.3 * 0.6  # f × (peak-to-trough)/mean

    def test_larger_window_saves_at_least_daily(self):
        power, ci = day_series(n_days=6)
        daily = optimal_shift_savings(power, ci, 0.3, window_s=86_400.0)
        weekly = optimal_shift_savings(power, ci, 0.3, window_s=3 * 86_400.0)
        assert weekly.saving_tco2e >= daily.saving_tco2e - 1e-9

    def test_misaligned_series_rejected(self):
        power, ci = day_series()
        other = TimeSeries(power.times_s + 1.0, ci.values)
        with pytest.raises(ConfigurationError):
            optimal_shift_savings(power, other, 0.3)

    def test_bad_window_rejected(self):
        power, ci = day_series()
        with pytest.raises(ConfigurationError):
            optimal_shift_savings(power, ci, 0.3, window_s=0.0)

    def test_realistic_grid_savings_meaningful(self, rng):
        """Against a UK-shaped CI series, 30 % flexibility is worth several
        percent of scope 2 — worth having, far less than the §4 frequency
        lever, which is the correct qualitative conclusion."""
        from repro.grid.carbon_intensity import CarbonIntensityModel

        ci = CarbonIntensityModel(mean_ci_g_per_kwh=190.0).series(
            0.0, 14 * 86_400.0, 3600.0, rng
        )
        power = TimeSeries(ci.times_s, np.full(len(ci), 3000.0))
        outcome = optimal_shift_savings(power, ci, flexible_fraction=0.3)
        assert 0.01 < outcome.relative_saving < 0.15
