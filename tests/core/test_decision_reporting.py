"""Decision engine and reporting tests."""

import pytest

from repro.core.decision import (
    ARCHER2_WINTER_2022,
    DecisionEngine,
    Priorities,
)
from repro.core.efficiency import BASELINE_CONFIG
from repro.core.emissions import EmbodiedProfile, EmissionsModel
from repro.core.reporting import format_kw, format_ratio, render_table, series_to_csv
from repro.errors import ConfigurationError
from repro.node.determinism import DeterminismMode
from repro.node.pstates import FrequencySetting


@pytest.fixture(scope="module")
def engine(node_model, mix):
    emissions = EmissionsModel(embodied=EmbodiedProfile(), mean_power_kw=3500.0)
    return DecisionEngine(
        mix=mix,
        node_model=node_model,
        emissions_model=emissions,
        ci_g_per_kwh=190.0,  # UK winter 2022 context
    )


class TestDecisionEngine:
    def test_candidates_cover_grid(self, engine):
        candidates = engine.candidates()
        assert len(candidates) == 6  # 3 settings × 2 modes

    def test_archer2_priorities_pick_paper_configuration(self, engine):
        """The paper's declared priorities must reproduce the paper's choice:
        Performance Determinism at the 2.0 GHz default."""
        best = engine.recommend(ARCHER2_WINTER_2022)
        assert best.config.setting is FrequencySetting.GHZ_2_0
        assert best.config.mode is DeterminismMode.PERFORMANCE

    def test_pure_performance_priorities_keep_turbo(self, engine):
        perf_first = Priorities(
            energy_efficiency=0.0,
            emissions_efficiency=0.0,
            cost=0.0,
            performance=1.0,
        )
        best = engine.recommend(perf_first)
        assert best.config.setting is FrequencySetting.GHZ_2_25_TURBO

    def test_performance_floor_excludes_1_5ghz(self, engine):
        floored = Priorities(
            energy_efficiency=10.0, performance=0.1, min_performance_ratio=0.85
        )
        best = engine.recommend(floored)
        assert best.config.setting is not FrequencySetting.GHZ_1_5
        # Without the floor, aggressive energy weighting drops to 1.5 GHz.
        unfloored = Priorities(
            energy_efficiency=10.0, performance=0.1, min_performance_ratio=0.0
        )
        assert (
            engine.recommend(unfloored).config.setting is FrequencySetting.GHZ_1_5
        )

    def test_ranking_sorted(self, engine):
        ranking = engine.ranking(ARCHER2_WINTER_2022)
        scores = [r.score for r in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_baseline_scores_unity_ratios(self, engine):
        score = engine.score(BASELINE_CONFIG, ARCHER2_WINTER_2022)
        assert score.mean_perf_ratio == pytest.approx(1.0)
        assert score.mean_energy_ratio == pytest.approx(1.0)

    def test_impossible_floor_raises(self, engine):
        with pytest.raises(ConfigurationError):
            engine.recommend(Priorities(min_performance_ratio=1.0 + 1e-12))

    def test_bad_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            Priorities(energy_efficiency=-1.0)
        with pytest.raises(ConfigurationError):
            Priorities(
                energy_efficiency=0.0, emissions_efficiency=0.0, cost=0.0, performance=0.0
            )


class TestReporting:
    def test_format_helpers(self):
        assert format_ratio(0.934) == "0.93"
        assert format_ratio(None) == "-"
        assert format_kw(3219.6) == "3,220"

    def test_render_table_structure(self):
        table = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert lines[2].startswith("| a")
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_render_table_cell_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_table_needs_columns(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])

    def test_series_to_csv(self, tmp_path):
        import numpy as np

        from repro.telemetry.series import TimeSeries

        series = TimeSeries(np.array([0.0, 900.0]), np.array([3220.0, 3210.0]))
        path = tmp_path / "fig1.csv"
        series_to_csv(series, path)
        content = path.read_text().splitlines()
        assert content[0] == "time_s,value_kw"
        assert len(content) == 3
