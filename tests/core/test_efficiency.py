"""Efficiency metric and comparison-table tests."""

import pytest

from repro.core.efficiency import (
    BASELINE_CONFIG,
    POST_BIOS_CONFIG,
    POST_FREQ_CONFIG,
    compare_app,
    comparison_table,
    energy_to_solution_kwh,
    output_per_kwh,
    output_per_nodeh,
)
from repro.errors import ConfigurationError
from repro.workload.applications import paper_frequency_benchmarks


class TestScalarMetrics:
    def test_energy_to_solution(self):
        # 4 nodes at 500 W for 2 h = 4 kWh.
        assert energy_to_solution_kwh(500.0, 4, 7200.0) == pytest.approx(4.0)

    def test_output_per_kwh(self):
        assert output_per_kwh(10.0, 5.0) == 2.0

    def test_output_per_nodeh(self):
        assert output_per_nodeh(8.0, 16.0) == 0.5

    def test_validation(self):
        with pytest.raises(Exception):
            energy_to_solution_kwh(500.0, 0, 100.0)
        with pytest.raises(Exception):
            output_per_kwh(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            energy_to_solution_kwh(-1.0, 2, 100.0)


class TestOperatingConfigs:
    def test_paper_story_configs_distinct(self):
        labels = {
            BASELINE_CONFIG.label(),
            POST_BIOS_CONFIG.label(),
            POST_FREQ_CONFIG.label(),
        }
        assert len(labels) == 3


class TestComparisons:
    def test_compare_app_row_shape(self, node_model):
        app = paper_frequency_benchmarks()["VASP CdTe"]
        row = compare_app(app, POST_FREQ_CONFIG, POST_BIOS_CONFIG, node_model)
        assert row.app_name == "VASP CdTe"
        assert row.nodes == 8
        assert 0 < row.perf_ratio <= 1.0
        assert 0 < row.energy_ratio < 1.0

    def test_errors_against_paper_small(self, node_model):
        app = paper_frequency_benchmarks()["VASP CdTe"]
        row = compare_app(app, POST_FREQ_CONFIG, POST_BIOS_CONFIG, node_model)
        assert abs(row.perf_error) < 0.02
        assert abs(row.energy_error) < 0.06

    def test_errors_none_without_paper_values(self, node_model):
        from repro.workload.applications import synthetic_archetypes

        app = synthetic_archetypes()["Climate/Ocean archetype"]
        row = compare_app(app, POST_FREQ_CONFIG, POST_BIOS_CONFIG, node_model)
        assert row.perf_error is None
        assert row.energy_error is None

    def test_table_covers_all_apps(self, node_model):
        apps = paper_frequency_benchmarks()
        rows = comparison_table(apps, POST_FREQ_CONFIG, POST_BIOS_CONFIG, node_model)
        assert [r.app_name for r in rows] == list(apps)

    def test_identity_comparison(self, node_model):
        app = paper_frequency_benchmarks()["CASTEP Al Slab"]
        row = compare_app(app, BASELINE_CONFIG, BASELINE_CONFIG, node_model)
        assert row.perf_ratio == pytest.approx(1.0)
        assert row.energy_ratio == pytest.approx(1.0)
