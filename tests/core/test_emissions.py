"""Scope-2/scope-3 emissions accounting tests."""

import numpy as np
import pytest

from repro.core.emissions import EmbodiedProfile, EmissionsBreakdown, EmissionsModel
from repro.errors import ConfigurationError
from repro.telemetry.series import TimeSeries
from repro.units import SECONDS_PER_YEAR


@pytest.fixture(scope="module")
def model():
    """ARCHER2-scale: 10 ktCO₂e embodied over 6 years, 3.5 MW facility."""
    return EmissionsModel(embodied=EmbodiedProfile(), mean_power_kw=3500.0)


class TestEmbodiedProfile:
    def test_annual_rate(self):
        profile = EmbodiedProfile(total_tco2e=12_000.0, lifetime_years=6.0)
        assert profile.annual_rate_tco2e == pytest.approx(2000.0)

    def test_amortisation_linear(self):
        profile = EmbodiedProfile(total_tco2e=6000.0, lifetime_years=6.0)
        assert profile.amortised_tco2e(SECONDS_PER_YEAR) == pytest.approx(1000.0)
        assert profile.amortised_tco2e(0.0) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            EmbodiedProfile().amortised_tco2e(-1.0)

    def test_bad_lifetime_rejected(self):
        with pytest.raises(Exception):
            EmbodiedProfile(lifetime_years=0.0)


class TestScope2:
    def test_annual_energy(self, model):
        # 3.5 MW × 8766 h ≈ 30.7 GWh.
        assert model.annual_energy_kwh() == pytest.approx(30.68e6, rel=0.01)

    def test_scope2_linear_in_ci(self, model):
        assert model.scope2_tco2e_per_year(200.0) == pytest.approx(
            2 * model.scope2_tco2e_per_year(100.0)
        )

    def test_scope2_zero_at_zero_ci(self, model):
        assert model.scope2_tco2e_per_year(0.0) == 0.0

    def test_scope2_from_series_matches_flat(self, model):
        times = np.arange(0.0, 48 * 3600.0, 3600.0)
        power = TimeSeries(times, np.full(len(times), 3500.0))
        ci = TimeSeries(times, np.full(len(times), 100.0))
        tco2 = EmissionsModel.scope2_from_series(power, ci)
        # 3.5 MW × 48 h × 100 g/kWh = 16.8 t
        assert tco2 == pytest.approx(16.8, rel=1e-6)

    def test_scope2_series_misaligned_rejected(self, model):
        a = TimeSeries(np.array([0.0, 1.0]), np.array([1.0, 1.0]))
        b = TimeSeries(np.array([0.0, 2.0]), np.array([1.0, 1.0]))
        with pytest.raises(ConfigurationError):
            EmissionsModel.scope2_from_series(a, b)


class TestBreakdowns:
    def test_lifetime_scope3_is_total(self, model):
        breakdown = model.lifetime_breakdown(100.0)
        assert breakdown.scope3_tco2e == pytest.approx(10_000.0)

    def test_shares_sum_to_one(self, model):
        breakdown = model.annual_breakdown(65.0)
        assert breakdown.scope2_share + (1 - breakdown.scope2_share) == 1.0
        assert breakdown.total_tco2e == pytest.approx(
            breakdown.scope2_tco2e + breakdown.scope3_tco2e
        )

    def test_dominance_ratio(self):
        breakdown = EmissionsBreakdown(scope2_tco2e=2000.0, scope3_tco2e=1000.0)
        assert breakdown.dominance_ratio == 2.0

    def test_dominance_infinite_without_scope3(self):
        breakdown = EmissionsBreakdown(scope2_tco2e=1.0, scope3_tco2e=0.0)
        assert breakdown.dominance_ratio == float("inf")


class TestCrossover:
    def test_crossover_in_paper_balanced_band(self, model):
        """The ARCHER2-scale crossover must land inside [30, 100] g/kWh —
        the consistency check behind the paper's regime boundaries."""
        crossover = model.crossover_ci_g_per_kwh()
        assert 30.0 < crossover < 100.0

    def test_crossover_balances_scopes(self, model):
        crossover = model.crossover_ci_g_per_kwh()
        breakdown = model.annual_breakdown(crossover)
        assert breakdown.scope2_share == pytest.approx(0.5, abs=1e-9)

    def test_longer_lifetime_lowers_crossover(self):
        short = EmissionsModel(
            embodied=EmbodiedProfile(lifetime_years=4.0), mean_power_kw=3500.0
        )
        long = EmissionsModel(
            embodied=EmbodiedProfile(lifetime_years=8.0), mean_power_kw=3500.0
        )
        assert long.crossover_ci_g_per_kwh() < short.crossover_ci_g_per_kwh()

    def test_share_curve_monotone(self, model):
        ci = np.linspace(0.0, 500.0, 50)
        shares = model.scope2_share_curve(ci)
        assert np.all(np.diff(shares) > 0)
        assert shares[0] == 0.0
        assert shares[-1] < 1.0

    def test_share_curve_negative_ci_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.scope2_share_curve(np.array([-1.0]))
