"""Intervention framework tests."""

import numpy as np
import pytest

from repro.core.interventions import (
    BiosDeterminismChange,
    DefaultFrequencyChange,
    InterventionSchedule,
    OperatingState,
    ScheduledEnvironment,
    assess_impact,
)
from repro.errors import ConfigurationError
from repro.node.calibration import build_node_model
from repro.node.determinism import DeterminismMode
from repro.node.pstates import FrequencySetting
from repro.scheduler.frequency_policy import FrequencyPolicy
from repro.telemetry.series import TimeSeries
from repro.units import SECONDS_PER_DAY
from repro.workload.applications import full_catalogue, paper_curated_apps
from repro.workload.jobs import Job


def make_job(app_name="VASP CdTe", override=None):
    return Job(
        job_id=0,
        app=full_catalogue()[app_name],
        n_nodes=4,
        submit_time_s=0.0,
        reference_runtime_s=3600.0,
        frequency_override=override,
    )


@pytest.fixture
def schedule():
    return InterventionSchedule(
        OperatingState(policy=FrequencyPolicy(curated_apps=paper_curated_apps())),
        [
            BiosDeterminismChange(time_s=100.0),
            DefaultFrequencyChange(time_s=200.0),
        ],
    )


class TestSchedule:
    def test_state_progression(self, schedule):
        assert schedule.state_at(0.0).mode is DeterminismMode.POWER
        assert schedule.state_at(150.0).mode is DeterminismMode.PERFORMANCE
        assert (
            schedule.state_at(150.0).policy.default_setting
            is FrequencySetting.GHZ_2_25_TURBO
        )
        assert (
            schedule.state_at(250.0).policy.default_setting
            is FrequencySetting.GHZ_2_0
        )

    def test_change_exactly_at_time(self, schedule):
        # bisect_right: at the change instant the new state is in force.
        assert schedule.state_at(100.0).mode is DeterminismMode.PERFORMANCE

    def test_interventions_sorted(self):
        sched = InterventionSchedule(
            OperatingState(),
            [
                DefaultFrequencyChange(time_s=200.0),
                BiosDeterminismChange(time_s=100.0),
            ],
        )
        assert sched.change_times_s == [100.0, 200.0]

    def test_frequency_change_preserves_policy_settings(self, schedule):
        final = schedule.state_at(1e9).policy
        assert final.curated_apps == paper_curated_apps()
        assert final.reset_threshold == 0.10

    def test_empty_schedule(self):
        sched = InterventionSchedule(OperatingState())
        assert sched.state_at(0.0).mode is DeterminismMode.POWER
        assert sched.change_times_s == []


class TestScheduledEnvironment:
    def test_resolution_follows_timeline(self, schedule):
        env = ScheduledEnvironment(node_model=build_node_model(), schedule=schedule)
        job = make_job()
        before = env.resolve(job, 50.0)
        after_bios = env.resolve(job, 150.0)
        after_freq = env.resolve(job, 250.0)
        assert before.setting is FrequencySetting.GHZ_2_25_TURBO
        assert after_freq.setting is FrequencySetting.GHZ_2_0
        # BIOS change lowers power, frequency change lowers it further.
        assert before.node_power_w > after_bios.node_power_w > after_freq.node_power_w

    def test_runtime_stretches_after_frequency_change(self, schedule):
        env = ScheduledEnvironment(node_model=build_node_model(), schedule=schedule)
        job = make_job("CASTEP Al Slab")
        assert env.resolve(job, 250.0).runtime_s > env.resolve(job, 50.0).runtime_s

    def test_curated_reset_app_keeps_turbo(self, schedule):
        env = ScheduledEnvironment(node_model=build_node_model(), schedule=schedule)
        job = make_job("LAMMPS Ethanol")
        assert env.resolve(job, 250.0).setting is FrequencySetting.GHZ_2_25_TURBO

    def test_cache_stable_across_calls(self, schedule):
        env = ScheduledEnvironment(node_model=build_node_model(), schedule=schedule)
        job = make_job()
        a = env.resolve(job, 250.0)
        b = env.resolve(job, 260.0)
        assert a == b


class TestAssessImpact:
    def make_step_series(self):
        times = np.arange(0.0, 20 * SECONDS_PER_DAY, 3600.0)
        values = np.where(times < 10 * SECONDS_PER_DAY, 3220.0, 2530.0)
        return TimeSeries(times, values, "step")

    def test_step_recovered(self):
        impact = assess_impact(
            self.make_step_series(), 10 * SECONDS_PER_DAY, settle_s=0.0
        )
        assert impact.mean_before == pytest.approx(3220.0)
        assert impact.mean_after == pytest.approx(2530.0)
        assert impact.saving == pytest.approx(690.0)
        assert impact.relative_saving == pytest.approx(690.0 / 3220.0)

    def test_settle_window_excluded(self):
        times = np.arange(0.0, 20 * SECONDS_PER_DAY, 3600.0)
        values = np.where(times < 10 * SECONDS_PER_DAY, 3220.0, 2530.0)
        # Corrupt the transition day; with a settle window it must not matter.
        transition = (times >= 10 * SECONDS_PER_DAY) & (
            times < 11 * SECONDS_PER_DAY
        )
        values = np.where(transition, 9999.0, values)
        impact = assess_impact(
            TimeSeries(times, values), 10 * SECONDS_PER_DAY, settle_s=SECONDS_PER_DAY
        )
        assert impact.mean_after == pytest.approx(2530.0)

    def test_change_outside_span_rejected(self):
        with pytest.raises(ConfigurationError):
            assess_impact(self.make_step_series(), 100 * SECONDS_PER_DAY)

    def test_settle_swallowing_after_period_rejected(self):
        with pytest.raises(ConfigurationError):
            assess_impact(
                self.make_step_series(),
                19 * SECONDS_PER_DAY,
                settle_s=10 * SECONDS_PER_DAY,
            )
