"""Whole-life cost/emissions model tests."""

import pytest

from repro.core.lifetime import LifetimeCostModel


@pytest.fixture(scope="module")
def model():
    return LifetimeCostModel()


class TestPosition:
    def test_paper_claim_electricity_rivals_capital(self, model):
        """§1: at winter-2022 UK prices (~£0.30/kWh), lifetime electricity
        matches or exceeds the capital cost of an ARCHER2-class system."""
        position = model.position(
            mean_cabinet_power_kw=3220.0,
            electricity_gbp_per_kwh=0.30,
            ci_g_per_kwh=190.0,
        )
        assert position.electricity_share >= 0.40
        assert position.electricity_gbp == pytest.approx(
            3220.0 * 1.1 * 6 * 8766 * 0.30, rel=0.01
        )

    def test_historic_prices_capital_dominated(self, model):
        """At ~£0.08/kWh (the historic regime) capital dominates — the
        'historically' half of the §1 claim."""
        position = model.position(3220.0, 0.08, 190.0)
        assert position.electricity_share < 0.40

    def test_emissions_totals(self, model):
        position = model.position(3220.0, 0.2, 190.0)
        assert position.scope3_tco2e == pytest.approx(10_000.0)
        assert position.scope2_tco2e > position.scope3_tco2e  # UK 2022 CI
        assert position.total_tco2e == pytest.approx(
            position.scope2_tco2e + position.scope3_tco2e
        )

    def test_validation(self, model):
        with pytest.raises(Exception):
            model.position(0.0, 0.2, 190.0)
        with pytest.raises(ValueError):
            LifetimeCostModel(overhead_factor=0.9)


class TestInterventionValue:
    def test_paper_savings_are_worth_millions(self, model):
        """690 kW over a 6-year life at £0.30/kWh ≈ £12M."""
        value = model.intervention_value(3220.0, 2530.0, 0.30, 190.0)
        assert 8e6 < value["cost_saving_gbp"] < 15e6

    def test_scope2_saving_positive(self, model):
        value = model.intervention_value(3220.0, 2530.0, 0.30, 190.0)
        assert value["scope2_saving_tco2e"] > 1000.0

    def test_share_falls_after_intervention(self, model):
        value = model.intervention_value(3220.0, 2530.0, 0.30, 190.0)
        assert value["electricity_share_after"] < value["electricity_share_before"]

    def test_zero_reduction_zero_value(self, model):
        value = model.intervention_value(3220.0, 3220.0, 0.30, 190.0)
        assert value["cost_saving_gbp"] == pytest.approx(0.0)
        assert value["scope2_saving_tco2e"] == pytest.approx(0.0)
