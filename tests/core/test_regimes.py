"""Regime classification tests (paper §2)."""

import pytest

from repro.core.emissions import EmbodiedProfile, EmissionsModel
from repro.core.regimes import (
    OptimisationTarget,
    PAPER_HIGH_CI,
    PAPER_LOW_CI,
    Regime,
    advice,
    classify_ci,
    derive_band,
)
from repro.errors import ConfigurationError


class TestPaperClassifier:
    def test_low_ci_scope3_dominated(self):
        assert classify_ci(10.0) is Regime.SCOPE3_DOMINATED

    def test_boundary_30_is_balanced(self):
        assert classify_ci(30.0) is Regime.BALANCED

    def test_mid_band_balanced(self):
        assert classify_ci(65.0) is Regime.BALANCED

    def test_boundary_100_is_balanced(self):
        assert classify_ci(100.0) is Regime.BALANCED

    def test_high_ci_scope2_dominated(self):
        assert classify_ci(190.0) is Regime.SCOPE2_DOMINATED

    def test_just_below_30_is_scope3(self):
        """The boundary is pinned at exactly 30.0: one ULP below is scope 3."""
        import numpy as np

        assert classify_ci(float(np.nextafter(30.0, 0.0))) is Regime.SCOPE3_DOMINATED

    def test_just_above_100_is_scope2(self):
        """The boundary is pinned at exactly 100.0: one ULP above is scope 2."""
        import numpy as np

        assert classify_ci(float(np.nextafter(100.0, 200.0))) is Regime.SCOPE2_DOMINATED

    def test_live_tracker_shares_boundary_semantics(self):
        """The live RegimeTracker classifies through classify_ci — both
        boundaries are balanced there too (single source of truth)."""
        import numpy as np

        from repro.live.events import CI_STREAM, StreamBatch
        from repro.live.regime import RegimeTracker, RegimeTrackerConfig

        for boundary in (30.0, 100.0):
            tracker = RegimeTracker(
                CI_STREAM,
                RegimeTrackerConfig(hysteresis_g_per_kwh=0.0, min_dwell_samples=1),
            )
            tracker.process(
                StreamBatch(CI_STREAM, np.array([0.0]), np.array([boundary]))
            )
            assert tracker.current is Regime.BALANCED

    def test_negative_ci_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_ci(-1.0)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_ci(50.0, low=100.0, high=30.0)


class TestAdvice:
    def test_paper_rules(self):
        assert advice(Regime.SCOPE3_DOMINATED) is OptimisationTarget.MAXIMISE_PERFORMANCE
        assert advice(Regime.BALANCED) is OptimisationTarget.BALANCE
        assert (
            advice(Regime.SCOPE2_DOMINATED)
            is OptimisationTarget.MAXIMISE_ENERGY_EFFICIENCY
        )


class TestDerivedBand:
    @pytest.fixture(scope="class")
    def model(self):
        return EmissionsModel(embodied=EmbodiedProfile(), mean_power_kw=3500.0)

    def test_band_brackets_paper_boundaries(self, model):
        """Headline result: the [30, 100] band emerges from the model."""
        band = derive_band(model)
        assert band.brackets_paper_band()

    def test_band_centred_on_crossover(self, model):
        band = derive_band(model, dominance_factor=2.0)
        assert band.low_ci_g_per_kwh == pytest.approx(band.crossover_ci_g_per_kwh / 2)
        assert band.high_ci_g_per_kwh == pytest.approx(band.crossover_ci_g_per_kwh * 2)

    def test_band_classification_consistent(self, model):
        band = derive_band(model)
        assert band.classify(band.crossover_ci_g_per_kwh) is Regime.BALANCED
        assert band.classify(band.low_ci_g_per_kwh / 2) is Regime.SCOPE3_DOMINATED
        assert band.classify(band.high_ci_g_per_kwh * 2) is Regime.SCOPE2_DOMINATED

    def test_dominance_factor_below_one_rejected(self, model):
        with pytest.raises(ConfigurationError):
            derive_band(model, dominance_factor=0.5)

    def test_uk_2022_ci_is_scope2_dominated(self, model):
        """The paper's operational context: UK grid ~190 g/kWh → optimise
        energy efficiency, which is exactly what ARCHER2 did."""
        band = derive_band(model)
        regime = band.classify(190.0)
        assert regime is Regime.SCOPE2_DOMINATED
        assert advice(regime) is OptimisationTarget.MAXIMISE_ENERGY_EFFICIENCY

    def test_paper_constants(self):
        assert PAPER_LOW_CI == 30.0
        assert PAPER_HIGH_CI == 100.0
