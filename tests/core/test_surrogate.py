"""AI-surrogate scenario tests (paper future work)."""

import pytest

from repro.core.surrogate import SurrogateScenario, evaluate_surrogate
from repro.errors import ConfigurationError
from repro.node.determinism import DeterminismMode
from repro.node.pstates import FrequencySetting
from repro.workload.applications import paper_frequency_benchmarks, synthetic_archetypes


@pytest.fixture(scope="module")
def climate():
    return synthetic_archetypes()["Climate/Ocean archetype"]


class TestScenarioValidation:
    def test_speedup_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            SurrogateScenario(replaced_fraction=0.5, surrogate_speedup=0.5)

    def test_fraction_bounds(self):
        with pytest.raises(Exception):
            SurrogateScenario(replaced_fraction=1.5, surrogate_speedup=10.0)

    def test_negative_training_energy_rejected(self):
        with pytest.raises(Exception):
            SurrogateScenario(
                replaced_fraction=0.5, surrogate_speedup=10.0, training_energy_kwh=-1.0
            )


class TestEvaluateSurrogate:
    def test_null_scenario_is_identity(self, node_model, climate):
        outcome = evaluate_surrogate(
            climate,
            SurrogateScenario(replaced_fraction=0.0, surrogate_speedup=10.0),
            node_model,
        )
        assert outcome.time_ratio == pytest.approx(1.0)
        assert outcome.energy_ratio == pytest.approx(1.0)
        assert outcome.per_run_saving_kwh == pytest.approx(0.0, abs=1e-9)
        assert outcome.breakeven_runs == 0.0

    def test_fast_surrogate_saves_time_and_energy(self, node_model, climate):
        outcome = evaluate_surrogate(
            climate,
            SurrogateScenario(replaced_fraction=0.5, surrogate_speedup=10.0),
            node_model,
        )
        assert outcome.time_ratio < 0.6
        assert outcome.energy_ratio < 0.7
        assert outcome.per_run_saving_kwh > 0

    def test_larger_replacement_saves_more(self, node_model, climate):
        small = evaluate_surrogate(
            climate,
            SurrogateScenario(replaced_fraction=0.2, surrogate_speedup=10.0),
            node_model,
        )
        large = evaluate_surrogate(
            climate,
            SurrogateScenario(replaced_fraction=0.6, surrogate_speedup=10.0),
            node_model,
        )
        assert large.time_ratio < small.time_ratio
        assert large.energy_ratio < small.energy_ratio

    def test_breakeven_scales_with_training_cost(self, node_model, climate):
        cheap = evaluate_surrogate(
            climate,
            SurrogateScenario(
                replaced_fraction=0.5, surrogate_speedup=10.0, training_energy_kwh=100.0
            ),
            node_model,
        )
        pricey = evaluate_surrogate(
            climate,
            SurrogateScenario(
                replaced_fraction=0.5, surrogate_speedup=10.0, training_energy_kwh=1000.0
            ),
            node_model,
        )
        assert pricey.breakeven_runs == pytest.approx(10 * cheap.breakeven_runs)

    def test_marginal_surrogate_never_breaks_even(self, node_model, climate):
        """A surrogate that is barely faster but much more power-hungry per
        second (compute bound) can lose on energy — breakeven must be inf."""
        outcome = evaluate_surrogate(
            climate,
            SurrogateScenario(
                replaced_fraction=0.9,
                surrogate_speedup=1.0,
                surrogate_compute_fraction=1.0,
                training_energy_kwh=10.0,
            ),
            node_model,
        )
        assert outcome.energy_ratio > 1.0
        assert outcome.breakeven_runs == float("inf")

    def test_perf_ratio_inverse_of_time(self, node_model, climate):
        outcome = evaluate_surrogate(
            climate,
            SurrogateScenario(replaced_fraction=0.3, surrogate_speedup=5.0),
            node_model,
        )
        assert outcome.perf_ratio == pytest.approx(1.0 / outcome.time_ratio)

    def test_operating_point_matters(self, node_model):
        """At 2.0 GHz the compute-bound surrogate phase is slower relative
        to the memory-bound physics phase, so the hybrid gains differ."""
        app = paper_frequency_benchmarks()["VASP CdTe"]
        scenario = SurrogateScenario(replaced_fraction=0.5, surrogate_speedup=8.0)
        turbo = evaluate_surrogate(
            app, scenario, node_model, setting=FrequencySetting.GHZ_2_25_TURBO
        )
        capped = evaluate_surrogate(
            app,
            scenario,
            node_model,
            setting=FrequencySetting.GHZ_2_0,
            mode=DeterminismMode.PERFORMANCE,
        )
        assert turbo.time_ratio != pytest.approx(capped.time_ratio)

    def test_bad_nodes_rejected(self, node_model, climate):
        with pytest.raises(ConfigurationError):
            evaluate_surrogate(
                climate,
                SurrogateScenario(replaced_fraction=0.5, surrogate_speedup=10.0),
                node_model,
                n_nodes=0,
            )
