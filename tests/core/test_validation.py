"""Reproduction self-check tests."""

from repro.core.validation import Check, ValidationReport, validate_reproduction


class TestValidateReproduction:
    def test_all_checks_pass_on_shipped_calibration(self):
        report = validate_reproduction()
        assert report.passed, str(report)

    def test_every_paper_shape_criterion_present(self):
        names = {c.name for c in validate_reproduction().checks}
        for fragment in ("T1", "T2", "T3", "T4", "R1"):
            assert any(fragment in n for n in names), fragment

    def test_render_includes_verdict(self):
        text = str(validate_reproduction())
        assert "all checks passed" in text
        assert text.count("[PASS]") >= 7


class TestReportStructure:
    def test_failures_listed(self):
        report = ValidationReport(
            checks=(
                Check(name="ok", passed=True, detail="fine"),
                Check(name="bad", passed=False, detail="broken"),
            )
        )
        assert not report.passed
        assert [c.name for c in report.failures] == ["bad"]
        assert "1 check(s) FAILED" in str(report)

    def test_cli_validate_flag(self, capsys):
        from repro.cli import main

        assert main(["--validate"]) == 0
        assert "all checks passed" in capsys.readouterr().out
