"""Cache correctness: LRU behaviour, disk store integrity, invalidation."""

import concurrent.futures
import threading

import numpy as np
import pytest

from repro.engine.cache import LRUCache, SweepStore
from repro.engine.plan import CIScenario, SweepSpec
from repro.engine.runner import COLUMNS, run_sweep
from repro.errors import ConfigurationError
from repro.node.determinism import DeterminismMode
from repro.node.pstates import FrequencySetting


def small_spec(**overrides):
    fields = dict(
        frequencies=(FrequencySetting.GHZ_2_0,),
        bios_modes=(DeterminismMode.POWER, DeterminismMode.PERFORMANCE),
        ci_scenarios=(CIScenario.flat(25.0), CIScenario.flat(190.0)),
        utilisations=(0.5, 0.9),
        node_counts=(1000,),
        lifetimes_years=(6.0,),
    )
    fields.update(overrides)
    return SweepSpec(**fields)


class TestLRUCache:
    def test_get_put_and_counters(self):
        lru = LRUCache(max_entries=2)
        assert lru.get("a") is None
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert (lru.hits, lru.misses) == (1, 1)

    def test_evicts_least_recently_used(self):
        lru = LRUCache(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # refresh a; b becomes LRU
        lru.put("c", 3)
        assert "b" not in lru
        assert "a" in lru and "c" in lru

    def test_invalidate_and_clear(self):
        lru = LRUCache()
        lru.put("a", 1)
        assert lru.invalidate("a")
        assert not lru.invalidate("a")
        lru.put("b", 2)
        lru.clear()
        assert len(lru) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            LRUCache(max_entries=0)

    def test_put_existing_at_capacity_evicts_nothing(self):
        """Overwriting a resident key at max_entries must not evict: the
        size does not grow, so no spurious eviction may fire."""
        lru = LRUCache(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 10)  # overwrite while full
        assert len(lru) == 2
        assert "a" in lru and "b" in lru
        assert lru.get("a") == 10

    def test_put_existing_refreshes_recency(self):
        """An overwritten key becomes most-recently-used, so the *other*
        key is the one evicted by the next insertion."""
        lru = LRUCache(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 10)  # a is now MRU; b is LRU
        lru.put("c", 3)
        assert "b" not in lru
        assert "a" in lru and "c" in lru
        assert lru.get("a") == 10


class TestSweepStoreChunks:
    def test_round_trip_is_byte_identical(self, tmp_path):
        spec = small_spec()
        store = SweepStore(tmp_path)
        fresh = run_sweep(spec, chunk_size=3, store=store)
        replay = run_sweep(spec, chunk_size=3, store=SweepStore(tmp_path))
        assert replay.meta.computed_chunks == 0
        for name in COLUMNS:
            assert fresh.columns[name].tobytes() == replay.columns[name].tobytes()
            assert fresh.columns[name].dtype == replay.columns[name].dtype

    def test_corrupt_chunk_is_treated_as_miss_and_removed(self, tmp_path):
        spec = small_spec()
        store = SweepStore(tmp_path)
        run_sweep(spec, chunk_size=4, store=store)
        chunk = store.chunk_path(spec.spec_hash, 0, 4)
        chunk.write_bytes(b"not a zip file")
        assert store.get_chunk(spec.spec_hash, 0, 4, COLUMNS) is None
        assert not chunk.exists()
        # A re-run recomputes the damaged chunk and still matches.
        again = run_sweep(spec, chunk_size=4, store=store)
        clean = run_sweep(spec, chunk_size=4)
        for name in COLUMNS:
            assert again.columns[name].tobytes() == clean.columns[name].tobytes()

    def test_wrong_row_count_is_rejected(self, tmp_path):
        spec = small_spec()
        store = SweepStore(tmp_path)
        run_sweep(spec, chunk_size=4, store=store)
        # Claim rows [0, 5) with a 4-row payload.
        good = store.chunk_path(spec.spec_hash, 0, 4)
        bad = store.chunk_path(spec.spec_hash, 0, 5)
        bad.write_bytes(good.read_bytes())
        assert store.get_chunk(spec.spec_hash, 0, 5, COLUMNS) is None

    def test_cached_chunks_lists_ranges(self, tmp_path):
        spec = small_spec()
        store = SweepStore(tmp_path)
        run_sweep(spec, chunk_size=3, store=store)
        assert store.cached_chunks(spec.spec_hash) == [(0, 3), (3, 6), (6, 8)]


class TestInvalidation:
    def test_any_spec_field_change_misses(self, tmp_path):
        store = SweepStore(tmp_path)
        run_sweep(small_spec(), chunk_size=8, store=store)
        changed = small_spec(utilisations=(0.5, 0.91))
        result = run_sweep(changed, chunk_size=8, store=store)
        assert result.meta.disk_hits == 0
        assert result.meta.computed_chunks > 0

    def test_engine_version_bump_orphans_entries(self, tmp_path):
        spec = small_spec()
        run_sweep(spec, chunk_size=8, store=SweepStore(tmp_path))
        future = SweepStore(tmp_path, engine_version="999")
        assert future.get_chunk(spec.spec_hash, 0, 8, COLUMNS) is None

    def test_explicit_invalidate_forces_recompute(self, tmp_path):
        spec = small_spec()
        store = SweepStore(tmp_path)
        run_sweep(spec, chunk_size=8, store=store)
        assert store.invalidate(spec.spec_hash) > 0
        result = run_sweep(spec, chunk_size=8, store=store)
        assert result.meta.disk_hits == 0

    def test_memory_cache_is_version_keyed_and_clearable(self):
        spec = small_spec()
        lru = LRUCache()
        run_sweep(spec, memory_cache=lru)
        assert run_sweep(spec, memory_cache=lru).meta.memory_hit
        lru.clear()
        assert not run_sweep(spec, memory_cache=lru).meta.memory_hit


class TestConcurrentWriters:
    def test_put_chunk_ignores_existing_chunk(self, tmp_path):
        """Regression: a second writer must not republish an existing chunk."""
        spec = small_spec()
        store = SweepStore(tmp_path)
        result = run_sweep(spec, chunk_size=8, store=store)
        columns = {name: result.columns[name][:8] for name in COLUMNS}
        target = store.chunk_path(spec.spec_hash, 0, 8)
        before = target.stat().st_mtime_ns
        path = store.put_chunk(spec, 0, 8, columns)
        assert path == target
        assert store.skipped_writes == 1
        assert target.stat().st_mtime_ns == before  # untouched, not rewritten
        assert store.stats()["skipped_writes"] == 1

    def test_put_chunk_overwrite_republishes(self, tmp_path):
        spec = small_spec()
        store = SweepStore(tmp_path)
        result = run_sweep(spec, chunk_size=8, store=store)
        columns = {name: result.columns[name][:8] for name in COLUMNS}
        target = store.chunk_path(spec.spec_hash, 0, 8)
        target.write_bytes(b"corrupted")
        store.put_chunk(spec, 0, 8, columns, overwrite=True)
        assert store.skipped_writes == 0
        assert store.get_chunk(spec.spec_hash, 0, 8, COLUMNS) is not None

    def test_two_writers_racing_one_chunk(self, tmp_path):
        """Regression: two threads publishing the same chunk concurrently
        leave exactly one valid, readable copy behind."""
        spec = small_spec()
        reference = run_sweep(spec, chunk_size=8)
        columns = {name: reference.columns[name][:8] for name in COLUMNS}
        store = SweepStore(tmp_path)
        barrier = threading.Barrier(2)

        def racer(_):
            barrier.wait()
            return store.put_chunk(spec, 0, 8, columns)

        with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
            paths = list(pool.map(racer, range(2)))
        assert paths[0] == paths[1]
        loaded = store.get_chunk(spec.spec_hash, 0, 8, COLUMNS)
        assert loaded is not None
        for name in COLUMNS:
            assert np.array_equal(loaded[name], columns[name], equal_nan=True)
        # No stray temp files left behind by either racer.
        leftovers = list(store.entry_dir(spec.spec_hash).glob("*.tmp"))
        assert leftovers == []

    def test_parallel_writers_do_not_corrupt(self, tmp_path):
        spec = small_spec()
        reference = run_sweep(spec, chunk_size=2)

        def writer(_):
            store = SweepStore(tmp_path)
            return run_sweep(spec, chunk_size=2, store=store)

        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(writer, range(8)))
        for result in results:
            for name in COLUMNS:
                assert np.array_equal(
                    result.columns[name], reference.columns[name], equal_nan=True
                )
        replay = run_sweep(spec, chunk_size=2, store=SweepStore(tmp_path))
        assert replay.meta.computed_chunks == 0
        for name in COLUMNS:
            assert replay.columns[name].tobytes() == reference.columns[name].tobytes()
