"""``repro sweep`` subcommand: plan, run, resume, invalidate, exports."""

from repro.cli import main
from repro.engine.cli import sweep_main
from repro.engine.plan import SweepSpec

GRID = ["--ci", "25,190", "--utilisations", "0.5,0.9", "--nodes", "1000"]


class TestPlan:
    def test_plan_prints_hash_and_count(self, capsys):
        assert sweep_main(["plan", *GRID]) == 0
        out = capsys.readouterr().out
        assert "spec hash" in out
        assert "scenarios     : 24" in out

    def test_plan_writes_loadable_spec(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        assert sweep_main(["plan", *GRID, "--spec-out", str(spec_file)]) == 0
        spec = SweepSpec.from_json(spec_file.read_text())
        assert spec.n_scenarios == 24

    def test_spec_and_grid_flags_conflict(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        sweep_main(["plan", *GRID, "--spec-out", str(spec_file)])
        capsys.readouterr()
        assert sweep_main(["plan", "--spec", str(spec_file), "--ci", "55"]) == 2
        assert "one or the other" in capsys.readouterr().err

    def test_bad_decarb_syntax_fails_cleanly(self, capsys):
        assert sweep_main(["plan", "--decarb", "190"]) == 2
        assert "START:RATE" in capsys.readouterr().err


class TestRunResumeRoundTrip:
    def test_run_kill_resume_exports_byte_identical(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        cache = tmp_path / "cache"
        out1, out2 = tmp_path / "out1", tmp_path / "out2"
        assert sweep_main(["plan", *GRID, "--spec-out", str(spec_file)]) == 0
        spec = SweepSpec.from_json(spec_file.read_text())
        args = ["--spec", str(spec_file), "--cache", str(cache), "--chunk-size", "5"]
        assert sweep_main(["run", *args, "--export", str(out1)]) == 0

        # Simulate a kill: throw away some completed chunks.
        chunks = sorted(cache.glob(f"{spec.spec_hash}-*/rows-*.npz"))
        assert len(chunks) == 5
        for chunk in chunks[:2]:
            chunk.unlink()

        assert sweep_main(["resume", *args, "--export", str(out2)]) == 0
        assert "already cached" in capsys.readouterr().err
        for produced in sorted(out1.iterdir()):
            assert (out2 / produced.name).read_bytes() == produced.read_bytes()

    def test_run_reports_cache_hits(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert sweep_main(["run", *GRID, "--cache", str(cache)]) == 0
        capsys.readouterr()
        assert sweep_main(["run", *GRID, "--cache", str(cache)]) == 0
        assert "1 cached chunk(s), 0 computed" in capsys.readouterr().out

    def test_invalidate_by_hash(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        sweep_main(["run", *GRID, "--cache", str(cache)])
        capsys.readouterr()
        spec_hash = SweepSpec.from_json(
            next(cache.glob("*/spec.json")).read_text()
        ).spec_hash
        assert sweep_main(
            ["invalidate", "--hash", spec_hash, "--cache", str(cache)]
        ) == 0
        assert "removed" in capsys.readouterr().out


class TestDispatch:
    def test_main_dispatches_sweep(self, capsys):
        assert main(["sweep", "plan", *GRID]) == 0
        assert "spec hash" in capsys.readouterr().out

    def test_run_subcommand_lists(self, capsys):
        assert main(["run", "--list"]) == 0
        assert "T1" in capsys.readouterr().out.split()

    def test_legacy_form_warns_but_works(self, capsys):
        assert main(["--list"]) == 0
        captured = capsys.readouterr()
        assert "T1" in captured.out.split()

    def test_legacy_experiment_form_prints_notice(self, capsys):
        assert main(["ZZ"]) == 2
        err = capsys.readouterr().err
        assert "deprecated" in err
        assert "unknown" in err
