"""SweepSpec: canonical serialisation, hashing, grid semantics, validation."""

import dataclasses

import pytest

from repro.engine.plan import CIScenario, SweepSpec, default_ci_scenarios
from repro.errors import ConfigurationError, HpcemError
from repro.node.determinism import DeterminismMode
from repro.node.pstates import FrequencySetting


def small_spec(**overrides):
    fields = dict(
        frequencies=(FrequencySetting.GHZ_2_0, FrequencySetting.GHZ_2_25_TURBO),
        bios_modes=(DeterminismMode.POWER,),
        ci_scenarios=(CIScenario.flat(25.0), CIScenario.decarbonising(190.0, 0.07)),
        utilisations=(0.5, 0.9),
        node_counts=(1000,),
        lifetimes_years=(6.0,),
    )
    fields.update(overrides)
    return SweepSpec(**fields)


class TestCIScenario:
    def test_flat_has_zero_rate_and_auto_name(self):
        ci = CIScenario.flat(190.0)
        assert ci.annual_reduction == 0.0
        assert ci.name == "flat-190"

    def test_trajectory_round_trips_values(self):
        ci = CIScenario.decarbonising(190.0, 0.07, floor_ci_g_per_kwh=20.0)
        traj = ci.trajectory()
        assert traj.ci_at(0.0) == pytest.approx(190.0)
        assert traj.ci_at(1.0) == pytest.approx(190.0 * 0.93)

    def test_name_rejects_separator_characters(self):
        with pytest.raises(ConfigurationError):
            CIScenario.flat(25.0, name="bad,name")

    def test_canonical_round_trip(self):
        ci = CIScenario.decarbonising(190.0, 0.07)
        assert CIScenario.from_canonical(ci.to_canonical()) == ci


class TestGridSemantics:
    def test_cartesian_counts_product(self):
        assert small_spec().n_scenarios == 2 * 1 * 2 * 2 * 1 * 1

    def test_zip_counts_longest_axis(self):
        spec = small_spec(
            combine="zip",
            frequencies=(FrequencySetting.GHZ_2_0,),
            ci_scenarios=(CIScenario.flat(25.0),),
        )
        assert spec.n_scenarios == 2

    def test_zip_rejects_mismatched_axis_lengths(self):
        with pytest.raises(ConfigurationError):
            small_spec(combine="zip", node_counts=(1000, 2000, 3000))

    def test_scenarios_match_scenario_by_index(self):
        spec = small_spec()
        listed = list(spec.scenarios())
        assert len(listed) == spec.n_scenarios
        for i, scenario in enumerate(listed):
            assert spec.scenario(i) == scenario

    def test_axis_index_arrays_match_scenarios(self):
        spec = small_spec()
        i_f, i_m, i_c, i_u, i_n, i_l = spec.axis_index_arrays(0, spec.n_scenarios)
        for i, scenario in enumerate(spec.scenarios()):
            assert spec.frequencies[i_f[i]] == scenario.frequency
            assert spec.ci_scenarios[i_c[i]] == scenario.ci
            assert spec.utilisations[i_u[i]] == scenario.utilisation


class TestHashing:
    def test_hash_is_stable_across_instances(self):
        assert small_spec().spec_hash == small_spec().spec_hash

    def test_json_round_trip_preserves_hash(self):
        spec = small_spec()
        clone = SweepSpec.from_json(spec.canonical_json())
        assert clone == spec
        assert clone.spec_hash == spec.spec_hash

    @pytest.mark.parametrize(
        "overrides",
        [
            {"frequencies": (FrequencySetting.GHZ_1_5,)},
            {"bios_modes": (DeterminismMode.PERFORMANCE,)},
            {"ci_scenarios": (CIScenario.flat(26.0),)},
            {"utilisations": (0.75,)},
            {"node_counts": (2048,)},
            {"lifetimes_years": (8.0,)},
            {"combine": "zip", "utilisations": (0.5,)},
            {"embodied_per_node_tco2e": 2.0},
            {"embodied_overhead_tco2e": 0.0},
            {"compute_activity": 0.2},
            {"memory_activity": 0.5},
            {"app_name": "VASP TiO2"},
            {"ci_average_steps": 500},
        ],
    )
    def test_every_field_change_changes_hash(self, overrides):
        assert small_spec().spec_hash != small_spec(**overrides).spec_hash

    def test_default_spec_fields_all_covered_by_canonical_form(self):
        """New spec fields must not silently escape the cache key."""
        canonical = SweepSpec().to_canonical()
        for field in dataclasses.fields(SweepSpec):
            assert field.name in canonical, f"{field.name} missing from canonical form"


class TestValidation:
    def test_rejects_empty_axis(self):
        with pytest.raises(ConfigurationError):
            small_spec(utilisations=())

    def test_rejects_duplicate_axis_values(self):
        with pytest.raises(ConfigurationError):
            small_spec(node_counts=(1000, 1000))

    def test_rejects_bad_fraction(self):
        with pytest.raises(HpcemError):
            small_spec(utilisations=(1.5,))

    def test_rejects_unknown_combine(self):
        with pytest.raises(ConfigurationError):
            small_spec(combine="outer")

    def test_coerces_string_enums(self):
        spec = small_spec(
            frequencies=("2.0GHz",), bios_modes=("performance-determinism",)
        )
        assert spec.frequencies == (FrequencySetting.GHZ_2_0,)
        assert spec.bios_modes == (DeterminismMode.PERFORMANCE,)

    def test_default_ci_scenarios_cover_all_regimes(self):
        names = [c.name for c in default_ci_scenarios()]
        assert len(names) == len(set(names))
        starts = [c.start_ci_g_per_kwh for c in default_ci_scenarios()]
        assert min(starts) < 30.0 < max(starts)
