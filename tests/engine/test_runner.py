"""Runner: vectorized-vs-scalar equivalence, chunking, fan-out, results."""

import numpy as np
import pytest

from repro.engine.cache import LRUCache, SweepStore
from repro.engine.plan import CIScenario, SweepSpec
from repro.engine.runner import (
    COLUMNS,
    SweepResult,
    evaluate_scenario,
    run_sweep,
    run_sweep_scalar,
)
from repro.errors import ConfigurationError
from repro.node.calibration import build_node_model
from repro.node.determinism import DeterminismMode
from repro.node.pstates import FrequencySetting
from repro.results import Result


def rich_spec(**overrides):
    """A grid exercising every axis, decarbonisation and the app columns."""
    fields = dict(
        ci_scenarios=(
            CIScenario.flat(25.0),
            CIScenario.flat(55.0),
            CIScenario.flat(190.0),
            CIScenario.decarbonising(190.0, 0.07),
        ),
        utilisations=(0.5, 0.9),
        node_counts=(1000, 5860),
        lifetimes_years=(4.0, 6.0),
        app_name="VASP TiO2",
    )
    fields.update(overrides)
    return SweepSpec(**fields)


class TestVectorizedMatchesScalar:
    def test_every_column_within_1e9(self):
        spec = rich_spec()
        vec = run_sweep(spec, chunk_size=17)
        sca = run_sweep_scalar(spec)
        for name in COLUMNS:
            a = vec.columns[name].astype(float)
            b = sca.columns[name].astype(float)
            assert np.array_equal(np.isnan(a), np.isnan(b)), name
            mask = ~np.isnan(b)
            scale = np.maximum(np.abs(b[mask]), 1.0)
            assert np.all(np.abs(a[mask] - b[mask]) / scale <= 1e-9), name

    def test_zip_combine_matches_scalar(self):
        spec = SweepSpec(
            combine="zip",
            frequencies=(FrequencySetting.GHZ_1_5, FrequencySetting.GHZ_2_0),
            bios_modes=(DeterminismMode.POWER,),
            ci_scenarios=(CIScenario.flat(25.0), CIScenario.flat(190.0)),
            utilisations=(0.5, 0.9),
            node_counts=(1000,),
            lifetimes_years=(6.0,),
        )
        vec = run_sweep(spec)
        sca = run_sweep_scalar(spec)
        for name in COLUMNS:
            assert np.allclose(
                vec.columns[name].astype(float),
                sca.columns[name].astype(float),
                rtol=1e-12,
                atol=0,
                equal_nan=True,
            ), name

    def test_crossing_year_branch_cases(self):
        """Decarbonising grids hit all regime_crossing_year branches."""
        spec = SweepSpec(
            frequencies=(FrequencySetting.GHZ_2_0,),
            bios_modes=(DeterminismMode.POWER,),
            ci_scenarios=(
                CIScenario.flat(190.0),  # rate == 0 -> no crossing
                CIScenario.decarbonising(190.0, 0.07),
                CIScenario.decarbonising(190.0, 0.5, floor_ci_g_per_kwh=100.0),
            ),
            utilisations=(0.2, 0.9),
            node_counts=(100, 5860),
            lifetimes_years=(6.0, 30.0),
        )
        vec = run_sweep(spec)
        sca = run_sweep_scalar(spec)
        a, b = vec.columns["crossing_year"], sca.columns["crossing_year"]
        assert np.array_equal(np.isnan(a), np.isnan(b))
        assert np.allclose(a[~np.isnan(a)], b[~np.isnan(b)], rtol=1e-12)

    def test_chunk_size_does_not_change_results(self):
        spec = rich_spec(app_name=None)
        whole = run_sweep(spec, chunk_size=10_000)
        tiny = run_sweep(spec, chunk_size=1)
        for name in COLUMNS:
            assert whole.columns[name].tobytes() == tiny.columns[name].tobytes()


class TestRunnerPlumbing:
    def test_rejects_custom_node_model_with_cache(self, tmp_path):
        spec = rich_spec(app_name=None)
        with pytest.raises(ConfigurationError):
            run_sweep(spec, node_model=build_node_model(), store=SweepStore(tmp_path))
        with pytest.raises(ConfigurationError):
            run_sweep(spec, node_model=build_node_model(), memory_cache=LRUCache())

    def test_progress_reports_every_chunk_with_source(self, tmp_path):
        spec = rich_spec(app_name=None)
        store = SweepStore(tmp_path)
        events = []
        run_sweep(
            spec, chunk_size=16, store=store,
            progress=lambda done, total, src: events.append((done, total, src)),
        )
        assert [e[0] for e in events] == list(range(1, len(events) + 1))
        assert all(src == "computed" for _, _, src in events)
        events.clear()
        run_sweep(
            spec, chunk_size=16, store=store,
            progress=lambda done, total, src: events.append((done, total, src)),
        )
        assert all(src == "disk" for _, _, src in events)

    def test_process_pool_fanout_matches_serial(self):
        spec = rich_spec(app_name=None)
        serial = run_sweep(spec, chunk_size=16)
        fanned = run_sweep(spec, chunk_size=16, workers=2)
        assert fanned.meta.workers == 2
        for name in COLUMNS:
            assert np.allclose(
                serial.columns[name].astype(float),
                fanned.columns[name].astype(float),
                rtol=1e-12,
                atol=0,
                equal_nan=True,
            ), name

    def test_result_arrays_are_read_only(self):
        result = run_sweep(rich_spec(app_name=None), chunk_size=16)
        with pytest.raises(ValueError):
            result.columns["total_tco2e"][0] = 0.0

    def test_evaluate_scenario_unknown_app_raises(self):
        spec = rich_spec(app_name="No Such Code")
        with pytest.raises(ConfigurationError):
            evaluate_scenario(spec, spec.scenario(0))


class TestSweepResult:
    def test_satisfies_result_protocol(self):
        result = run_sweep(rich_spec(app_name=None), chunk_size=64)
        assert isinstance(result, Result)
        assert result.result_id.startswith("SWEEP-")

    def test_to_dict_headline_matches_columns(self):
        result = run_sweep(rich_spec(app_name=None))
        summary = result.to_dict()
        total = result.columns["total_tco2e"]
        assert summary["headline"]["min_total_tco2e"] == pytest.approx(total.min())
        assert summary["n_scenarios"] == len(result)

    def test_row_decodes_labels_and_regime(self):
        result = run_sweep(rich_spec(app_name=None))
        row = result.row(0)
        assert row["frequency"] in ("1.5GHz", "2.0GHz", "2.25GHz+turbo")
        assert row["regime"] in ("scope3-dominated", "balanced", "scope2-dominated")
        assert isinstance(row["n_nodes"], int)

    def test_to_csv_rows_covers_every_scenario(self):
        result = run_sweep(rich_spec(app_name=None))
        rows = result.to_csv_rows()["scenarios"]
        assert len(rows) == len(result) + 1
        assert rows[0][0] == "scenario"
        assert all(len(r) == len(rows[0]) for r in rows)

    def test_truncation_note_on_large_grids(self):
        result = run_sweep(rich_spec(app_name=None))
        table = result.to_table(max_rows=3)
        assert "more scenario(s)" in table

    def test_rejects_missing_columns(self):
        result = run_sweep(rich_spec(app_name=None))
        partial = {k: v for k, v in result.columns.items() if k != "total_tco2e"}
        with pytest.raises(ConfigurationError):
            SweepResult(spec=result.spec, columns=partial)


class _FakeExecutor:
    """Stand-in for ProcessPoolExecutor that runs tasks inline.

    ``modes`` is consumed one entry per instantiation: ``"ok"`` executes
    every submitted task synchronously, ``"broken"`` fails every future
    with :class:`BrokenProcessPool`, ``"partial"`` completes the first
    submission then breaks, ``"error"`` fails every future with
    ``ValueError`` (a *task* exception, which must propagate).
    """

    modes: list = []
    instantiations: int = 0

    def __init__(self, max_workers):
        cls = type(self)
        idx = min(cls.instantiations, len(cls.modes) - 1)
        self.mode = cls.modes[idx]
        self.n_submitted = 0
        cls.instantiations += 1

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args):
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        future = concurrent.futures.Future()
        broken = self.mode == "broken" or (
            self.mode == "partial" and self.n_submitted > 0
        )
        self.n_submitted += 1
        if self.mode == "error":
            future.set_exception(ValueError("bad chunk task"))
        elif broken:
            future.set_exception(BrokenProcessPool("worker died"))
        else:
            future.set_result(fn(*args))
        return future


@pytest.fixture
def fake_pool(monkeypatch):
    """Install ``_FakeExecutor`` as the runner's pool factory."""
    from repro.engine import runner as runner_module

    def install(*modes):
        _FakeExecutor.modes = list(modes)
        _FakeExecutor.instantiations = 0
        monkeypatch.setattr(runner_module, "_POOL_EXECUTOR", _FakeExecutor)
        return _FakeExecutor

    return install


class TestBrokenPoolHardening:
    """A dying worker pool must degrade the sweep, never crash it."""

    def _assert_matches_serial(self, fanned):
        serial = run_sweep(rich_spec(app_name=None), chunk_size=16)
        for name in COLUMNS:
            assert np.allclose(
                serial.columns[name].astype(float),
                fanned.columns[name].astype(float),
                rtol=1e-12,
                atol=0,
                equal_nan=True,
            ), name

    def test_broken_pool_retries_once_then_falls_back(self, fake_pool):
        fake = fake_pool("broken", "broken")
        with pytest.warns(RuntimeWarning) as caught:
            fanned = run_sweep(rich_spec(app_name=None), chunk_size=16, workers=2)
        assert fake.instantiations == 2  # original + one retry, then in-process
        messages = [str(w.message) for w in caught]
        assert any("retrying" in m for m in messages)
        assert any("in-process" in m for m in messages)
        self._assert_matches_serial(fanned)

    def test_broken_pool_recovers_on_retry(self, fake_pool):
        fake = fake_pool("broken", "ok")
        with pytest.warns(RuntimeWarning) as caught:
            fanned = run_sweep(rich_spec(app_name=None), chunk_size=16, workers=2)
        assert fake.instantiations == 2
        messages = [str(w.message) for w in caught]
        assert any("retrying" in m for m in messages)
        assert not any("in-process" in m for m in messages)
        self._assert_matches_serial(fanned)

    def test_partial_completion_only_retries_the_remainder(self, fake_pool):
        fake_pool("partial", "ok")
        with pytest.warns(RuntimeWarning):
            fanned = run_sweep(rich_spec(app_name=None), chunk_size=16, workers=2)
        self._assert_matches_serial(fanned)

    def test_healthy_pool_emits_no_warnings(self, fake_pool, recwarn):
        fake = fake_pool("ok")
        fanned = run_sweep(rich_spec(app_name=None), chunk_size=16, workers=2)
        assert fake.instantiations == 1
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]
        self._assert_matches_serial(fanned)

    def test_task_exceptions_still_propagate(self, fake_pool):
        """Only pool breakage is swallowed — a chunk task raising is a bug
        in the task and must surface unchanged."""
        fake_pool("error")
        with pytest.raises(ValueError, match="bad chunk task"):
            run_sweep(rich_spec(app_name=None), chunk_size=16, workers=2)
