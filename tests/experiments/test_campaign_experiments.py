"""Campaign experiment drivers F1–F3 and C1.

These run the full ARCHER2-scale simulator with shortened windows so the
suite stays fast; the paper-length defaults are exercised by the benchmark
harness. Shape criteria (not absolute watts) are asserted here.
"""

import pytest

from repro.experiments import conclusions, fig1, fig2, fig3
from repro.units import SECONDS_PER_DAY


class TestF1:
    @pytest.fixture(scope="class")
    def result(self):
        # Short window without the Christmas dip (which would cover a third
        # of 30 days; the paper-length default includes it over 150 days).
        return fig1.run(duration_s=30 * SECONDS_PER_DAY, seed=2021, holidays=())

    def test_mean_near_paper_baseline(self, result):
        assert result.headline["mean_kw"] == pytest.approx(3220.0, rel=0.05)

    def test_utilisation_over_90pct(self, result):
        """§3.2: 'Compute node utilisation on ARCHER2 ... consistently over 90%'."""
        assert result.headline["utilisation"] > 0.90

    def test_mean_below_table2_full_load(self, result):
        assert result.headline["fraction_of_loaded"] < 1.0

    def test_series_exported(self, result):
        assert "measured_kw" in result.series
        assert len(result.series["measured_kw"]) > 1000


class TestF2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2.run(
            duration_s=30 * SECONDS_PER_DAY,
            change_s=15 * SECONDS_PER_DAY,
            seed=123,
        )

    def test_saving_in_paper_band(self, result):
        """BIOS change: ~6.5 % saving (allow 4-10 % across windows/seeds)."""
        assert 0.04 < result.headline["relative_saving"] < 0.10

    def test_absolute_saving_scale(self, result):
        assert result.headline["saving_kw"] == pytest.approx(210.0, abs=100.0)

    def test_change_point_detected_near_truth(self, result):
        assert result.headline["detected_change_day"] == pytest.approx(
            result.headline["true_change_day"], abs=2.0
        )


class TestF3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3.run(
            duration_s=30 * SECONDS_PER_DAY,
            change_s=15 * SECONDS_PER_DAY,
            seed=2023,
        )

    def test_before_mean_near_post_bios_level(self, result):
        assert result.headline["mean_before_kw"] == pytest.approx(3010.0, rel=0.05)

    def test_saving_in_paper_band(self, result):
        """Frequency change: paper 16 % of post-BIOS power (allow 11-18 %)."""
        assert 0.11 < result.headline["relative_saving"] < 0.18

    def test_most_node_hours_moved_to_2ghz(self, result):
        assert result.headline["low_freq_nodeh_share"] > 0.25

    def test_change_point_detected(self, result):
        assert result.headline["detected_change_day"] == pytest.approx(
            result.headline["true_change_day"], abs=2.0
        )


class TestC1:
    @pytest.fixture(scope="class")
    def result(self):
        return conclusions.run(phase_days=15.0, seed=17)

    def test_monotone_decreasing_phases(self, result):
        h = result.headline
        assert h["baseline_kw"] > h["post_bios_kw"] > h["post_freq_kw"]

    def test_cumulative_saving_near_21pct(self, result):
        assert result.headline["total_relative_saving"] == pytest.approx(
            result.headline["paper_total_relative_saving"], abs=0.05
        )

    def test_frequency_change_is_larger_lever(self, result):
        assert result.headline["freq_saving_kw"] > result.headline["bios_saving_kw"]

    def test_baseline_near_paper(self, result):
        assert result.headline["baseline_kw"] == pytest.approx(3220.0, rel=0.05)
