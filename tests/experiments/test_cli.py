"""CLI tests."""

from repro.cli import build_parser, main


class TestParser:
    def test_defaults_empty(self):
        args = build_parser().parse_args([])
        assert args.experiments == []
        assert not args.list


class TestMain:
    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert "T1" in out
        assert "F3" in out

    def test_unknown_id_exit_code(self, capsys):
        assert main(["ZZ"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_named_experiment(self, capsys):
        assert main(["T1"]) == 0
        out = capsys.readouterr().out
        assert "[T1]" in out
        assert "750,080" in out

    def test_runs_multiple(self, capsys):
        assert main(["T1", "R1"]) == 0
        out = capsys.readouterr().out
        assert "[T1]" in out
        assert "[R1]" in out

    def test_case_insensitive(self, capsys):
        assert main(["t2"]) == 0
        assert "[T2]" in capsys.readouterr().out


class TestExperimentResultRendering:
    def test_str_contains_headline(self):
        from repro.experiments.table1 import run

        text = str(run())
        assert "headline:" in text
        assert "nodes" in text
