"""Experiment scaffolding tests."""

import pytest

from repro.experiments.common import (
    CHRISTMAS_WINDOW_S,
    ExperimentResult,
    baseline_operating_state,
    figure_campaign_config,
    post_bios_operating_state,
)
from repro.core.interventions import InterventionSchedule
from repro.node.determinism import DeterminismMode
from repro.node.pstates import FrequencySetting
from repro.units import SECONDS_PER_DAY


class TestExperimentResult:
    def test_str_without_headline(self):
        result = ExperimentResult(experiment_id="X1", title="t", table="| a |")
        text = str(result)
        assert "[X1] t" in text
        assert "headline" not in text

    def test_str_with_headline(self):
        result = ExperimentResult(
            experiment_id="X1", title="t", table="| a |", headline={"v": 1.234}
        )
        assert "v = 1.234" in str(result)


class TestOperatingStates:
    def test_baseline_is_power_determinism_turbo(self):
        state = baseline_operating_state()
        assert state.mode is DeterminismMode.POWER
        assert state.policy.default_setting is FrequencySetting.GHZ_2_25_TURBO
        assert state.policy.curated_apps is not None

    def test_post_bios_keeps_default_frequency(self):
        state = post_bios_operating_state()
        assert state.mode is DeterminismMode.PERFORMANCE
        assert state.policy.default_setting is FrequencySetting.GHZ_2_25_TURBO


class TestFigureCampaignConfig:
    def test_defaults(self):
        schedule = InterventionSchedule(baseline_operating_state())
        config = figure_campaign_config(10 * SECONDS_PER_DAY, schedule, seed=1)
        assert config.stream is None  # defaults from inventory
        assert config.seed == 1

    def test_holidays_threaded_into_stream(self):
        schedule = InterventionSchedule(baseline_operating_state())
        config = figure_campaign_config(
            40 * SECONDS_PER_DAY, schedule, seed=1, holidays=(CHRISTMAS_WINDOW_S,)
        )
        assert config.stream is not None
        assert config.stream.holiday_windows_s == (CHRISTMAS_WINDOW_S,)
        assert config.stream.n_facility_nodes == config.inventory.n_nodes

    def test_christmas_window_inside_fig1_span(self):
        start, end = CHRISTMAS_WINDOW_S
        assert 0 < start < end < 150 * SECONDS_PER_DAY


class TestInterventionBase:
    def test_base_apply_not_implemented(self):
        from repro.core.interventions import Intervention, OperatingState

        with pytest.raises(NotImplementedError):
            Intervention(time_s=0.0).apply(OperatingState())
