"""Artefact export tests."""

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.experiments.export import export_all, export_result
from repro.telemetry.series import TimeSeries


def make_result(with_series=True):
    series = {}
    if with_series:
        series["measured_kw"] = TimeSeries(
            900.0 * np.arange(10), np.full(10, 3220.0)
        )
    return ExperimentResult(
        experiment_id="T9",
        title="stub",
        table="| a |",
        headline={"x": 1.0},
        series=series,
    )


class TestExportResult:
    def test_writes_table_and_series(self, tmp_path):
        written = export_result(make_result(), tmp_path)
        names = sorted(p.name for p in written)
        assert names == ["T9.txt", "T9_measured_kw.csv"]
        text = (tmp_path / "T9.txt").read_text()
        assert "[T9] stub" in text
        assert "x = 1" in text
        csv = (tmp_path / "T9_measured_kw.csv").read_text().splitlines()
        assert csv[0] == "time_s,value_kw"
        assert len(csv) == 11

    def test_no_series_no_csv(self, tmp_path):
        written = export_result(make_result(with_series=False), tmp_path)
        assert [p.name for p in written] == ["T9.txt"]

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        export_result(make_result(), target)
        assert (target / "T9.txt").exists()


class TestExportAll:
    def test_runner_injection(self, tmp_path):
        calls = []

        def stub_runner(exp_id):
            calls.append(exp_id)
            return make_result(with_series=False)

        exported = export_all(["T1", "T2"], tmp_path, runner=stub_runner)
        assert calls == ["T1", "T2"]
        assert set(exported) == {"T1", "T2"}


class TestCliExport:
    def test_export_flag(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["T1", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "T1.txt").exists()
        assert "exported" in capsys.readouterr().out
