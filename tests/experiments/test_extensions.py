"""Extension experiment tests (E1–E5, the paper's future-work directions)."""

import pytest

from repro.experiments.extensions import run_e1, run_e2, run_e3, run_e4, run_e5


class TestE1DemandResponse:
    @pytest.fixture(scope="class")
    def result(self):
        return run_e1(n_nodes=256, days=3.0, seed=51)

    def test_shed_is_real_and_bounded(self, result):
        """Frequency modulation sheds 5-30 % of busy power in the window."""
        assert 0.03 < result.headline["shed_depth"] < 0.35

    def test_latency_on_job_scale(self, result):
        assert 3.0 < result.headline["latency_h"] < 12.0


class TestE2Toolchain:
    @pytest.fixture(scope="class")
    def result(self):
        return run_e2()

    def test_vectorising_never_adds_resets(self, result):
        assert (
            result.headline["vector_resets"] <= result.headline["baseline_resets"]
        )

    def test_baseline_resets_match_table4(self, result):
        """With the calibration toolchain, exactly LAMMPS, GROMACS and
        Nektar++ exceed the 10 % threshold."""
        assert result.headline["baseline_resets"] == 3.0


class TestE3Surrogate:
    @pytest.fixture(scope="class")
    def result(self):
        return run_e3()

    def test_all_scenarios_save_energy(self, result):
        for key in ("conservative", "moderate", "aggressive"):
            assert result.headline[f"{key}_energy_ratio"] < 1.0

    def test_aggressive_saves_most_per_run(self, result):
        assert (
            result.headline["aggressive_energy_ratio"]
            < result.headline["conservative_energy_ratio"]
        )

    def test_breakeven_finite(self, result):
        for key in ("conservative", "moderate", "aggressive"):
            assert result.headline[f"{key}_breakeven"] < float("inf")


class TestE4CarbonAware:
    @pytest.fixture(scope="class")
    def result(self):
        return run_e4()

    def test_savings_monotone_in_flexibility(self, result):
        h = result.headline
        assert h["saving_at_10pct"] < h["saving_at_30pct"] < h["saving_at_50pct"]

    def test_savings_smaller_than_frequency_lever(self, result):
        """The qualitative conclusion: shifting saves a few percent of
        scope 2 — real, but smaller than the paper's ~15 % frequency lever."""
        assert result.headline["saving_at_30pct"] < 0.15


class TestE5Thermal:
    @pytest.fixture(scope="class")
    def result(self):
        return run_e5()

    def test_optimum_is_warm_water_free_cooling(self, result):
        assert result.headline["optimum_is_free_cooling"] == 1.0
        assert 24.0 <= result.headline["optimal_coolant_c"] <= 34.0
