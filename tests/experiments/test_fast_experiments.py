"""Fast experiment drivers: T1–T4, R1, A1, A2 — the paper-shape assertions."""

import pytest

from repro.experiments import REGISTRY, run_experiment
from repro.experiments.ablations import run_a1, run_a2
from repro.experiments.regimes_demo import run as run_r1
from repro.experiments.table1 import run as run_t1
from repro.experiments.table2 import run as run_t2
from repro.experiments.table3 import run as run_t3
from repro.experiments.table4 import run as run_t4


class TestRegistry:
    def test_all_artefacts_registered(self):
        paper = {"T1", "T2", "T3", "T4", "F1", "F2", "F3", "C1", "R1"}
        ablations_ = {"A1", "A2", "A3", "A4"}
        extensions_ = {"E1", "E2", "E3", "E4", "E5", "E6"}
        assert set(REGISTRY) == paper | ablations_ | extensions_

    def test_lookup_case_insensitive(self):
        result = run_experiment("t1")
        assert result.experiment_id == "T1"

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("Z9")


class TestT1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_t1()

    def test_published_counts(self, result):
        assert result.headline["nodes"] == result.headline["paper_nodes"]
        assert result.headline["cores"] == result.headline["paper_cores"]
        assert result.headline["switches"] == result.headline["paper_switches"]

    def test_table_mentions_key_rows(self, result):
        assert "750,080" in result.table
        assert "dragonfly" in result.table


class TestT2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_t2()

    def test_component_shares_match_paper(self, result):
        h = result.headline
        assert h["compute_node_share"] == pytest.approx(
            h["compute_node_paper_share"], abs=0.02
        )
        assert h["switch_share"] == pytest.approx(h["switch_paper_share"], abs=0.015)
        assert h["filesystem_share"] == pytest.approx(
            h["filesystem_paper_share"], abs=0.01
        )

    def test_totals_match_paper(self, result):
        h = result.headline
        assert h["total_idle_kw"] == pytest.approx(h["paper_total_idle_kw"], rel=0.02)
        assert h["total_loaded_kw"] == pytest.approx(
            h["paper_total_loaded_kw"], rel=0.02
        )


class TestT3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_t3()

    def test_perf_cost_at_most_one_and_a_half_percent(self, result):
        assert result.headline["max_perf_loss"] <= 0.015

    def test_energy_ratios_in_paper_band(self, result):
        assert 0.88 <= result.headline["min_energy_ratio"]
        assert result.headline["max_energy_ratio"] <= 0.96


class TestT4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_t4()

    def test_ordering_matches_paper(self, result):
        """LAMMPS most affected, VASP CdTe least (paper Table 4)."""
        assert result.headline["most_affected_is_lammps"] == 1.0
        assert result.headline["least_affected_is_vasp"] == 1.0

    def test_perf_ratio_span(self, result):
        assert result.headline["min_perf_ratio"] == pytest.approx(0.74, abs=0.02)
        assert result.headline["max_perf_ratio"] == pytest.approx(0.95, abs=0.02)

    def test_all_apps_save_energy(self, result):
        assert result.headline["max_energy_ratio"] < 1.0

    def test_mean_energy_prediction_error_small(self, result):
        assert result.headline["mean_abs_energy_error"] < 0.06


class TestR1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_r1()

    def test_derived_band_brackets_paper(self, result):
        assert result.headline["brackets_paper_band"] == 1.0

    def test_crossover_mid_band(self, result):
        assert 40.0 < result.headline["crossover_ci"] < 70.0


class TestA1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_a1()

    def test_energy_per_nodeh_rises_at_low_utilisation(self, result):
        h = result.headline
        assert h["kwh_per_nodeh_at_50pct"] > h["kwh_per_nodeh_at_90pct"] > h[
            "kwh_per_nodeh_at_100pct"
        ]

    def test_half_empty_overhead_near_50pct(self, result):
        assert result.headline["overhead_at_50pct"] == pytest.approx(0.5, abs=0.15)

    def test_structural_constants(self, result):
        assert result.headline["switch_load_invariance"] == pytest.approx(0.8)
        assert result.headline["node_idle_fraction"] == pytest.approx(0.5, abs=0.1)


class TestA2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_a2()

    def test_turbo_explains_spread(self, result):
        """Without the 2.8 GHz turbo baseline the worst impact would be
        ~11 %, far short of the measured 26 %."""
        h = result.headline
        assert h["max_impact_with_turbo"] == pytest.approx(0.26, abs=0.01)
        assert h["max_impact_without_turbo"] < 0.12
