"""ARCHER2 preset tests: the inventory must reproduce Tables 1 and 2."""

import pytest

from repro.facility.archer2 import (
    archer2_inventory,
    archer2_node_spec,
    scaled_inventory,
)
from repro.facility.hardware import ComponentKind


class TestTable1:
    def test_node_count(self, inventory):
        assert inventory.n_nodes == 5860

    def test_core_count_is_published_value(self, inventory):
        assert inventory.n_cores == 750_080

    def test_switch_count(self, inventory):
        assert inventory.n_switches == 768

    def test_cabinet_count(self, inventory):
        assert inventory.n_cabinets == 23

    def test_five_filesystems(self, inventory):
        assert inventory.count_of_kind(ComponentKind.FILESYSTEM) == 5

    def test_six_cdus(self, inventory):
        assert inventory.count_of_kind(ComponentKind.CDU) == 6

    def test_node_spec_shape(self):
        node = archer2_node_spec()
        assert node.sockets == 2
        assert node.cores_per_socket == 64
        assert node.base_frequency_ghz == 2.25
        assert node.nic_ports == 2


class TestTable2:
    def test_total_idle_near_1800_kw(self, inventory):
        assert inventory.idle_power_w() / 1e3 == pytest.approx(1800.0, rel=0.02)

    def test_total_loaded_near_3500_kw(self, inventory):
        assert inventory.loaded_power_w() / 1e3 == pytest.approx(3500.0, rel=0.02)

    def test_node_share_near_86_percent(self, inventory):
        assert inventory.loaded_share(ComponentKind.COMPUTE_NODE) == pytest.approx(
            0.86, abs=0.02
        )

    def test_switch_share_near_6_percent(self, inventory):
        assert inventory.loaded_share(ComponentKind.SWITCH) == pytest.approx(
            0.06, abs=0.015
        )

    def test_storage_share_near_1_percent(self, inventory):
        assert inventory.loaded_share(ComponentKind.FILESYSTEM) == pytest.approx(
            0.01, abs=0.005
        )

    def test_node_loaded_total_near_3000_kw(self, inventory):
        nodes = [a for a in inventory.aggregates() if a.kind is ComponentKind.COMPUTE_NODE]
        assert nodes[0].loaded_power_w / 1e3 == pytest.approx(3000.0, rel=0.02)

    def test_node_idle_total_near_1350_kw(self, inventory):
        nodes = [a for a in inventory.aggregates() if a.kind is ComponentKind.COMPUTE_NODE]
        assert nodes[0].idle_power_w / 1e3 == pytest.approx(1350.0, rel=0.02)

    def test_compute_cabinets_are_90_percent_of_total(self, inventory):
        """§3.2: cabinet meters cover ~90 % of facility power."""
        share = inventory.compute_cabinet_power_w(1.0) / inventory.loaded_power_w()
        assert share == pytest.approx(0.96, abs=0.05)


class TestScaledInventory:
    def test_proportions_preserved(self):
        small = scaled_inventory(0.1)
        full = archer2_inventory()
        assert small.n_nodes == pytest.approx(full.n_nodes * 0.1, rel=0.01)
        # Share structure survives scaling approximately (min-one-unit
        # rounding inflates small components at low fractions).
        assert small.loaded_share(ComponentKind.COMPUTE_NODE) == pytest.approx(
            full.loaded_share(ComponentKind.COMPUTE_NODE), abs=0.08
        )

    def test_minimum_one_unit_each(self):
        tiny = scaled_inventory(0.001)
        assert tiny.n_nodes >= 1
        assert tiny.n_switches >= 1

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            scaled_inventory(0.0)
        with pytest.raises(ValueError):
            scaled_inventory(1.5)
