"""Cooling model and PUE accounting tests."""

import pytest

from repro.errors import ConfigurationError
from repro.facility.cooling import CoolingModel
from repro.facility.inventory import FacilityInventory
from repro.facility.power import FacilityPowerModel
from repro.facility.pue import pue, pue_from_breakdown


class TestCoolingModel:
    def test_capacity_from_cdus(self, inventory):
        model = CoolingModel(inventory)
        assert model.capacity_kw == pytest.approx(6 * 800.0)

    def test_constant_power_default(self, inventory):
        model = CoolingModel(inventory)
        assert model.cdu_power_kw(0.0) == pytest.approx(96.0)
        assert model.cdu_power_kw(3000.0) == pytest.approx(96.0)

    def test_variable_fraction_scales_with_load(self, inventory):
        model = CoolingModel(inventory, variable_fraction=0.5)
        low = model.cdu_power_kw(0.0)
        high = model.cdu_power_kw(model.capacity_kw)
        assert low == pytest.approx(48.0)
        assert high == pytest.approx(96.0)

    def test_assessment_adequate_at_loaded_power(self, inventory):
        model = CoolingModel(inventory)
        # Full ARCHER2 load ~3.5 MW vs 4.8 MW CDU capacity.
        assessment = model.assess(inventory.loaded_power_w() / 1e3)
        assert assessment.adequate
        assert assessment.headroom_kw > 0
        assert 0 < assessment.utilisation < 1

    def test_assessment_inadequate_when_overloaded(self, inventory):
        model = CoolingModel(inventory)
        assessment = model.assess(10_000.0)
        assert not assessment.adequate
        assert assessment.headroom_kw < 0

    def test_no_cdus_rejected(self):
        from repro.facility.hardware import NodeSpec

        inv = FacilityInventory("no-cdu")
        inv.add(NodeSpec(name="n", idle_power_w=230, loaded_power_w=510), 4)
        with pytest.raises(ConfigurationError, match="no CDUs"):
            CoolingModel(inv)


class TestPue:
    def test_pue_of_archer2_is_low(self, inventory):
        """Direct liquid cooling keeps PUE near 1."""
        breakdown = FacilityPowerModel(inventory).breakdown(1.0)
        report = pue_from_breakdown(breakdown)
        assert 1.0 < report.pue < 1.1

    def test_plant_overhead_raises_pue(self, inventory):
        breakdown = FacilityPowerModel(inventory).breakdown(1.0)
        base = pue_from_breakdown(breakdown).pue
        with_overhead = pue_from_breakdown(breakdown, plant_overhead_fraction=0.1).pue
        assert with_overhead > base

    def test_direct_pue(self):
        assert pue(1000.0, 100.0) == pytest.approx(1.1)

    def test_zero_it_power_rejected(self):
        with pytest.raises(ConfigurationError):
            pue(0.0, 50.0)

    def test_reducing_it_power_reduces_absolute_overhead_not_pue(self, inventory):
        """The §4 interventions shrink IT power; cooling shrinks with it in
        absolute terms even though PUE (a ratio) may worsen slightly."""
        breakdown_full = FacilityPowerModel(inventory).breakdown(1.0)
        breakdown_low = FacilityPowerModel(inventory).breakdown(
            1.0, busy_node_power_w=400.0
        )
        full = pue_from_breakdown(breakdown_full, plant_overhead_fraction=0.05)
        low = pue_from_breakdown(breakdown_low, plant_overhead_fraction=0.05)
        assert low.total_power_kw < full.total_power_kw


class TestVariableFractionSentinel:
    """Regression tests for the audited exact-float sentinel at
    ``CoolingModel.cdu_power_kw`` (``variable_fraction == 0.0``).

    The exact comparison is safe because 0.0 is a *stored config default*,
    never the result of arithmetic — and the general formula is continuous
    at 0, so near-zero fractions agree with the sentinel branch anyway.
    """

    def test_exact_zero_takes_constant_branch(self, inventory):
        model = CoolingModel(inventory, variable_fraction=0.0)
        assert model.cdu_power_kw(0.0) == model.cdu_power_kw(model.capacity_kw)

    def test_near_zero_fraction_is_continuous_with_sentinel(self, inventory):
        """A denormal-small fraction must agree with the 0.0 branch to within
        float noise; if it didn't, the ``==`` shortcut would be a bug."""
        exact = CoolingModel(inventory, variable_fraction=0.0)
        near = CoolingModel(inventory, variable_fraction=1e-12)
        for load in (0.0, 1000.0, exact.capacity_kw):
            assert near.cdu_power_kw(load) == pytest.approx(
                exact.cdu_power_kw(load), rel=1e-9
            )

    def test_negative_zero_also_hits_sentinel(self, inventory):
        """-0.0 == 0.0 in IEEE 754, so the sentinel accepts both spellings."""
        model = CoolingModel(inventory, variable_fraction=-0.0)
        assert model.cdu_power_kw(0.0) == model.cdu_power_kw(model.capacity_kw)
