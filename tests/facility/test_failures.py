"""Node failure/repair model tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, UnitError
from repro.facility.failures import FailureModel, FailureTimeline
from repro.units import SECONDS_PER_DAY

mtbf_hours = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)
mttr_hours = st.floats(min_value=0.01, max_value=1e4, allow_nan=False)


class TestSteadyState:
    def test_unavailability_formula(self):
        model = FailureModel(mtbf_hours=1000.0, mttr_hours=10.0)
        assert model.steady_state_unavailability == pytest.approx(10.0 / 1010.0)

    def test_archer2_scale_unavailability_small(self):
        """Default parameters: well under 1 % of the machine down."""
        assert FailureModel().steady_state_unavailability < 0.01

    def test_validation(self):
        with pytest.raises(Exception):
            FailureModel(mtbf_hours=0.0)


class TestExpectedFailures:
    def test_scales_with_fleet_and_time(self):
        model = FailureModel(mtbf_hours=1000.0, mttr_hours=1.0)
        one = model.expected_failures(100, 36_000.0)
        double_fleet = model.expected_failures(200, 36_000.0)
        double_time = model.expected_failures(100, 72_000.0)
        assert double_fleet == pytest.approx(2 * one)
        assert double_time == pytest.approx(2 * one)

    def test_archer2_weekly_failures_plausible(self):
        """5,860 nodes at a 4-year MTBF → a couple of failures a day."""
        weekly = FailureModel().expected_failures(5860, 7 * SECONDS_PER_DAY)
        assert 5 < weekly < 40

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FailureModel().expected_failures(0, 100.0)
        with pytest.raises(ConfigurationError):
            FailureModel().expected_failures(10, -1.0)


class TestTimeline:
    def test_mean_matches_steady_state(self, rng):
        model = FailureModel(mtbf_hours=200.0, mttr_hours=10.0)
        timeline = model.sample_timeline(2000, 60 * SECONDS_PER_DAY, rng)
        assert timeline.mean_unavailability == pytest.approx(
            model.steady_state_unavailability, rel=0.25
        )

    def test_down_counts_bounded(self, rng):
        model = FailureModel(mtbf_hours=100.0, mttr_hours=50.0)
        timeline = model.sample_timeline(50, 30 * SECONDS_PER_DAY, rng)
        assert np.all(timeline.down_nodes >= 0)
        assert np.all(timeline.down_nodes <= 50)
        assert timeline.peak_down <= 50

    def test_capacity_loss_accounting(self, rng):
        model = FailureModel(mtbf_hours=200.0, mttr_hours=10.0)
        timeline = model.sample_timeline(1000, 10 * SECONDS_PER_DAY, rng)
        expected_nodeh = (
            timeline.mean_unavailability * 1000 * 10 * 24.0
        )
        assert timeline.capacity_loss_node_hours() == pytest.approx(
            expected_nodeh, rel=0.01
        )

    def test_reproducible(self):
        model = FailureModel(mtbf_hours=200.0, mttr_hours=10.0)
        a = model.sample_timeline(500, SECONDS_PER_DAY, np.random.default_rng(3))
        b = model.sample_timeline(500, SECONDS_PER_DAY, np.random.default_rng(3))
        np.testing.assert_array_equal(a.down_nodes, b.down_nodes)

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            FailureModel().sample_timeline(0, 100.0, rng)

    def test_zero_duration_span_rejected(self, rng):
        """A zero-length span is a validation error, not a crash or NaN."""
        with pytest.raises(UnitError):
            FailureModel().sample_timeline(100, 0.0, rng)

    def test_span_shorter_than_sample_interval(self, rng):
        """A span inside one sample interval still yields a one-point grid."""
        model = FailureModel(mtbf_hours=100.0, mttr_hours=10.0)
        timeline = model.sample_timeline(100, 600.0, rng, sample_interval_s=3600.0)
        assert len(timeline.times_s) == 1
        assert 0 <= timeline.down_nodes[0] <= 100

    def test_single_sample_capacity_loss_is_zero(self):
        """With fewer than two samples no interval exists to integrate."""
        timeline = FailureTimeline(
            times_s=np.array([0.0]), down_nodes=np.array([3.0]), n_nodes=10
        )
        assert timeline.capacity_loss_node_hours() == 0.0


class TestFailureProperties:
    @given(mtbf_hours, mttr_hours)
    @settings(max_examples=100)
    def test_unavailability_bounded_and_monotone(self, mtbf, mttr):
        model = FailureModel(mtbf_hours=mtbf, mttr_hours=mttr)
        u = model.steady_state_unavailability
        assert 0.0 < u < 1.0
        # Longer repairs can only make things worse, better MTBF only better.
        assert FailureModel(mtbf_hours=mtbf, mttr_hours=2 * mttr).steady_state_unavailability >= u
        assert FailureModel(mtbf_hours=2 * mtbf, mttr_hours=mttr).steady_state_unavailability <= u

    @given(
        mtbf_hours,
        mttr_hours,
        st.integers(min_value=1, max_value=100_000),
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_expected_failures_linear(self, mtbf, mttr, nodes, duration_s):
        model = FailureModel(mtbf_hours=mtbf, mttr_hours=mttr)
        base = model.expected_failures(nodes, duration_s)
        assert base >= 0.0
        assert model.expected_failures(2 * nodes, duration_s) == pytest.approx(
            2 * base
        )
        assert model.expected_failures(nodes, 2 * duration_s) == pytest.approx(
            2 * base
        )

    @given(mtbf_hours, mttr_hours, st.integers(min_value=1, max_value=100))
    @settings(max_examples=50)
    def test_zero_duration_expects_zero_failures(self, mtbf, mttr, nodes):
        model = FailureModel(mtbf_hours=mtbf, mttr_hours=mttr)
        assert model.expected_failures(nodes, 0.0) == 0.0

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_timeline_counts_always_within_fleet(self, nodes, seed):
        model = FailureModel(mtbf_hours=50.0, mttr_hours=25.0)
        timeline = model.sample_timeline(
            nodes, 2 * SECONDS_PER_DAY, np.random.default_rng(seed)
        )
        assert np.all(timeline.down_nodes >= 0)
        assert np.all(timeline.down_nodes <= nodes)
        assert 0.0 <= timeline.mean_unavailability <= 1.0


class TestTimelineGridEdge:
    """Regression: exact-multiple spans must keep the final sample point."""

    def test_exact_multiple_keeps_endpoint(self, rng):
        model = FailureModel(mtbf_hours=200.0, mttr_hours=10.0)
        timeline = model.sample_timeline(
            100, 2 * SECONDS_PER_DAY, rng, sample_interval_s=3600.0
        )
        assert timeline.times_s[-1] == pytest.approx(2 * SECONDS_PER_DAY)
        assert len(timeline.times_s) == 49  # 48 hourly steps + both endpoints

    def test_float_accumulated_multiple_keeps_endpoint(self, rng):
        """An interval whose multiples accumulate float error still covers
        the full span (the forecast-grid epsilon fix, mirrored here)."""
        interval = 0.1 * 3600.0  # 360 s: 0.1 is inexact in binary
        duration = 1000 * interval
        model = FailureModel(mtbf_hours=200.0, mttr_hours=10.0)
        timeline = model.sample_timeline(
            50, duration, rng, sample_interval_s=interval
        )
        assert len(timeline.times_s) == 1001
        assert timeline.times_s[-1] == pytest.approx(duration)

    def test_non_multiple_truncates_below_span(self, rng):
        model = FailureModel(mtbf_hours=200.0, mttr_hours=10.0)
        timeline = model.sample_timeline(
            100, 90 * 60.0, rng, sample_interval_s=3600.0
        )
        assert timeline.times_s[-1] == pytest.approx(3600.0)
        assert len(timeline.times_s) == 2
