"""Node failure/repair model tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.facility.failures import FailureModel
from repro.units import SECONDS_PER_DAY


class TestSteadyState:
    def test_unavailability_formula(self):
        model = FailureModel(mtbf_hours=1000.0, mttr_hours=10.0)
        assert model.steady_state_unavailability == pytest.approx(10.0 / 1010.0)

    def test_archer2_scale_unavailability_small(self):
        """Default parameters: well under 1 % of the machine down."""
        assert FailureModel().steady_state_unavailability < 0.01

    def test_validation(self):
        with pytest.raises(Exception):
            FailureModel(mtbf_hours=0.0)


class TestExpectedFailures:
    def test_scales_with_fleet_and_time(self):
        model = FailureModel(mtbf_hours=1000.0, mttr_hours=1.0)
        one = model.expected_failures(100, 36_000.0)
        double_fleet = model.expected_failures(200, 36_000.0)
        double_time = model.expected_failures(100, 72_000.0)
        assert double_fleet == pytest.approx(2 * one)
        assert double_time == pytest.approx(2 * one)

    def test_archer2_weekly_failures_plausible(self):
        """5,860 nodes at a 4-year MTBF → a couple of failures a day."""
        weekly = FailureModel().expected_failures(5860, 7 * SECONDS_PER_DAY)
        assert 5 < weekly < 40

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FailureModel().expected_failures(0, 100.0)
        with pytest.raises(ConfigurationError):
            FailureModel().expected_failures(10, -1.0)


class TestTimeline:
    def test_mean_matches_steady_state(self, rng):
        model = FailureModel(mtbf_hours=200.0, mttr_hours=10.0)
        timeline = model.sample_timeline(2000, 60 * SECONDS_PER_DAY, rng)
        assert timeline.mean_unavailability == pytest.approx(
            model.steady_state_unavailability, rel=0.25
        )

    def test_down_counts_bounded(self, rng):
        model = FailureModel(mtbf_hours=100.0, mttr_hours=50.0)
        timeline = model.sample_timeline(50, 30 * SECONDS_PER_DAY, rng)
        assert np.all(timeline.down_nodes >= 0)
        assert np.all(timeline.down_nodes <= 50)
        assert timeline.peak_down <= 50

    def test_capacity_loss_accounting(self, rng):
        model = FailureModel(mtbf_hours=200.0, mttr_hours=10.0)
        timeline = model.sample_timeline(1000, 10 * SECONDS_PER_DAY, rng)
        expected_nodeh = (
            timeline.mean_unavailability * 1000 * 10 * 24.0
        )
        assert timeline.capacity_loss_node_hours() == pytest.approx(
            expected_nodeh, rel=0.01
        )

    def test_reproducible(self):
        model = FailureModel(mtbf_hours=200.0, mttr_hours=10.0)
        a = model.sample_timeline(500, SECONDS_PER_DAY, np.random.default_rng(3))
        b = model.sample_timeline(500, SECONDS_PER_DAY, np.random.default_rng(3))
        np.testing.assert_array_equal(a.down_nodes, b.down_nodes)

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            FailureModel().sample_timeline(0, 100.0, rng)
