"""Component spec tests."""

import pytest

from repro.errors import ConfigurationError, UnitError
from repro.facility.hardware import (
    CabinetSpec,
    CDUSpec,
    ComponentKind,
    ComponentSpec,
    FilesystemSpec,
    NodeSpec,
    SwitchSpec,
)


def make_spec(idle=100.0, loaded=200.0):
    return ComponentSpec(
        name="widget", kind=ComponentKind.FILESYSTEM, idle_power_w=idle, loaded_power_w=loaded
    )


class TestComponentSpec:
    def test_power_at_zero_load_is_idle(self):
        assert make_spec().power_at_load_w(0.0) == 100.0

    def test_power_at_full_load_is_loaded(self):
        assert make_spec().power_at_load_w(1.0) == 200.0

    def test_power_interpolates_linearly(self):
        assert make_spec().power_at_load_w(0.5) == 150.0

    def test_load_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            make_spec().power_at_load_w(1.2)
        with pytest.raises(ConfigurationError):
            make_spec().power_at_load_w(-0.1)

    def test_loaded_below_idle_rejected(self):
        with pytest.raises(ConfigurationError, match="below idle"):
            make_spec(idle=300.0, loaded=200.0)

    def test_negative_power_rejected(self):
        with pytest.raises(UnitError):
            make_spec(idle=-5.0)

    def test_idle_fraction(self):
        assert make_spec().idle_fraction == pytest.approx(0.5)

    def test_idle_fraction_zero_loaded(self):
        spec = make_spec(idle=0.0, loaded=0.0)
        assert spec.idle_fraction == 0.0


class TestNodeSpec:
    def test_archer2_node_core_count(self):
        node = NodeSpec(name="n", idle_power_w=230, loaded_power_w=510)
        assert node.cores == 128

    def test_kind_is_fixed(self):
        node = NodeSpec(name="n", idle_power_w=230, loaded_power_w=510)
        assert node.kind is ComponentKind.COMPUTE_NODE

    def test_idle_near_half_loaded(self):
        """Paper §5: idle nodes draw ~50 % of loaded power."""
        node = NodeSpec(name="n", idle_power_w=230, loaded_power_w=510)
        assert 0.4 < node.idle_fraction < 0.55

    def test_bad_sockets_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(name="n", idle_power_w=230, loaded_power_w=510, sockets=0)

    def test_bad_frequency_rejected(self):
        with pytest.raises(UnitError):
            NodeSpec(
                name="n", idle_power_w=230, loaded_power_w=510, base_frequency_ghz=0.0
            )

    def test_bad_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(name="n", idle_power_w=230, loaded_power_w=510, memory_gib=0)


class TestOtherSpecs:
    def test_switch_defaults(self):
        sw = SwitchSpec(name="s", idle_power_w=200, loaded_power_w=250)
        assert sw.kind is ComponentKind.SWITCH
        assert sw.ports == 64

    def test_cabinet_requires_positive_nodes(self):
        with pytest.raises(ConfigurationError):
            CabinetSpec(
                name="c", idle_power_w=6500, loaded_power_w=8700, nodes_per_cabinet=0
            )

    def test_cdu_capacity_positive(self):
        with pytest.raises(UnitError):
            CDUSpec(
                name="cdu", idle_power_w=16000, loaded_power_w=16000, heat_capacity_kw=0
            )

    def test_filesystem_media_validated(self):
        with pytest.raises(ConfigurationError, match="media"):
            FilesystemSpec(
                name="fs", idle_power_w=8000, loaded_power_w=8000, media="floppy"
            )

    def test_filesystem_valid_media(self):
        for media in ("HDD", "NVMe", "SSD", "mixed"):
            fs = FilesystemSpec(
                name=f"fs-{media}", idle_power_w=8000, loaded_power_w=8000, media=media
            )
            assert fs.media == media
