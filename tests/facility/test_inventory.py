"""Facility inventory tests."""

import pytest

from repro.errors import ConfigurationError
from repro.facility.hardware import ComponentKind, NodeSpec, SwitchSpec
from repro.facility.inventory import FacilityInventory, InventoryEntry


def node_spec(name="node", idle=230.0, loaded=510.0):
    return NodeSpec(name=name, idle_power_w=idle, loaded_power_w=loaded)


def switch_spec(name="switch"):
    return SwitchSpec(name=name, idle_power_w=200.0, loaded_power_w=250.0)


@pytest.fixture
def small():
    inv = FacilityInventory("test")
    inv.add(node_spec(), 10)
    inv.add(switch_spec(), 4)
    return inv


class TestInventoryEntry:
    def test_total_powers(self):
        entry = InventoryEntry(spec=node_spec(), count=10)
        assert entry.idle_power_w == 2300.0
        assert entry.loaded_power_w == 5100.0

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            InventoryEntry(spec=node_spec(), count=0)

    def test_power_at_load(self):
        entry = InventoryEntry(spec=node_spec(), count=2)
        assert entry.power_at_load_w(0.5) == pytest.approx(740.0)


class TestFacilityInventory:
    def test_duplicate_name_rejected(self, small):
        with pytest.raises(ConfigurationError, match="duplicate"):
            small.add(node_spec(), 5)

    def test_lookup_by_name(self, small):
        assert small.entry("node").count == 10

    def test_missing_name_raises(self, small):
        with pytest.raises(ConfigurationError, match="no component"):
            small.entry("gpu")

    def test_contains(self, small):
        assert "node" in small
        assert "gpu" not in small

    def test_len_and_iter_order(self, small):
        assert len(small) == 2
        names = [e.spec.name for e in small]
        assert names == ["node", "switch"]

    def test_counts(self, small):
        assert small.n_nodes == 10
        assert small.n_switches == 4
        assert small.n_cabinets == 0

    def test_core_count(self, small):
        assert small.n_cores == 10 * 128

    def test_multiple_node_types(self):
        inv = FacilityInventory("mixed")
        inv.add(node_spec("std", 230, 510), 8)
        inv.add(node_spec("himem", 260, 540), 2)
        assert inv.n_nodes == 10
        # Count-weighted totals.
        assert inv.idle_power_w() == pytest.approx(8 * 230 + 2 * 260)

    def test_facility_power_totals(self, small):
        assert small.idle_power_w() == pytest.approx(10 * 230 + 4 * 200)
        assert small.loaded_power_w() == pytest.approx(10 * 510 + 4 * 250)

    def test_power_at_load_between_extremes(self, small):
        mid = small.power_at_load_w(0.5)
        assert small.idle_power_w() < mid < small.loaded_power_w()


class TestAggregates:
    def test_shares_sum_to_one(self, small):
        total = sum(a.loaded_share for a in small.aggregates())
        assert total == pytest.approx(1.0)

    def test_rows_ordered_nodes_first(self, small):
        kinds = [a.kind for a in small.aggregates()]
        assert kinds[0] is ComponentKind.COMPUTE_NODE

    def test_loaded_share_lookup(self, small):
        share = small.loaded_share(ComponentKind.COMPUTE_NODE)
        assert share == pytest.approx(5100.0 / (5100.0 + 1000.0))

    def test_missing_kind_share_zero(self, small):
        assert small.loaded_share(ComponentKind.CDU) == 0.0

    def test_compute_cabinet_excludes_storage(self):
        from repro.facility.hardware import FilesystemSpec

        inv = FacilityInventory("with-fs")
        inv.add(node_spec(), 10)
        inv.add(
            FilesystemSpec(name="fs", idle_power_w=8000, loaded_power_w=8000), 1
        )
        assert inv.compute_cabinet_power_w(1.0) == pytest.approx(5100.0)

    def test_summary_keys(self, small):
        summary = small.summary()
        assert summary["nodes"] == 10
        assert summary["loaded_power_kw"] == pytest.approx(6.1)
