"""Facility power model tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.facility.archer2 import archer2_inventory
from repro.facility.inventory import FacilityInventory
from repro.facility.power import FacilityPowerModel


@pytest.fixture(scope="module")
def model():
    return FacilityPowerModel(archer2_inventory())


class TestBreakdown:
    def test_full_load_matches_inventory(self, model, inventory):
        bd = model.breakdown(1.0)
        assert bd.total_w == pytest.approx(inventory.loaded_power_w(), rel=1e-9)

    def test_zero_load_matches_idle_nodes(self, model, inventory):
        bd = model.breakdown(0.0)
        assert bd.compute_nodes_w == pytest.approx(
            sum(e.idle_power_w for e in inventory.node_entries)
        )

    def test_power_monotone_in_utilisation(self, model):
        powers = [model.total_power_w(u) for u in (0.0, 0.3, 0.6, 0.9, 1.0)]
        assert powers == sorted(powers)

    def test_custom_busy_power_used(self, model):
        low = model.compute_cabinet_power_w(1.0, busy_node_power_w=400.0)
        high = model.compute_cabinet_power_w(1.0, busy_node_power_w=510.0)
        assert high - low == pytest.approx(5860 * 110.0)

    def test_negative_busy_power_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.breakdown(0.5, busy_node_power_w=-1.0)

    def test_bad_utilisation_rejected(self, model):
        with pytest.raises(Exception):
            model.breakdown(1.5)

    def test_compute_cabinets_exclude_cooling_storage(self, model):
        bd = model.breakdown(1.0)
        assert bd.compute_cabinets_w == pytest.approx(
            bd.total_w - bd.cooling_w - bd.storage_w
        )

    def test_share_helper(self, model):
        bd = model.breakdown(1.0)
        assert bd.share(bd.total_w) == pytest.approx(1.0)

    def test_baseline_operating_point_near_paper(self, model):
        """At ~95 % utilisation with mix-average busy nodes (~490 W), the
        cabinet power should be near the paper's 3,220 kW baseline."""
        kw = model.compute_cabinet_power_w(0.95, busy_node_power_w=490.0) / 1e3
        assert kw == pytest.approx(3220.0, rel=0.05)


class TestUtilisationSweep:
    def test_sweep_matches_pointwise(self, model):
        us = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        swept = model.utilisation_sweep(us)
        pointwise = [model.compute_cabinet_power_w(float(u)) for u in us]
        np.testing.assert_allclose(swept, pointwise, rtol=1e-12)

    def test_sweep_rejects_out_of_range(self, model):
        with pytest.raises(ConfigurationError):
            model.utilisation_sweep(np.array([0.5, 1.2]))


class TestEnergyPerNodeHour:
    def test_decreases_with_utilisation(self, model):
        """§5: higher utilisation → less energy per delivered node-hour."""
        values = [model.energy_per_nodeh_at(u) for u in (0.5, 0.7, 0.9, 1.0)]
        assert values == sorted(values, reverse=True)

    def test_zero_utilisation_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.energy_per_nodeh_at(0.0)

    def test_50pct_overhead_substantial(self, model):
        """Running half-empty costs ~50 % more energy per node-hour."""
        ratio = model.energy_per_nodeh_at(0.5) / model.energy_per_nodeh_at(1.0)
        assert ratio > 1.4


class TestConstruction:
    def test_inventory_without_nodes_rejected(self):
        empty = FacilityInventory("empty")
        from repro.facility.hardware import SwitchSpec

        empty.add(SwitchSpec(name="s", idle_power_w=200, loaded_power_w=250), 4)
        with pytest.raises(ConfigurationError, match="no compute nodes"):
            FacilityPowerModel(empty)
