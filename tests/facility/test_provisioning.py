"""Electrical provisioning tests."""

import pytest

from repro.facility.provisioning import (
    GridConnection,
    assess_provisioning,
    expansion_headroom_nodes,
)


class TestGridConnection:
    def test_usable_capacity(self):
        conn = GridConnection(capacity_kw=5000.0, safety_margin=0.10)
        assert conn.usable_kw == pytest.approx(4500.0)

    def test_validation(self):
        with pytest.raises(Exception):
            GridConnection(capacity_kw=0.0)
        with pytest.raises(Exception):
            GridConnection(capacity_kw=1000.0, safety_margin=1.5)


class TestAssessProvisioning:
    def test_archer2_fits_a_5mw_connection(self, inventory):
        report = assess_provisioning(inventory, GridConnection(capacity_kw=5000.0))
        assert report.operating_fits
        assert report.worst_case_fits
        assert report.operating_margin_kw > 0

    def test_undersized_connection_flagged(self, inventory):
        report = assess_provisioning(inventory, GridConnection(capacity_kw=3000.0))
        assert not report.operating_fits

    def test_worst_case_exceeds_operating(self, inventory):
        report = assess_provisioning(
            inventory, GridConnection(capacity_kw=5000.0), utilisation=0.9
        )
        assert report.worst_case_kw > report.operating_kw

    def test_physics_worst_case_above_spec(self, inventory, node_model):
        """The model's compute-bound bound exceeds the spec loaded figure."""
        spec = assess_provisioning(inventory, GridConnection(capacity_kw=6000.0))
        physics = assess_provisioning(
            inventory,
            GridConnection(capacity_kw=6000.0),
            worst_case_node_power_w=node_model.max_power_w(),
        )
        assert physics.worst_case_kw > spec.worst_case_kw


class TestExpansionHeadroom:
    def test_interventions_buy_nodes(self, inventory):
        """The §4 savings translate into expansion head-room: lowering busy
        node power frees connection capacity worth hundreds of nodes."""
        conn = GridConnection(capacity_kw=4200.0, safety_margin=0.05)
        before = expansion_headroom_nodes(inventory, conn, busy_node_power_w=490.0)
        after = expansion_headroom_nodes(inventory, conn, busy_node_power_w=400.0)
        assert after > before
        assert after - before > 300

    def test_saturated_connection_zero_headroom(self, inventory):
        conn = GridConnection(capacity_kw=3400.0)
        assert expansion_headroom_nodes(inventory, conn) == 0

    def test_headroom_scales_with_capacity(self, inventory):
        small = expansion_headroom_nodes(inventory, GridConnection(capacity_kw=4000.0))
        large = expansion_headroom_nodes(inventory, GridConnection(capacity_kw=6000.0))
        assert large > small
