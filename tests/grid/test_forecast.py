"""Carbon-intensity forecasting tests."""

import numpy as np
import pytest

from repro.errors import AnalysisError, UnitError
from repro.grid.carbon_intensity import CarbonIntensityModel
from repro.grid.forecast import (
    FeedOutage,
    ForecastFeed,
    ForecastIndex,
    diurnal_template_forecast,
    evaluate_forecast,
    persistence_forecast,
    sample_feed_outages,
)
from repro.telemetry.series import TimeSeries
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def history(rng):
    """Two weeks of UK-shaped CI at hourly cadence."""
    return CarbonIntensityModel(mean_ci_g_per_kwh=190.0).series(
        0.0, 14 * SECONDS_PER_DAY, 3600.0, rng
    )


class TestPersistence:
    def test_flat_at_last_value(self, history):
        forecast = persistence_forecast(history, 6 * 3600.0)
        assert len(np.unique(forecast.values)) == 1
        assert forecast.values[0] == history.values[-1]

    def test_starts_after_history(self, history):
        forecast = persistence_forecast(history, 6 * 3600.0)
        assert forecast.t_start_s > history.t_end_s

    def test_horizon_respected(self, history):
        forecast = persistence_forecast(history, 24 * 3600.0)
        assert len(forecast) == 24

    def test_too_short_horizon_rejected(self, history):
        with pytest.raises(AnalysisError):
            persistence_forecast(history, 60.0)


class TestDiurnalTemplate:
    def test_template_has_diurnal_shape(self, history):
        forecast = diurnal_template_forecast(history, SECONDS_PER_DAY)
        # Evening hours must exceed early-morning hours, like the source.
        hours = (forecast.times_s % SECONDS_PER_DAY) / 3600.0
        evening = forecast.values[(hours >= 18) & (hours < 21)].mean()
        early = forecast.values[(hours >= 3) & (hours < 6)].mean()
        assert evening > early

    def test_deterministic_history_recovered(self):
        """With a perfectly periodic history, the template is exact."""
        times = np.arange(0.0, 7 * SECONDS_PER_DAY, 3600.0)
        hours = (times % SECONDS_PER_DAY) / 3600.0
        values = 200.0 + 30.0 * np.cos(2 * np.pi * (hours - 19.0) / 24.0)
        history = TimeSeries(times, values)
        forecast = diurnal_template_forecast(history, SECONDS_PER_DAY)
        f_hours = (forecast.times_s % SECONDS_PER_DAY) / 3600.0
        expected = 200.0 + 30.0 * np.cos(2 * np.pi * (f_hours - 19.0) / 24.0)
        np.testing.assert_allclose(forecast.values, expected, rtol=1e-9)

    def test_bad_template_days(self, history):
        with pytest.raises(AnalysisError):
            diurnal_template_forecast(history, SECONDS_PER_DAY, template_days=0)


class TestEvaluate:
    def test_template_beats_persistence_at_a_day(self, rng):
        """At 24 h horizon the diurnal template must beat persistence —
        the skill ordering the forecast literature guarantees."""
        model = CarbonIntensityModel(mean_ci_g_per_kwh=190.0, noise_sigma=0.08)
        full = model.series(0.0, 20 * SECONDS_PER_DAY, 3600.0, rng)
        split = 16 * SECONDS_PER_DAY
        history = full.slice(0.0, split)
        realised = full.slice(split, 20 * SECONDS_PER_DAY)
        horizon = 2 * SECONDS_PER_DAY
        pers = evaluate_forecast(persistence_forecast(history, horizon), realised)
        tmpl = evaluate_forecast(diurnal_template_forecast(history, horizon), realised)
        assert tmpl.better_than(pers)

    def test_perfect_forecast_zero_error(self, history):
        skill = evaluate_forecast(history, history)
        assert skill.mae_g_per_kwh == 0.0
        assert skill.rmse_g_per_kwh == 0.0

    def test_disjoint_series_rejected(self, history):
        other = TimeSeries(history.times_s + 1.0, history.values)
        with pytest.raises(AnalysisError):
            evaluate_forecast(history, other)


class TestEvaluateMisaligned:
    """Forecast and realised series rarely share a grid in practice: the
    forecast runs at its own cadence while telemetry arrives on another.
    evaluate_forecast scores on the shared-timestamp subset only."""

    def test_coarser_realised_cadence_uses_shared_subset(self):
        times_fine = np.arange(0.0, 48 * 3600.0, 1800.0)
        forecast = TimeSeries(times_fine, np.full(len(times_fine), 100.0))
        times_coarse = times_fine[::2]  # hourly realised vs half-hourly forecast
        realised = TimeSeries(times_coarse, np.full(len(times_coarse), 110.0))
        skill = evaluate_forecast(forecast, realised)
        assert skill.mae_g_per_kwh == pytest.approx(10.0)
        assert skill.rmse_g_per_kwh == pytest.approx(10.0)

    def test_partial_overlap_scores_only_the_overlap(self):
        times = np.arange(0.0, 24 * 3600.0, 3600.0)
        forecast = TimeSeries(times, np.full(len(times), 100.0))
        shifted = times + 12 * 3600.0  # second half overlaps, first half beyond
        errors = np.where(shifted < 24 * 3600.0, 5.0, 1000.0)
        realised = TimeSeries(shifted, np.full(len(times), 100.0) + errors)
        skill = evaluate_forecast(forecast, realised)
        # Only the 12 overlapping hours score; the +1000 tail is ignored.
        assert skill.mae_g_per_kwh == pytest.approx(5.0)

    def test_offset_grids_share_nothing(self):
        """Same cadence, phase-shifted by one second: no shared stamps."""
        times = np.arange(0.0, 24 * 3600.0, 3600.0)
        forecast = TimeSeries(times, np.full(len(times), 100.0))
        realised = TimeSeries(times + 1.0, np.full(len(times), 100.0))
        with pytest.raises(AnalysisError):
            evaluate_forecast(forecast, realised)

    def test_all_nan_overlap_rejected(self):
        """Shared stamps whose realised values are all NaN cannot score."""
        times = np.arange(0.0, 10 * 3600.0, 3600.0)
        forecast = TimeSeries(times, np.full(len(times), 100.0))
        realised_values = np.full(len(times), np.nan)
        realised = TimeSeries(times, realised_values)
        with pytest.raises(AnalysisError):
            evaluate_forecast(forecast, realised)


class TestForecastGridEdges:
    """Horizon-edge regression: exact multiples must not drop their last point."""

    def test_exact_multiple_with_fp_hostile_interval(self, history):
        # 3600/7 is not representable in binary; 24 intervals of it would
        # floor to 23 points under naive division.
        interval = 3600.0 / 7.0
        times = np.arange(0.0, 2 * SECONDS_PER_DAY, interval)
        series = TimeSeries(times, np.full(len(times), 150.0))
        forecast = persistence_forecast(series, 24 * interval)
        assert len(forecast) == 24
        assert forecast.times_s[-1] == pytest.approx(series.t_end_s + 24 * interval)

    def test_exact_multiple_hourly(self, history):
        forecast = persistence_forecast(history, 24 * 3600.0)
        assert len(forecast) == 24

    def test_diurnal_grid_matches_persistence_grid(self, history):
        horizon = 36 * 3600.0
        p = persistence_forecast(history, horizon)
        d = diurnal_template_forecast(history, horizon)
        assert np.array_equal(p.times_s, d.times_s)

    def test_sub_interval_horizon_rejected(self, history):
        with pytest.raises(AnalysisError):
            persistence_forecast(history, 60.0)  # hourly cadence, 1 min horizon


class TestForecastIndex:
    @pytest.fixture
    def step_series(self):
        """100 on [0, 3600), 40 on [3600, 7200), 200 from 7200 on."""
        return TimeSeries(
            np.array([0.0, 3600.0, 7200.0]),
            np.array([100.0, 40.0, 200.0]),
            "ci",
        )

    def test_window_mean_exact_on_step_function(self, step_series):
        index = ForecastIndex(step_series)
        assert index.window_mean(0.0, 3600.0) == pytest.approx(100.0)
        assert index.window_mean(0.0, 7200.0) == pytest.approx(70.0)
        # Half in the 40 segment, half in the 200 segment.
        assert index.window_mean(5400.0, 9000.0) == pytest.approx(120.0)

    def test_ci_at_holds_previous_value_and_extends_flat(self, step_series):
        index = ForecastIndex(step_series)
        assert index.ci_at(-100.0) == 100.0
        assert index.ci_at(3599.0) == 100.0
        assert index.ci_at(3600.0) == 40.0
        assert index.ci_at(1e9) == 200.0

    def test_greenest_window_finds_the_low_segment(self, step_series):
        index = ForecastIndex(step_series)
        window = index.greenest_window(3600.0, 0.0, 86_400.0)
        assert window.t_start_s == 3600.0
        assert window.mean_ci_g_per_kwh == pytest.approx(40.0)

    def test_greenest_window_ties_break_earliest(self):
        flat = TimeSeries(
            np.arange(0.0, 10 * 3600.0, 3600.0), np.full(10, 80.0), "ci"
        )
        window = ForecastIndex(flat).greenest_window(1800.0, 900.0, 5 * 3600.0)
        assert window.t_start_s == 900.0

    def test_nan_forecast_rejected(self):
        series = TimeSeries(
            np.array([0.0, 3600.0]), np.array([100.0, np.nan]), "ci"
        )
        with pytest.raises(AnalysisError):
            ForecastIndex(series)

    def test_degenerate_window_rejected(self, step_series):
        with pytest.raises(AnalysisError):
            ForecastIndex(step_series).window_mean(100.0, 100.0)


@pytest.fixture
def hourly_series():
    t = np.arange(0.0, 48 * 3600.0, 3600.0)
    return TimeSeries(t, 100.0 + np.arange(len(t), dtype=float), "ci")


class TestForecastFeed:
    def test_refresh_on_cadence_grid(self, hourly_series):
        feed = ForecastFeed(ForecastIndex(hourly_series), refresh_interval_s=1800.0)
        assert feed.last_refresh_s(0.0) == 0.0
        assert feed.last_refresh_s(1799.0) == 0.0
        assert feed.last_refresh_s(1800.0) == 1800.0
        assert feed.last_refresh_s(5000.0) == 3600.0

    def test_exact_grid_instant_not_lost_to_float_error(self, hourly_series):
        feed = ForecastFeed(ForecastIndex(hourly_series), refresh_interval_s=0.1)
        assert feed.last_refresh_s(100 * 0.1) == pytest.approx(10.0)

    def test_outage_holds_last_value(self, hourly_series):
        feed = ForecastFeed(
            ForecastIndex(hourly_series),
            refresh_interval_s=1800.0,
            outages=(FeedOutage(3600.0, 4 * 3600.0),),
        )
        # Refreshes at 3600, 5400, ... are blocked; last success was 1800.
        assert feed.last_refresh_s(2 * 3600.0) == 1800.0
        assert feed.last_refresh_s(3.9 * 3600.0) == 1800.0
        assert feed.ci_at(3.9 * 3600.0) == feed.index.ci_at(1800.0)

    def test_recovers_at_first_refresh_after_outage(self, hourly_series):
        feed = ForecastFeed(
            ForecastIndex(hourly_series),
            refresh_interval_s=1800.0,
            outages=(FeedOutage(3600.0, 4 * 3600.0),),
        )
        # First grid instant at/after the outage end is 4 h exactly.
        assert feed.last_refresh_s(4 * 3600.0) == 4 * 3600.0
        assert feed.staleness_s(4 * 3600.0) == 0.0

    def test_staleness_and_threshold(self, hourly_series):
        feed = ForecastFeed(
            ForecastIndex(hourly_series),
            refresh_interval_s=1800.0,
            outages=(FeedOutage(3600.0, 10 * 3600.0),),
        )
        assert feed.is_stale(6 * 3600.0, threshold_s=2 * 3600.0)
        assert not feed.is_stale(2 * 3600.0, threshold_s=2 * 3600.0)

    def test_before_series_start_pins_to_anchor(self, hourly_series):
        feed = ForecastFeed(ForecastIndex(hourly_series))
        assert feed.last_refresh_s(-500.0) == 0.0

    def test_overlapping_outages_rejected(self, hourly_series):
        with pytest.raises(AnalysisError):
            ForecastFeed(
                ForecastIndex(hourly_series),
                outages=(FeedOutage(0.0, 7200.0), FeedOutage(3600.0, 9000.0)),
            )

    def test_outage_validation(self):
        with pytest.raises(AnalysisError):
            FeedOutage(100.0, 100.0)
        with pytest.raises(AnalysisError):
            FeedOutage(0.0, float("inf"))


class TestSampleFeedOutages:
    def test_seeded_and_non_overlapping(self):
        span = 30 * SECONDS_PER_DAY
        a = sample_feed_outages(span, np.random.default_rng(9))
        b = sample_feed_outages(span, np.random.default_rng(9))
        assert a == b
        for prev, cur in zip(a, a[1:]):
            assert cur.t_start_s >= prev.t_end_s
        for outage in a:
            assert 0.0 <= outage.t_start_s < outage.t_end_s <= span

    def test_frequent_outages_appear(self):
        outages = sample_feed_outages(
            30 * SECONDS_PER_DAY,
            np.random.default_rng(2),
            mtbf_hours=24.0,
            mttr_hours=2.0,
        )
        assert len(outages) > 5

    def test_validation(self):
        with pytest.raises(UnitError):
            sample_feed_outages(0.0, np.random.default_rng(0))
