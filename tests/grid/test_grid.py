"""Grid substrate tests: carbon intensity, pricing, stress events."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.grid.carbon_intensity import (
    SCENARIOS,
    CarbonIntensityModel,
    scenario,
)
from repro.grid.events import (
    GridStressEvent,
    GridStressGenerator,
    demand_response_summary,
)
from repro.grid.pricing import PricingModel, energy_cost_gbp
from repro.telemetry.series import TimeSeries
from repro.units import SECONDS_PER_DAY, SECONDS_PER_YEAR


class TestScenarios:
    def test_presets_span_all_regimes(self):
        means = [s.mean_ci_g_per_kwh for s in SCENARIOS.values()]
        assert min(means) < 30.0
        assert any(30.0 <= m <= 100.0 for m in means)
        assert max(means) > 100.0

    def test_lookup(self):
        assert scenario("uk_2022").mean_ci_g_per_kwh == pytest.approx(190.0)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario("mars_colony")


class TestCarbonIntensityModel:
    def test_series_positive_and_bounded(self, rng):
        model = CarbonIntensityModel()
        series = model.series(0.0, 30 * SECONDS_PER_DAY, 1800.0, rng)
        assert series.min() >= model.floor_g_per_kwh
        assert series.max() < model.mean_ci_g_per_kwh * 3

    def test_mean_near_configured(self, rng):
        model = CarbonIntensityModel(mean_ci_g_per_kwh=200.0)
        series = model.series(0.0, SECONDS_PER_YEAR, 6 * 3600.0, rng)
        assert series.mean() == pytest.approx(200.0, rel=0.1)

    def test_seasonal_winter_higher_than_summer(self):
        model = CarbonIntensityModel(diurnal_amplitude=0.0)
        winter = model.deterministic_g_per_kwh(np.array([15 * SECONDS_PER_DAY]))
        summer = model.deterministic_g_per_kwh(
            np.array([(15 + 182) * SECONDS_PER_DAY])
        )
        assert winter[0] > summer[0]

    def test_diurnal_evening_peak(self):
        model = CarbonIntensityModel(seasonal_amplitude=0.0)
        evening = model.deterministic_g_per_kwh(np.array([19 * 3600.0]))
        early = model.deterministic_g_per_kwh(np.array([7 * 3600.0]))
        assert evening[0] > early[0]

    def test_from_scenario(self):
        model = CarbonIntensityModel.from_scenario("low_carbon")
        assert model.mean_ci_g_per_kwh == pytest.approx(25.0)

    def test_noise_correlated(self, rng):
        """AR(1) noise: lag-1 autocorrelation must be strong at sub-day lags."""
        model = CarbonIntensityModel(seasonal_amplitude=0.0, diurnal_amplitude=0.0)
        series = model.series(0.0, 60 * SECONDS_PER_DAY, 3600.0, rng)
        x = series.values - series.values.mean()
        autocorr = np.dot(x[:-1], x[1:]) / np.dot(x, x)
        assert autocorr > 0.8

    def test_bad_window_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            CarbonIntensityModel().series(10.0, 10.0, 60.0, rng)


class TestPricing:
    def test_price_increases_with_ci(self):
        model = PricingModel()
        assert model.mean_price_gbp_per_kwh(300.0) > model.mean_price_gbp_per_kwh(50.0)

    def test_price_series_aligned(self, rng):
        ci = TimeSeries(np.arange(10.0) * 3600.0, np.full(10, 200.0))
        prices = PricingModel(volatility=0.0).price_from_ci(ci)
        np.testing.assert_allclose(prices.times_s, ci.times_s)
        np.testing.assert_allclose(
            prices.values, 0.08 + 0.0011 * 200.0
        )

    def test_volatility_preserves_mean(self, rng):
        ci = TimeSeries(np.arange(5000.0) * 3600.0, np.full(5000, 200.0))
        noisy = PricingModel(volatility=0.2).price_from_ci(ci, rng)
        flat = PricingModel(volatility=0.0).price_from_ci(ci)
        assert noisy.mean() == pytest.approx(flat.mean(), rel=0.02)

    def test_energy_cost_integration(self):
        times = np.arange(0.0, 7200.0, 3600.0)  # two hourly samples
        power = TimeSeries(times, np.full(2, 1000.0))  # 1 kW
        price = TimeSeries(times, np.full(2, 0.5))  # £0.50/kWh
        assert energy_cost_gbp(power, price) == pytest.approx(1.0)

    def test_energy_cost_misaligned_rejected(self):
        a = TimeSeries(np.array([0.0, 1.0]), np.array([1.0, 1.0]))
        b = TimeSeries(np.array([0.0, 2.0]), np.array([1.0, 1.0]))
        with pytest.raises(ConfigurationError):
            energy_cost_gbp(a, b)


class TestStressEvents:
    def test_event_window(self):
        event = GridStressEvent(
            start_s=100.0, duration_s=50.0, severity=0.8, requested_reduction_kw=500.0
        )
        assert event.contains(100.0)
        assert event.contains(149.0)
        assert not event.contains(150.0)

    def test_bad_severity_rejected(self):
        with pytest.raises(ConfigurationError):
            GridStressEvent(
                start_s=0.0, duration_s=10.0, severity=0.0, requested_reduction_kw=1.0
            )

    def test_generator_produces_winter_evening_events(self, rng):
        gen = GridStressGenerator(events_per_winter_month=5.0)
        events = gen.generate(0.0, 60 * SECONDS_PER_DAY, rng)
        assert events
        for event in events:
            hour = (event.start_s % SECONDS_PER_DAY) / 3600.0
            assert hour == pytest.approx(17.0)
            assert event.duration_s >= 1800.0

    def test_generator_ordered(self, rng):
        events = GridStressGenerator().generate(0.0, 90 * SECONDS_PER_DAY, rng)
        starts = [e.start_s for e in events]
        assert starts == sorted(starts)

    def test_demand_response_summary(self):
        times = np.arange(0.0, 10 * 3600.0, 900.0)
        baseline = TimeSeries(times, np.full(len(times), 3200.0))
        reduced = TimeSeries(times, np.full(len(times), 2500.0))
        events = [
            GridStressEvent(
                start_s=3600.0,
                duration_s=7200.0,
                severity=1.0,
                requested_reduction_kw=500.0,
            )
        ]
        summary = demand_response_summary(baseline, reduced, events)
        assert summary["mean_freed_kw"] == pytest.approx(700.0)
        assert summary["fulfilment"] == 1.0
        assert summary["event_hours"] == pytest.approx(2.0)

    def test_demand_response_no_events(self):
        times = np.arange(0.0, 3600.0, 900.0)
        series = TimeSeries(times, np.full(len(times), 3200.0))
        summary = demand_response_summary(series, series, [])
        assert summary["mean_freed_kw"] == 0.0
