"""Decarbonisation-trajectory tests."""

import math

import numpy as np
import pytest

from repro.core.emissions import EmbodiedProfile, EmissionsModel
from repro.errors import ConfigurationError
from repro.grid.trajectory import (
    DecarbonisationTrajectory,
    lifetime_average_ci,
    regime_crossing_year,
)


@pytest.fixture(scope="module")
def uk_like():
    return DecarbonisationTrajectory()


class TestTrajectory:
    def test_starts_at_start(self, uk_like):
        assert uk_like.ci_at(0.0) == pytest.approx(190.0)

    def test_monotone_decline_to_floor(self, uk_like):
        years = np.arange(0.0, 60.0, 1.0)
        ci = uk_like.ci_at(years)
        assert np.all(np.diff(ci) <= 1e-12)
        assert ci[-1] == pytest.approx(uk_like.floor_g_per_kwh)

    def test_halving_time_about_a_decade(self, uk_like):
        """7 %/yr halves CI in ~9.6 years."""
        assert uk_like.years_to_reach(95.0) == pytest.approx(9.55, abs=0.3)

    def test_target_below_floor_unreachable(self, uk_like):
        assert uk_like.years_to_reach(5.0) == float("inf")

    def test_target_above_start_immediate(self, uk_like):
        assert uk_like.years_to_reach(400.0) == 0.0

    def test_flat_trajectory_never_moves(self):
        flat = DecarbonisationTrajectory(annual_reduction=0.0)
        assert flat.years_to_reach(100.0) == float("inf")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DecarbonisationTrajectory(annual_reduction=1.0)
        with pytest.raises(ConfigurationError):
            DecarbonisationTrajectory(floor_g_per_kwh=500.0)
        with pytest.raises(ConfigurationError):
            DecarbonisationTrajectory().ci_at(-1.0)


class TestLifetimeAverage:
    def test_average_between_endpoints(self, uk_like):
        avg = lifetime_average_ci(uk_like, 6.0)
        assert uk_like.ci_at(6.0) < avg < uk_like.ci_at(0.0)

    def test_flat_grid_average_is_start(self):
        flat = DecarbonisationTrajectory(annual_reduction=0.0)
        assert lifetime_average_ci(flat, 6.0) == pytest.approx(190.0)


class TestRegimeCrossing:
    def test_archer2_never_crosses_in_six_years(self, uk_like):
        """From 190 g/kWh at 7 %/yr, the ~54 g/kWh crossover is ~17 years
        out — beyond a 6-year service life, so the paper's energy-efficiency
        posture holds for the whole life."""
        model = EmissionsModel(embodied=EmbodiedProfile(), mean_power_kw=3500.0)
        crossing = regime_crossing_year(
            uk_like, model.crossover_ci_g_per_kwh(), lifetime_years=6.0
        )
        assert crossing is None

    def test_fast_decarbonisation_crosses_mid_life(self):
        """On an aggressively decarbonising grid the same facility flips to
        scope-3-dominated mid-life — and should then flip its operating
        posture to performance-first."""
        fast = DecarbonisationTrajectory(start_ci_g_per_kwh=100.0, annual_reduction=0.20)
        model = EmissionsModel(embodied=EmbodiedProfile(), mean_power_kw=3500.0)
        crossing = regime_crossing_year(
            fast, model.crossover_ci_g_per_kwh(), lifetime_years=6.0
        )
        assert crossing is not None
        assert 1.0 < crossing < 6.0


class TestFrozenGridSentinel:
    """Regression tests for the audited exact-float sentinel in
    ``years_to_reach`` (``annual_reduction == 0.0``) and the ``math.isinf``
    guard in ``regime_crossing_year`` (formerly ``year == float("inf")``).
    """

    def test_frozen_grid_never_reaches_lower_target(self):
        frozen = DecarbonisationTrajectory(annual_reduction=0.0)
        assert math.isinf(frozen.years_to_reach(100.0))

    def test_tiny_reduction_is_finite_and_large(self):
        """Near-zero (but nonzero) rates take the log formula, not the
        sentinel — the two branches agree in the limit (both diverge)."""
        slow = DecarbonisationTrajectory(annual_reduction=1e-9)
        years = slow.years_to_reach(100.0)
        assert math.isfinite(years)
        assert years > 1e8

    def test_crossing_handles_infinite_reach_via_isinf(self):
        """regime_crossing_year must treat inf (unreachable) as None; the
        math.isinf form is NaN-safe where ``== float('inf')`` merely worked."""
        frozen = DecarbonisationTrajectory(annual_reduction=0.0)
        model = EmissionsModel(embodied=EmbodiedProfile(), mean_power_kw=3500.0)
        assert regime_crossing_year(
            frozen, model.crossover_ci_g_per_kwh(), lifetime_years=50.0
        ) is None
