"""End-to-end integration: campaign → telemetry → analysis → emissions.

Exercises the full pipeline on the scaled facility: simulate with an
intervention, persist telemetry to disk, reload it, detect the change point
blind, quantify the saving, and account the emissions impact against a
synthetic grid — the complete workflow the paper's methodology describes.
"""

import numpy as np
import pytest

from repro.analysis.changepoint import detect_single
from repro.core.emissions import EmbodiedProfile, EmissionsModel
from repro.core.interventions import assess_impact
from repro.grid.carbon_intensity import CarbonIntensityModel
from repro.grid.pricing import PricingModel, energy_cost_gbp
from repro.telemetry.io import load_npz, save_npz
from repro.units import SECONDS_PER_DAY


class TestFullPipeline:
    def test_persist_detect_assess(self, intervention_campaign, tmp_path):
        measured = intervention_campaign.measured_kw

        # 1. Persist and reload telemetry.
        path = tmp_path / "cabinet.npz"
        save_npz(measured, path)
        reloaded = load_npz(path)
        np.testing.assert_array_equal(reloaded.values, measured.values)

        # 2. Blind change-point detection finds one of the two interventions.
        detected = detect_single(reloaded)
        changes = intervention_campaign.config.schedule.change_times_s
        nearest = min(abs(detected.time_s - c) for c in changes)
        assert nearest < 3 * SECONDS_PER_DAY

        # 3. Impact assessment around the known change times.
        impacts = [
            assess_impact(reloaded, c, settle_s=SECONDS_PER_DAY) for c in changes
        ]
        assert all(impact.saving > 0 for impact in impacts)

    def test_emissions_accounting_from_campaign(self, intervention_campaign, rng):
        measured = intervention_campaign.measured_kw
        ci_model = CarbonIntensityModel(mean_ci_g_per_kwh=190.0)
        ci = ci_model.series(
            measured.t_start_s,
            measured.t_end_s + 900.0,
            900.0,
            rng,
        )
        ci = ci.slice(measured.t_start_s, measured.t_end_s + 1.0)
        assert len(ci) == len(measured)

        scope2 = EmissionsModel.scope2_from_series(measured, ci)
        assert scope2 > 0

        # Cross-check against the flat-CI approximation: within noise.
        flat = EmissionsModel(
            embodied=EmbodiedProfile(), mean_power_kw=measured.mean()
        )
        flat_annualised = flat.scope2_tco2e_per_year(ci.mean())
        span_years = measured.span_s / (365.2425 * 86_400.0)
        assert scope2 == pytest.approx(flat_annualised * span_years, rel=0.2)

    def test_cost_accounting_reflects_saving(self, intervention_campaign, rng):
        """Electricity cost after both interventions is lower per unit time."""
        measured = intervention_campaign.measured_kw
        ci_model = CarbonIntensityModel(mean_ci_g_per_kwh=190.0)
        ci = ci_model.series(
            measured.t_start_s, measured.t_end_s + 900.0, 900.0, rng
        ).slice(measured.t_start_s, measured.t_end_s + 1.0)
        prices = PricingModel(volatility=0.0).price_from_ci(ci)

        changes = intervention_campaign.config.schedule.change_times_s
        before_window = (measured.t_start_s, changes[0])
        after_window = (changes[1] + SECONDS_PER_DAY, measured.t_end_s + 1.0)

        def window_cost_per_day(window):
            power_w = measured.slice(*window).scale_values(1e3)
            price = prices.slice(*window)
            days = (window[1] - window[0]) / SECONDS_PER_DAY
            return energy_cost_gbp(power_w, price) / days

        assert window_cost_per_day(after_window) < window_cost_per_day(before_window)

    def test_job_accounting_consistency(self, intervention_campaign):
        sim = intervention_campaign.simulation
        by_app = sim.node_hours_by_app()
        assert sum(by_app.values()) == pytest.approx(sim.total_node_hours(), rel=1e-9)
        assert sim.mean_wait_s() >= 0.0

    def test_utilisation_and_power_correlated(self, baseline_campaign):
        """Sanity: cabinet power moves with busy-node count."""
        measured = baseline_campaign.measured_kw
        trace = baseline_campaign.simulation.trace
        busy = trace.sample_busy_nodes(measured.times_s)
        valid = ~np.isnan(measured.values)
        corr = np.corrcoef(busy[valid], measured.values[valid])[0, 1]
        assert corr > 0.9
