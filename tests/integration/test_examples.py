"""Smoke tests: every shipped example must run cleanly end to end.

Each example is executed as a subprocess (the way a user runs it) with a
generous timeout; we assert a zero exit code and that the headline sections
of its output appear.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

CASES = {
    "quickstart.py": ["mean compute-cabinet power", "crossover"],
    "facility_session.py": ["recommended config", "swept 216 scenarios"],
    "frequency_sweep.py": ["module-reset rule", "Energy-optimal freq"],
    "emissions_planning.py": ["Recommended config", "2.0GHz / performance-determinism"],
    "grid_citizenship.py": ["freed for the grid", "Scope-2 emissions"],
    "future_work.py": ["Training break-even", "Shed achieved"],
    "site_study.py": ["decision engine recommends", "tCO2e avoided"],
}


@pytest.mark.parametrize("script,expected", sorted(CASES.items()))
def test_example_runs(script, expected):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for fragment in expected:
        assert fragment in proc.stdout, f"{script}: {fragment!r} not in output"
