"""Full-chain integration at ARCHER2 scale (short window).

One campaign through the BIOS intervention at full 5,860-node scale, then
the complete §3-style analysis chain on its telemetry: quality gates,
autocorrelation diagnostics, blind change-point detection, and a bootstrap
confidence interval on the saving. This is the workflow the paper's
methodology prescribes, end to end, on one piece of data.
"""

import numpy as np
import pytest

from repro.analysis.autocorrelation import summarise_autocorrelation
from repro.analysis.bootstrap import bootstrap_impact_delta
from repro.analysis.changepoint import detect_single
from repro.core.campaign import run_campaign
from repro.core.interventions import BiosDeterminismChange, InterventionSchedule
from repro.experiments.common import baseline_operating_state, figure_campaign_config
from repro.telemetry.quality import assess_quality
from repro.units import SECONDS_PER_DAY


@pytest.fixture(scope="module")
def campaign():
    schedule = InterventionSchedule(
        baseline_operating_state(),
        [BiosDeterminismChange(time_s=10 * SECONDS_PER_DAY)],
    )
    config = figure_campaign_config(20 * SECONDS_PER_DAY, schedule, seed=777)
    return run_campaign(config)


class TestFullChain:
    def test_quality_gates_pass(self, campaign):
        report = assess_quality(campaign.measured_kw)
        assert report.healthy(), report

    def test_autocorrelation_guides_block_choice(self, campaign):
        summary = summarise_autocorrelation(campaign.measured_kw)
        assert summary.tau_seconds > 1800.0  # job-scale memory
        assert summary.recommended_block >= 2

    def test_blind_detection_finds_intervention(self, campaign):
        detected = detect_single(campaign.measured_kw)
        assert detected.time_s == pytest.approx(
            10 * SECONDS_PER_DAY, abs=1.5 * SECONDS_PER_DAY
        )
        assert detected.delta < 0  # power went down

    def test_bootstrap_resolves_saving(self, campaign):
        summary = summarise_autocorrelation(campaign.measured_kw)
        rng = np.random.default_rng(0)
        interval = bootstrap_impact_delta(
            campaign.measured_kw,
            10 * SECONDS_PER_DAY,
            rng,
            settle_s=2 * SECONDS_PER_DAY,
            block=summary.recommended_block,
        )
        # Saving significant and in the paper's ballpark (~210 kW).
        assert interval.lower > 0
        assert 100.0 < interval.estimate < 350.0

    def test_energy_accounting_closes(self, campaign):
        """Trace energy equals per-record energy exactly (conservation)."""
        sim = campaign.simulation
        record_energy = sum(r.energy_j for r in sim.records)
        assert sim.trace.energy_j() == pytest.approx(record_energy, rel=1e-9)
