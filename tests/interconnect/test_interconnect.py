"""Dragonfly topology and switch power tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.interconnect.dragonfly import (
    DragonflyConfig,
    DragonflyTopology,
    archer2_like_dragonfly,
)
from repro.interconnect.power import SwitchPowerModel


@pytest.fixture(scope="module")
def small_fabric():
    return DragonflyTopology(
        DragonflyConfig(
            n_groups=6, switches_per_group=4, nodes_per_switch=4, global_links_per_switch=2
        )
    )


class TestDragonflyConfig:
    def test_archer2_scale(self):
        config = DragonflyConfig()
        assert config.n_switches == 768
        assert config.n_nodes >= 5860  # enough injection ports for ARCHER2

    def test_port_budget_enforced(self):
        with pytest.raises(ConfigurationError, match="ports"):
            DragonflyConfig(switches_per_group=60, nodes_per_switch=10, switch_ports=64)

    def test_global_link_budget_enforced(self):
        with pytest.raises(ConfigurationError, match="global"):
            DragonflyConfig(
                n_groups=40, switches_per_group=4, global_links_per_switch=1
            )

    def test_bad_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            DragonflyConfig(n_groups=0)


class TestTopology:
    def test_counts_match_config(self, small_fabric):
        config = small_fabric.config
        assert small_fabric.n_switches == config.n_switches
        assert small_fabric.n_nodes == config.n_nodes

    def test_small_diameter(self, small_fabric):
        """Dragonfly promise: a few hops between any two switches."""
        assert small_fabric.switch_diameter() <= 3

    def test_connected(self, small_fabric):
        import networkx as nx

        assert nx.is_connected(small_fabric.graph)

    def test_port_budget_respected_in_graph(self, small_fabric):
        assert small_fabric.max_switch_degree() <= small_fabric.config.switch_ports

    def test_intra_group_all_to_all(self, small_fabric):
        g = small_fabric.graph
        a = g.nodes["s0.0"]
        assert a["kind"] == "switch"
        for i in range(1, small_fabric.config.switches_per_group):
            assert g.has_edge("s0.0", f"s0.{i}")

    def test_archer2_like_builds(self):
        fabric = archer2_like_dragonfly()
        assert fabric.n_switches == 768


class TestSwitchPower:
    def test_idle_loaded_band_matches_paper(self):
        """§5: switches draw 200-250 W irrespective of load."""
        model = SwitchPowerModel()
        assert model.power_w(0.0) == 200.0
        assert model.power_w(1.0) == 250.0

    def test_load_invariance_high(self):
        assert SwitchPowerModel().load_invariance() == pytest.approx(0.8)

    def test_fabric_power_archer2_scale(self):
        """768 switches ≈ 200 kW loaded — the Table 2 row."""
        power_kw = SwitchPowerModel().fabric_power_w(768, 1.0) / 1e3
        assert power_kw == pytest.approx(200.0, rel=0.05)

    def test_vectorised_loads(self):
        out = SwitchPowerModel().power_w(np.array([0.0, 0.5, 1.0]))
        np.testing.assert_allclose(out, [200.0, 225.0, 250.0])

    def test_bad_load_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchPowerModel().power_w(1.5)

    def test_loaded_below_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchPowerModel(idle_w=300.0, loaded_w=250.0)

    def test_zero_switches_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchPowerModel().fabric_power_w(0)
