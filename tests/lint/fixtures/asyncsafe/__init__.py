"""Async-safety fixtures: true/false-positive pairs for REP601/602/603."""
