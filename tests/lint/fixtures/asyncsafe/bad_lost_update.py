"""True positive: read self state, await, write the stale value back."""

import asyncio


class Counter:
    def __init__(self):
        self._count = 0

    async def incr(self):
        count = self._count
        await asyncio.sleep(0)
        self._count = count + 1
