"""True positive: the blocking primitive hides one sync call away.

``serve`` never blocks textually — the ``time.sleep`` lives in the
imported helper, so only call-graph reachability can see it.
"""

from asyncsafe.blocking_helpers import warm_cache


async def serve():
    cache = warm_cache()
    return cache
