"""True positive: a blocking primitive called directly inside a coroutine."""

import time


async def tick():
    time.sleep(0.1)
    return "ticked"
