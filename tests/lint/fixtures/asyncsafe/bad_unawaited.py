"""True positives: coroutines created and dropped on the floor."""

import asyncio


async def flush():
    await asyncio.sleep(0)


async def main():
    flush()
    asyncio.sleep(1.0)
