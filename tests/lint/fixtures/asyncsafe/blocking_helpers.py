"""Sync helpers: one blocks, one carries a sanctioned annotation."""

import time


def warm_cache():
    time.sleep(0.05)
    return {}


def sanctioned_pause():
    # lint: allow-blocking -- fixture: deliberate pause, callers accept it
    time.sleep(0.05)
    return {}
