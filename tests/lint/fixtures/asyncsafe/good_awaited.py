"""False-positive guard: every coroutine is awaited."""

import asyncio


async def flush():
    await asyncio.sleep(0)


async def main():
    await flush()
    await asyncio.sleep(1.0)
