"""False-positive guards: atomic updates and lock-held read-modify-writes."""

import asyncio


class Counter:
    def __init__(self):
        self._count = 0
        self._lock = asyncio.Lock()

    async def incr_atomic(self):
        await asyncio.sleep(0)
        self._count += 1

    async def incr_locked(self):
        async with self._lock:
            count = self._count
            await asyncio.sleep(0)
            self._count = count + 1
