"""False-positive guard: the reached helper's block is annotated away.

``sanctioned_pause`` carries ``# lint: allow-blocking`` at the primitive,
which must silence the derived REP601 at this async call site too.
"""

from asyncsafe.blocking_helpers import sanctioned_pause


async def serve():
    cache = sanctioned_pause()
    return cache
