"""False-positive guard: the async sleep is awaited, nothing blocks."""

import asyncio


async def tick():
    await asyncio.sleep(0.1)
    return "ticked"
