"""Interprocedural fixtures: unit flow across module boundaries."""
