"""Clean chain, stage 3: accounting derives energy from power and time."""

from crossmod.clean_facility import facility_power_kw


def window_energy_kwh(n_nodes, duration_hours):
    power_kw = facility_power_kw(n_nodes)
    return power_kw * duration_hours
