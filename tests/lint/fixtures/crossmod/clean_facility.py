"""Clean chain, stage 2: the facility aggregates node power, still kW."""

from crossmod.clean_node import node_power_kw

OVERHEAD_KW = 120.0


def facility_power_kw(n_nodes):
    power_kw = node_power_kw(n_nodes)
    return power_kw + OVERHEAD_KW
