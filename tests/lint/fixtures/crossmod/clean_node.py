"""Clean chain, stage 1: the node model returns kilowatts."""


def node_power_kw(n_nodes):
    return 0.35 * n_nodes
