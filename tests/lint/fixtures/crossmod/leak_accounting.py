"""Leak chain, stage 3: the kW value is silently treated as kWh.

The deliberate cross-module leak: only interprocedural propagation
(node -> facility -> accounting) can see that ``facility_draw`` carries
kilowatts into a kilowatt-hour slot.
"""

from crossmod.leak_facility import facility_draw


def month_energy_kwh(n_nodes):
    energy_kwh = facility_draw(n_nodes)
    return energy_kwh
