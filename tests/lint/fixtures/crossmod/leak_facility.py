"""Leak chain, stage 2: the suffix disappears but the unit does not.

``facility_draw`` has no unit suffix, so a per-file checker loses the trail
here; the signature table infers its return unit (kW) from the returned
call.
"""

from crossmod.leak_node import node_power_kw


def facility_draw(n_nodes):
    return node_power_kw(n_nodes)
