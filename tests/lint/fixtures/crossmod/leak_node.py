"""Leak chain, stage 1: kilowatts leave the node model."""


def node_power_kw(n_nodes):
    return 0.35 * n_nodes
