"""Signature-annotation fixtures: declaring and silencing units explicitly.

``grid_draw`` carries no suffix but declares its return unit; binding it to
an energy name (or passing it to an energy parameter) is caught only
through the annotation.  ``scale_factor_kw`` is the opposite case — a
misnamed legacy helper whose ``-> none`` annotation declares it unitless,
silencing what would otherwise be a false positive.
"""


def grid_draw(n_nodes):  # lint: signature(-> kw)
    return 0.35 * n_nodes


def scale_factor_kw(raw):  # lint: signature(-> none) -- dimensionless legacy ratio
    return raw * 2.0


def accumulate(total_kwh):
    return total_kwh


def bind_correctly(n_nodes):
    power_kw = grid_draw(n_nodes)
    return power_kw


def bind_wrongly(n_nodes):
    energy_kwh = grid_draw(n_nodes)
    return energy_kwh


def feed_wrong(n_nodes):
    return accumulate(grid_draw(n_nodes))


def silenced(n_nodes):
    factor = scale_factor_kw(n_nodes)
    return factor
