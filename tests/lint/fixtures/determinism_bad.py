"""Known-bad fixture for the determinism checker."""

import random
import time
from datetime import datetime

import numpy as np


def wall_clock() -> float:
    return time.time()  # REP201


def wall_clock_dt() -> object:
    return datetime.now()  # REP201


def stdlib_global_rng() -> float:
    return random.random()  # REP202


def numpy_legacy_rng() -> float:
    np.random.seed(0)  # REP202: hidden global state even when "seeded"
    return float(np.random.rand())  # REP202


def unseeded_generator() -> object:
    return np.random.default_rng()  # REP202
