"""Known-good fixture for the determinism checker."""

import numpy as np


def seeded_generator(seed: int) -> object:
    return np.random.default_rng(seed)  # explicit seed: fine


def generator_threading(rng: np.random.Generator) -> float:
    # The convention: stochastic code takes a Generator as data.
    return float(rng.normal(loc=0.0, scale=1.0))


def seed_sequences(seed: int) -> list:
    return np.random.SeedSequence(seed).spawn(4)


def annotated_exception() -> object:
    # lint: allow-unseeded -- reviewed: state is overwritten by the caller
    return np.random.default_rng()


def time_as_data(start_time_s: float, duration_s: float) -> float:
    # Model code takes time as data, never from the wall clock.
    return start_time_s + duration_s
