"""Known-bad fixture for the float-equality checker."""

import math


def computed_equality(ratio: float) -> bool:
    return ratio == 1.0  # REP301


def inequality(delta: float) -> bool:
    return delta != 0.0  # REP301


def special_values(year: float, x: float) -> bool:
    if year == float("inf"):  # REP301: use math.isinf
        return True
    return x == math.nan  # REP301: NaN never equals anything; use math.isnan
