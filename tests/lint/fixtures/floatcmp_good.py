"""Known-good fixture for the float-equality checker."""

import math


def tolerant_equality(ratio: float) -> bool:
    return math.isclose(ratio, 1.0, rel_tol=1e-9)


def special_value_predicates(year: float, x: float) -> bool:
    return math.isinf(year) or math.isnan(x)


def annotated_sentinel(fraction: float) -> bool:
    # A stored-never-computed config default is an exact sentinel.
    return fraction == 0.0  # lint: exact-float -- config sentinel, reviewed


def integer_comparisons(count: int) -> bool:
    # Integer equality is exact by nature; never flagged.
    return count == 0


def ordering_is_fine(value: float) -> bool:
    # Ordering comparisons against floats are well-defined.
    return value >= 1.0
