"""Known-bad fixture for the public-API checker: __all__ names a ghost."""

__all__ = ["real_function", "ghost_function", "GhostClass"]


def real_function() -> int:
    return 1
