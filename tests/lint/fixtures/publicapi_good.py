"""Known-good fixture for the public-API checker."""

import math as _math
from pathlib import Path

__all__ = ["CONSTANT", "Helper", "Path", "conditional", "real_function"]

CONSTANT = 3.0

if hasattr(_math, "isqrt"):
    def conditional() -> int:
        return 1
else:
    def conditional() -> int:
        return 0


def real_function() -> float:
    return _math.pi


class Helper:
    """A class counts as a definition."""
