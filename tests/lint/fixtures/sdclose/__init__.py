"""State-dict closure fixtures: cross-class round-trip bugs for REP403/404."""
