"""True positives: a checkpointed component that cannot round-trip.

``Feed`` only writes state (REP401, per-file); ``Holder`` checkpoints a
``Feed`` instance, which cross-module closure flags too (REP404).
"""


class Feed:
    def __init__(self):
        self._offset = 0

    def state_dict(self):
        return {"offset": self._offset}


class Holder:
    def __init__(self):
        self.feed = Feed()

    def state_dict(self):
        return {"feed": self.feed.state_dict()}

    def load_state_dict(self, state):
        self.feed.load_state_dict(state["feed"])
