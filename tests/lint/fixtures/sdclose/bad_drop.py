"""True positive: a snapshot component is read on load but never applied.

The key sets match (so REP402 stays silent); only component-level closure
sees that ``self.gauge`` is snapshot but never restored.
"""


class Gauge:
    def __init__(self):
        self._level = 0.0

    def state_dict(self):
        return {"level": self._level}

    def load_state_dict(self, state):
        self._level = state["level"]


class Panel:
    def __init__(self):
        self.gauge = Gauge()
        self._count = 0

    def state_dict(self):
        return {"gauge": self.gauge.state_dict(), "count": self._count}

    def load_state_dict(self, state):
        gauge_state = state["gauge"]  # noqa: F841 -- read, never applied
        self._count = state["count"]
