"""False-positive guard: reconstruction from state counts as restoring.

``Window.load_state_dict`` rebuilds ``self._acc`` via a ``restore``
classmethod instead of calling ``load_state_dict`` in place — the other
sanctioned restore idiom, used by the live processors.
"""


class Accumulator:
    def __init__(self):
        self._total = 0.0

    def state_dict(self):
        return {"total": self._total}

    def load_state_dict(self, state):
        self._total = state["total"]

    @classmethod
    def restore(cls, state):
        acc = cls()
        acc.load_state_dict(state)
        return acc


class Window:
    def __init__(self):
        self._acc = Accumulator()

    def state_dict(self):
        return {"acc": self._acc.state_dict()}

    def load_state_dict(self, state):
        self._acc = Accumulator.restore(state["acc"])
