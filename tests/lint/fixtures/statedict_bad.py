"""Known-bad fixture for the state-dict symmetry checker."""


class SaveOnly:
    """REP401: writes state it can never load back."""

    def __init__(self) -> None:
        self.count = 0

    def state_dict(self) -> dict:
        return {"count": self.count}


class LoadOnly:
    """REP401: the mirror image."""

    def __init__(self) -> None:
        self.count = 0

    def load_state_dict(self, state: dict) -> None:
        self.count = state["count"]


class KeyDrift:
    """REP402: writes 'total', reads 'count' and a key never written."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def state_dict(self) -> dict:
        return {"total": self.total, "count": self.count}

    def load_state_dict(self, state: dict) -> None:
        self.count = state["count"]
        self.total = state["grand_total"]
