"""Known-good fixture for the state-dict symmetry checker."""


class Symmetric:
    """Literal keys, perfectly mirrored; `.get` with a default also counts."""

    def __init__(self) -> None:
        self.count = 0
        self.label = ""

    def state_dict(self) -> dict:
        return {"count": self.count, "label": self.label}

    def load_state_dict(self, state: dict) -> None:
        self.count = state["count"]
        self.label = state.get("label", "")


class DynamicStateIsSkipped:
    """Slot-comprehension snapshots cannot be key-checked statically."""

    __slots__ = ("a", "b")

    def __init__(self) -> None:
        self.a = 0
        self.b = 0

    def state_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def load_state_dict(self, state: dict) -> None:
        for slot in self.__slots__:
            setattr(self, slot, state[slot])


class Stateless:
    """Classes without either method are out of scope."""

    def work(self) -> int:
        return 42
