"""Known-bad fixture for the units checker: every block is a true positive."""


def mixes_dimensions(power_kw: float, energy_kwh: float) -> float:
    # REP102: power + energy
    return power_kw + energy_kwh


def mixes_scales(power_kw: float, limit_mw: float) -> bool:
    # REP102: same dimension, different scale
    return power_kw > limit_mw


def compares_intensity_to_price(ci_g_per_kwh: float, price_gbp_per_kwh: float) -> bool:
    # REP102: carbon intensity vs price
    return ci_g_per_kwh < price_gbp_per_kwh


def near_miss_suffix(cabinet_watts: float) -> float:
    # REP101: '_watts' is not canonical ('_w' is)
    total_secs = 3600.0  # REP101: '_secs' is not canonical ('_s' is)
    return cabinet_watts + total_secs  # no REP102: unknown suffixes stay silent
