"""Known-good fixture for the units checker: idiomatic code, zero findings."""

SECONDS_PER_DAY = 86_400.0  # same-dimension compound: a conversion constant


def clean_arithmetic(power_kw: float, other_kw: float, duration_s: float) -> float:
    # Same suffix adds fine; multiplication builds derived units freely.
    total_kw = power_kw + other_kw
    energy_kwh = total_kw * duration_s / 3600.0
    return energy_kwh


def aliases_are_compatible(wait_seconds: float, duration_s: float) -> float:
    # '_seconds' and '_s' are exact aliases in the registry.
    return wait_seconds + duration_s


def conversion_constants(submit_time_s: float) -> bool:
    # SECONDS_PER_DAY's *value* is seconds; comparing to '_s' is fine.
    return submit_time_s < SECONDS_PER_DAY


def ambiguous_names_stay_silent(v_min: float, delta_t: float, alpha_c: float) -> float:
    # '_min', '_t' and non-thermal '_c' are programming vocabulary, not units.
    return v_min + delta_t + alpha_c


def unknown_suffixes_stay_silent(n_nodes: int, score_x: float) -> float:
    # Operands without a recognised unit are never guessed at.
    return n_nodes + score_x
