"""Suppression-annotation parsing and the units-registry sync guarantee."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint.annotations import ALL_CODES, is_suppressed, parse_suppressions
from repro.lint.unitspec import suffix_of, validate_registry_against_units_module

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_alias_expands_to_codes() -> None:
    source = "x = a == b  # lint: exact-float\n"
    suppressions = parse_suppressions(source)
    assert suppressions == {1: {"REP301"}}


def test_reason_suffix_is_ignored() -> None:
    source = "x = a == b  # lint: exact-float -- reviewed, config sentinel\n"
    assert parse_suppressions(source) == {1: {"REP301"}}


def test_standalone_comment_covers_next_statement() -> None:
    source = (
        "# lint: allow-unseeded -- state restored below\n"
        "\n"
        "rng = np.random.default_rng()\n"
    )
    suppressions = parse_suppressions(source)
    assert is_suppressed(suppressions, 3, "REP202")
    assert not is_suppressed(suppressions, 1, "REP202")


def test_explicit_disable_list() -> None:
    source = "y = f()  # lint: disable=REP101,REP301\n"
    assert parse_suppressions(source) == {1: {"REP101", "REP301"}}


def test_bare_disable_suppresses_everything() -> None:
    source = "y = f()  # lint: disable\n"
    suppressions = parse_suppressions(source)
    assert ALL_CODES in suppressions[1]
    assert is_suppressed(suppressions, 1, "REP402")


def test_unknown_alias_is_a_loud_error() -> None:
    """A typo'd annotation must not silently suppress nothing."""
    with pytest.raises(LintError, match="allow-everything"):
        parse_suppressions("x = 1  # lint: allow-everything\n")


def test_suffix_registry_covers_units_module() -> None:
    """Every unit token spelled in repro/units.py must be in the lint table.

    This is the sync contract: adding a converter like ``mj_to_kwh`` to
    units.py without teaching the linter its ``_mj`` suffix raises inside
    :func:`validate_registry_against_units_module` and fails this test.
    """
    derived = validate_registry_against_units_module(REPO_ROOT)
    assert {"kwh", "kw", "tonnes"} <= derived


def test_same_dimension_conversion_constants_read_as_numerator() -> None:
    seconds = suffix_of("SECONDS_PER_DAY")
    plain = suffix_of("duration_seconds")
    assert seconds is not None and plain is not None
    assert seconds.dimension == plain.dimension == "time"
    assert seconds.scale == plain.scale


def test_ambiguous_single_letters_are_not_units() -> None:
    assert suffix_of("v_min") is None
    assert suffix_of("n_max") is None
    assert suffix_of("delta_t") is None
