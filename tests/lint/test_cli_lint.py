"""CLI-level tests: JSON contract, exit codes, baseline workflow, dispatch."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint.baseline import Baseline
from repro.lint.cli import lint_main
from repro.lint.engine import run_lint
from repro.lint.registry import all_codes

FIXTURES = Path(__file__).parent / "fixtures"

BAD_SOURCE = '''\
def computed(ratio: float) -> bool:
    return ratio == 1.0
'''

CLEAN_SOURCE = '''\
import math


def computed(ratio: float) -> bool:
    return math.isclose(ratio, 1.0)
'''


@pytest.fixture()
def mini_project(tmp_path: Path) -> Path:
    """A tiny standalone tree so CLI runs don't depend on the real repo."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'mini'\n")
    pkg = tmp_path / "src" / "mini"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "ratios.py").write_text(BAD_SOURCE)
    return tmp_path


def test_json_output_is_valid_and_stable(capsys, mini_project: Path) -> None:
    argv = [str(mini_project / "src"), "--format", "json", "--no-baseline"]
    assert lint_main(argv) == 1
    first = capsys.readouterr().out
    assert lint_main(argv) == 1
    second = capsys.readouterr().out
    assert first == second

    payload = json.loads(first)
    assert payload["version"] == 1
    assert payload["exit_code"] == 1
    assert payload["counts"] == {"REP301": 1}
    assert len(payload["new"]) == 1
    finding = payload["new"][0]
    assert set(finding) >= {"path", "line", "col", "code", "message", "snippet"}
    assert finding["code"] == "REP301"
    assert finding["path"].endswith("ratios.py")


def test_json_round_trips_through_report_dict() -> None:
    report = run_lint([str(FIXTURES / "floatcmp_bad.py")], root=FIXTURES)
    assert json.loads(json.dumps(report.to_dict())) == report.to_dict()


def test_text_output_mentions_counts(capsys) -> None:
    assert lint_main([str(FIXTURES / "units_bad.py"), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "REP101" in out and "REP102" in out
    assert "new finding(s)" in out


def test_clean_run_exits_zero(capsys, mini_project: Path) -> None:
    (mini_project / "src" / "mini" / "ratios.py").write_text(CLEAN_SOURCE)
    assert lint_main([str(mini_project / "src")]) == 0
    assert "clean" in capsys.readouterr().out


def test_unknown_code_is_a_usage_error(capsys) -> None:
    exit_code = lint_main(
        [str(FIXTURES / "units_good.py"), "--select", "REP999", "--no-baseline"]
    )
    assert exit_code == 2
    assert "REP999" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(tmp_path: Path, capsys) -> None:
    assert lint_main([str(tmp_path / "does-not-exist")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_list_checks_covers_every_code(capsys) -> None:
    assert lint_main(["--list-checks"]) == 0
    out = capsys.readouterr().out
    for code in all_codes():
        assert code in out


def test_baseline_workflow_grandfathers_then_ratchets(
    capsys, mini_project: Path
) -> None:
    src = str(mini_project / "src")

    # 1. Grandfather the existing debt.
    assert lint_main([src, "--write-baseline"]) == 0
    baseline_path = mini_project / "lint-baseline.json"
    assert baseline_path.is_file()
    capsys.readouterr()

    # 2. Same tree is now green: the finding is baselined, not new.
    assert lint_main([src]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out

    # 3. A NEW violation still fails even with the baseline in place.
    (mini_project / "src" / "mini" / "fresh.py").write_text(
        "def newer(x: float) -> bool:\n    return x != 0.5\n"
    )
    assert lint_main([src]) == 1
    assert "REP301" in capsys.readouterr().out

    # 4. Fixing the original debt surfaces the stale baseline entry.
    (mini_project / "src" / "mini" / "fresh.py").unlink()
    (mini_project / "src" / "mini" / "ratios.py").write_text(CLEAN_SOURCE)
    assert lint_main([src]) == 0
    assert "stale" in capsys.readouterr().out

    # 5. --no-baseline ignores the file entirely.
    (mini_project / "src" / "mini" / "ratios.py").write_text(BAD_SOURCE)
    assert lint_main([src, "--no-baseline"]) == 1


def test_baseline_survives_line_renumbering(mini_project: Path) -> None:
    src = str(mini_project / "src")
    assert lint_main([src, "--write-baseline"]) == 0
    # Shift the offending line down: the fingerprint must still match.
    path = mini_project / "src" / "mini" / "ratios.py"
    path.write_text("# a new leading comment\n" + BAD_SOURCE)
    assert lint_main([src]) == 0


def test_baseline_rejects_corrupt_file(mini_project: Path, capsys) -> None:
    baseline_path = mini_project / "lint-baseline.json"
    baseline_path.write_text("{not json")
    assert lint_main([str(mini_project / "src")]) == 2
    assert "baseline" in capsys.readouterr().err.lower()


def test_baseline_dump_is_deterministic(tmp_path: Path) -> None:
    report = run_lint([str(FIXTURES / "units_bad.py")], root=FIXTURES)
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    Baseline.from_findings(report.findings).dump(a)
    Baseline.from_findings(list(reversed(report.findings))).dump(b)
    assert a.read_text() == b.read_text()
    assert a.read_text().endswith("\n")


def test_repro_cli_dispatches_lint(capsys) -> None:
    exit_code = repro_main(
        ["lint", str(FIXTURES / "floatcmp_good.py"), "--no-baseline"]
    )
    assert exit_code == 0
    assert "clean" in capsys.readouterr().out
