"""Fixture-driven contract tests for every lint checker.

Each checker gets one known-bad fixture (every finding asserted by exact
``(line, code)``) and one known-good fixture (zero findings — the
false-positive guard).  Fixtures are linted with ``root=`` pointing at the
fixtures directory itself so their relative paths are bare filenames: that
bypasses the ``tests/`` scoping of the float-equality checker and the
entry-point allowlist of the determinism checker, exercising the checkers
proper rather than their path filters.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.engine import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str, **kwargs):
    report = run_lint([f"{name}.py"], root=FIXTURES, **kwargs)
    assert not report.parse_errors, report.parse_errors
    return report


def locations(report) -> list[tuple[int, str]]:
    return [(f.line, f.code) for f in report.new_findings]


BAD_EXPECTATIONS = {
    "units_bad": [
        (6, "REP102"),  # power + energy
        (11, "REP102"),  # kW compared against MW
        (16, "REP102"),  # carbon intensity vs price
        (19, "REP101"),  # _watts near-miss (parameter)
        (21, "REP101"),  # _secs near-miss (assignment)
        (22, "REP101"),  # both near-miss names used on one line
        (22, "REP101"),
    ],
    "determinism_bad": [
        (11, "REP201"),  # time.time()
        (15, "REP201"),  # datetime.now()
        (19, "REP202"),  # random.random()
        (23, "REP202"),  # np.random.seed()
        (24, "REP202"),  # np.random.rand()
        (28, "REP202"),  # unseeded default_rng()
    ],
    "floatcmp_bad": [
        (7, "REP301"),  # ratio == 1.0
        (11, "REP301"),  # delta != 0.0
        (15, "REP301"),  # year == float("inf")
        (17, "REP301"),  # x == math.nan
    ],
    "statedict_bad": [
        (10, "REP401"),  # state_dict with no load_state_dict
        (20, "REP401"),  # load_state_dict with no state_dict
        (34, "REP402"),  # written/read key sets drift
    ],
    "publicapi_bad": [
        (3, "REP501"),  # ghost_function
        (3, "REP501"),  # GhostClass
    ],
}

GOOD_FIXTURES = [
    "units_good",
    "determinism_good",
    "floatcmp_good",
    "statedict_good",
    "publicapi_good",
]


@pytest.mark.parametrize("name", sorted(BAD_EXPECTATIONS))
def test_bad_fixture_findings_are_exact(name: str) -> None:
    report = lint_fixture(name)
    assert locations(report) == BAD_EXPECTATIONS[name]


@pytest.mark.parametrize("name", GOOD_FIXTURES)
def test_good_fixture_is_clean(name: str) -> None:
    report = lint_fixture(name)
    assert locations(report) == []
    assert report.exit_code == 0


def test_bad_fixtures_fail_good_fixtures_pass() -> None:
    for name in BAD_EXPECTATIONS:
        assert lint_fixture(name).exit_code == 1, name
    for name in GOOD_FIXTURES:
        assert lint_fixture(name).exit_code == 0, name


def test_select_narrows_to_one_code_family() -> None:
    report = lint_fixture("units_bad", select=["REP102"])
    assert {code for _, code in locations(report)} == {"REP102"}
    assert len(report.new_findings) == 3


def test_select_by_prefix_expands() -> None:
    report = lint_fixture("units_bad", select=["REP1"])
    assert {code for _, code in locations(report)} == {"REP101", "REP102"}


def test_ignore_removes_a_code() -> None:
    report = lint_fixture("determinism_bad", ignore=["REP201"])
    assert {code for _, code in locations(report)} == {"REP202"}


def test_near_miss_messages_name_the_canonical_suffix() -> None:
    report = lint_fixture("units_bad", select=["REP101"])
    messages = " ".join(f.message for f in report.new_findings)
    assert "_w" in messages and "_s" in messages


def test_rep402_names_the_drifting_keys() -> None:
    report = lint_fixture("statedict_bad", select=["REP402"])
    (finding,) = report.new_findings
    assert "grand_total" in finding.message


def test_rep501_names_the_ghosts() -> None:
    report = lint_fixture("publicapi_bad")
    messages = " ".join(f.message for f in report.new_findings)
    assert "ghost_function" in messages and "GhostClass" in messages


def test_findings_are_sorted_and_deterministic() -> None:
    first = lint_fixture("units_bad")
    second = lint_fixture("units_bad")
    assert [f.to_dict() for f in first.new_findings] == [
        f.to_dict() for f in second.new_findings
    ]
    assert first.new_findings == sorted(first.new_findings)
