"""Reporting surface tests: scope fingerprints, burn-down rule, SARIF, explain."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.lint.baseline import Baseline
from repro.lint.cli import lint_main
from repro.lint.engine import run_lint
from repro.lint.explain import EXPLANATIONS, explain
from repro.lint.registry import all_codes

FIXTURES = Path(__file__).parent / "fixtures"

VIOLATION = '''\
def check(ratio: float) -> bool:
    return ratio == 1.0
'''

VIOLATION_SHIFTED = '''\
def helper() -> int:
    return 3


def check(ratio: float) -> bool:
    return ratio == 1.0
'''

VIOLATION_RENAMED = '''\
def verify(ratio: float) -> bool:
    return ratio == 1.0
'''


@pytest.fixture()
def mini_project(tmp_path: Path) -> Path:
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'mini'\n")
    pkg = tmp_path / "src" / "mini"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "ratios.py").write_text(VIOLATION)
    return tmp_path


# -- scope-keyed fingerprints (baseline v2) ----------------------------------


def test_fingerprint_survives_moving_the_enclosing_function(
    mini_project: Path,
) -> None:
    src = str(mini_project / "src")
    assert lint_main([src, "--write-baseline"]) == 0
    # Unrelated code above shifts the finding's line; the fingerprint is
    # keyed on the enclosing scope and snippet, so it stays baselined.
    (mini_project / "src" / "mini" / "ratios.py").write_text(VIOLATION_SHIFTED)
    assert lint_main([src]) == 0


def test_fingerprint_changes_when_enclosing_scope_changes(
    mini_project: Path,
) -> None:
    src = str(mini_project / "src")
    assert lint_main([src, "--write-baseline"]) == 0
    # Same snippet, different enclosing function: that is a different
    # finding (the old one was fixed, a new one appeared) — it must fail.
    (mini_project / "src" / "mini" / "ratios.py").write_text(VIOLATION_RENAMED)
    assert lint_main([src]) == 1


def test_findings_carry_their_enclosing_scope() -> None:
    report = run_lint(["floatcmp_bad.py"], root=FIXTURES)
    scopes = {f.scope for f in report.new_findings}
    assert scopes and "<module>" not in scopes  # all inside functions
    assert all(f.fingerprint for f in report.new_findings)


# -- burn-down rule ----------------------------------------------------------


def test_growth_vs_flags_only_new_fingerprints() -> None:
    report = run_lint(["floatcmp_bad.py"], root=FIXTURES)
    findings = report.new_findings
    assert len(findings) >= 2
    older = Baseline.from_findings(findings[:1])
    newer = Baseline.from_findings(findings)
    grown = newer.growth_vs(older)
    assert grown == sorted(f.fingerprint for f in findings[1:])
    assert older.growth_vs(newer) == []  # shrinking is always fine


def test_check_baseline_growth_cli(
    capsys, mini_project: Path, tmp_path: Path
) -> None:
    src = str(mini_project / "src")
    assert lint_main([src, "--write-baseline"]) == 0
    baseline = mini_project / "lint-baseline.json"
    old_copy = tmp_path / "old-baseline.json"
    shutil.copy(baseline, old_copy)
    capsys.readouterr()

    # Identical baselines: no growth.
    assert lint_main(
        ["--check-baseline-growth", str(old_copy), str(baseline)]
    ) == 0
    assert "baseline ok" in capsys.readouterr().out

    # A second violation grows the baseline: burn-down rule fails it.
    (mini_project / "src" / "mini" / "fresh.py").write_text(
        "def newer(x: float) -> bool:\n    return x != 0.5\n"
    )
    assert lint_main([src, "--write-baseline"]) == 0
    capsys.readouterr()
    assert lint_main(
        ["--check-baseline-growth", str(old_copy), str(baseline)]
    ) == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out

    # Shrinking back (old had more) is allowed.
    assert lint_main(
        ["--check-baseline-growth", str(baseline), str(old_copy)]
    ) == 0


def test_check_baseline_growth_missing_files_are_empty(
    capsys, tmp_path: Path
) -> None:
    assert lint_main(
        [
            "--check-baseline-growth",
            str(tmp_path / "absent-old.json"),
            str(tmp_path / "absent-new.json"),
        ]
    ) == 0
    assert "baseline ok" in capsys.readouterr().out


# -- SARIF output ------------------------------------------------------------


def test_sarif_output_structure(capsys, mini_project: Path) -> None:
    assert lint_main(
        [str(mini_project / "src"), "--no-baseline", "--format", "sarif"]
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    (run,) = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = {rule["id"] for rule in driver["rules"]}
    assert set(all_codes()) <= rule_ids
    results = run["results"]
    assert results
    for result in results:
        assert result["ruleId"].startswith("REP")
        assert result["level"] == "error"
        assert result["partialFingerprints"]["reproLint/v2"]
        (location,) = result["locations"]
        region = location["physicalLocation"]["region"]
        assert region["startLine"] >= 1


def test_sarif_marks_baselined_findings_as_suppressed(
    capsys, mini_project: Path
) -> None:
    src = str(mini_project / "src")
    assert lint_main([src, "--write-baseline"]) == 0
    capsys.readouterr()
    assert lint_main([src, "--format", "sarif"]) == 0
    payload = json.loads(capsys.readouterr().out)
    (result,) = payload["runs"][0]["results"]
    assert result["level"] == "note"
    assert result["suppressions"][0]["kind"] == "external"


# -- --explain ---------------------------------------------------------------


def test_explain_covers_every_registered_code() -> None:
    expected = set(all_codes()) | {"REP000"}
    assert expected <= set(EXPLANATIONS)
    for code in sorted(expected):
        text = explain(code)
        assert code in text and "Contract:" in text and "Fix:" in text


def test_explain_cli_prints_contract(capsys) -> None:
    assert lint_main(["--explain", "REP601"]) == 0
    out = capsys.readouterr().out
    assert "REP601" in out and "Contract:" in out


def test_explain_unknown_code_is_usage_error(capsys) -> None:
    assert lint_main(["--explain", "REP999"]) == 2
    assert "REP999" in capsys.readouterr().err
