"""The linter's strongest test: the shipped tree must pass its own checks."""

from __future__ import annotations

from pathlib import Path

from repro.lint.engine import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_shipped_tree_is_lint_clean() -> None:
    report = run_lint(["src", "tests"], root=REPO_ROOT)
    assert not report.parse_errors, [f.render() for f in report.parse_errors]
    assert report.new_findings == [], "\n".join(
        f.render() for f in report.new_findings
    )
    assert report.exit_code == 0
    # Sanity: the run actually covered the tree, not an empty glob.
    assert report.files_checked > 100


def test_linter_lints_itself() -> None:
    report = run_lint(["src/repro/lint"], root=REPO_ROOT)
    assert report.new_findings == [], "\n".join(
        f.render() for f in report.new_findings
    )
