"""Whole-program lint tests: fixtures, call graph, and unit signatures.

Cross-module fixtures live under ``tests/lint/fixtures/crossmod``,
``asyncsafe``, and ``sdclose``; ``collect_files`` deliberately skips the
fixtures tree, so every group is linted with an explicit file list and
``root=`` pointing at the fixtures directory (relative paths like
``crossmod/leak_node.py`` become importable module names).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint.context import FileContext, ProjectContext
from repro.lint.engine import run_lint
from repro.lint.signatures import (
    SignatureTable,
    parse_signature_spec,
    resolve_unit_token,
)

FIXTURES = Path(__file__).parent / "fixtures"

CLEAN_CHAIN = [
    "crossmod/clean_node.py",
    "crossmod/clean_facility.py",
    "crossmod/clean_accounting.py",
]
LEAK_CHAIN = [
    "crossmod/leak_node.py",
    "crossmod/leak_facility.py",
    "crossmod/leak_accounting.py",
]
ASYNCSAFE = sorted(
    f"asyncsafe/{p.name}" for p in (FIXTURES / "asyncsafe").glob("*.py")
)
SDCLOSE = sorted(
    f"sdclose/{p.name}" for p in (FIXTURES / "sdclose").glob("*.py")
)


def lint_group(files: list[str]):
    report = run_lint(files, root=FIXTURES)
    assert not report.parse_errors, report.parse_errors
    return report


def located(report) -> list[tuple[str, int, str]]:
    return [(f.path, f.line, f.code) for f in report.new_findings]


def project_over(files: list[str]) -> ProjectContext:
    contexts = [FileContext.from_path(FIXTURES / rel, FIXTURES) for rel in files]
    return ProjectContext(root=FIXTURES, files=contexts)


# -- interprocedural unit flow (REP103/REP104) ------------------------------


def test_clean_chain_has_no_findings() -> None:
    assert located(lint_group(CLEAN_CHAIN)) == []


def test_three_module_kw_kwh_leak_is_caught() -> None:
    report = lint_group(LEAK_CHAIN)
    assert located(report) == [("crossmod/leak_accounting.py", 12, "REP104")]
    (finding,) = report.new_findings
    assert "_kw" in finding.message and "_kwh" in finding.message
    assert "facility_draw" in finding.message


def test_leak_needs_the_whole_chain() -> None:
    # Linting the leaky file alone gives per-file knowledge only: the
    # callee is unresolvable, so interprocedural checkers stay silent.
    assert located(lint_group(["crossmod/leak_accounting.py"])) == []


def test_signature_annotation_declares_and_silences_units() -> None:
    report = lint_group(["crossmod/sig_override.py"])
    assert located(report) == [
        ("crossmod/sig_override.py", 29, "REP104"),
        ("crossmod/sig_override.py", 34, "REP103"),
    ]
    rep103 = report.new_findings[1]
    assert "total_kwh" in rep103.message and "_kw" in rep103.message


# -- async safety (REP601/REP602/REP603) ------------------------------------


def test_async_safety_fixture_findings_are_exact() -> None:
    assert located(lint_group(ASYNCSAFE)) == [
        ("asyncsafe/bad_lost_update.py", 13, "REP603"),
        ("asyncsafe/bad_reach.py", 11, "REP601"),
        ("asyncsafe/bad_sleep.py", 7, "REP601"),
        ("asyncsafe/bad_unawaited.py", 11, "REP602"),
        ("asyncsafe/bad_unawaited.py", 12, "REP602"),
    ]


def test_time_sleep_in_async_def_is_rep601() -> None:
    report = lint_group(["asyncsafe/bad_sleep.py"])
    assert located(report) == [("asyncsafe/bad_sleep.py", 7, "REP601")]
    (finding,) = report.new_findings
    assert "time.sleep" in finding.message


def test_reached_blocking_primitive_reports_the_chain() -> None:
    report = lint_group(
        ["asyncsafe/bad_reach.py", "asyncsafe/blocking_helpers.py"]
    )
    (finding,) = report.new_findings
    assert finding.code == "REP601"
    assert "warm_cache" in finding.message
    assert "time.sleep" in finding.message


def test_allow_blocking_in_sync_helper_silences_async_call_site() -> None:
    report = lint_group(
        ["asyncsafe/good_reach.py", "asyncsafe/blocking_helpers.py"]
    )
    assert located(report) == []


@pytest.mark.parametrize(
    "name",
    ["good_sleep", "good_awaited", "good_lost_update"],
)
def test_async_good_fixtures_are_clean(name: str) -> None:
    assert located(lint_group([f"asyncsafe/{name}.py"])) == []


# -- state-dict closure (REP403/REP404) -------------------------------------


def test_state_dict_closure_fixture_findings_are_exact() -> None:
    assert located(lint_group(SDCLOSE)) == [
        ("sdclose/bad_component.py", 12, "REP401"),
        ("sdclose/bad_component.py", 24, "REP404"),
        ("sdclose/bad_drop.py", 27, "REP403"),
    ]


def test_rep403_names_the_dropped_component() -> None:
    report = lint_group(["sdclose/bad_drop.py"])
    (finding,) = report.new_findings
    assert finding.code == "REP403"
    assert "self.gauge" in finding.message


def test_rep404_names_the_incomplete_component_class() -> None:
    report = lint_group(["sdclose/bad_component.py"])
    rep404 = [f for f in report.new_findings if f.code == "REP404"]
    (finding,) = rep404
    assert "Feed" in finding.message
    assert "load_state_dict" in finding.message


def test_reconstruction_idiom_counts_as_restoring() -> None:
    assert located(lint_group(["sdclose/good_closure.py"])) == []


# -- project graph -----------------------------------------------------------


def test_graph_resolves_cross_module_calls() -> None:
    graph = project_over(LEAK_CHAIN).graph()
    assert "crossmod.leak_facility.facility_draw" in graph.functions
    assert "crossmod.leak_node.node_power_kw" in graph.functions


def test_sync_reach_finds_the_blocking_helper() -> None:
    graph = project_over(
        ["asyncsafe/bad_reach.py", "asyncsafe/blocking_helpers.py"]
    ).graph()
    reach = graph.sync_reach("asyncsafe.bad_reach.serve")
    assert "asyncsafe.blocking_helpers.warm_cache" in reach


def test_class_has_method_walks_and_never_guesses() -> None:
    graph = project_over(SDCLOSE).graph()
    feed = "sdclose.bad_component.Feed"
    assert graph.class_has_method(feed, "state_dict")
    assert not graph.class_has_method(feed, "load_state_dict")
    # Unknown classes may define anything: assume yes, stay silent.
    assert graph.class_has_method("thirdparty.Unknown", "load_state_dict")


# -- signature table ---------------------------------------------------------


def test_parse_signature_spec_grammar() -> None:
    params, ret = parse_signature_spec("power: kw, duration: s -> kwh")
    assert params == {"power": "kw", "duration": "s"}
    assert ret == "kwh"
    assert parse_signature_spec("-> kw") == ({}, "kw")
    assert parse_signature_spec("x: none") == ({"x": "none"}, None)


@pytest.mark.parametrize("spec", ["power kw", "->", "power: -> kw"])
def test_malformed_signature_spec_is_loud(spec: str) -> None:
    with pytest.raises(LintError):
        parse_signature_spec(spec)


def test_unknown_unit_token_is_loud() -> None:
    with pytest.raises(LintError, match="unknown unit token"):
        resolve_unit_token("furlongs")
    assert resolve_unit_token("none") is None
    assert resolve_unit_token("kw") is not None


def test_return_unit_inference_follows_the_chain() -> None:
    table = project_over(LEAK_CHAIN).signature_table()
    sig = table.signature_of("crossmod.leak_facility.facility_draw")
    assert sig is not None
    assert sig.origin == "inferred"
    assert sig.returns is not None and sig.returns.token == "kw"


def test_annotation_outranks_suffix_and_inference() -> None:
    table = project_over(["crossmod/sig_override.py"]).signature_table()
    declared = table.signature_of("crossmod.sig_override.grid_draw")
    assert declared is not None and declared.origin == "annotation"
    assert declared.returns is not None and declared.returns.token == "kw"
    silenced = table.signature_of("crossmod.sig_override.scale_factor_kw")
    assert silenced is not None and silenced.origin == "annotation"
    assert silenced.returns is None and silenced.returns_unitless


def test_dangling_signature_directive_is_loud(tmp_path: Path) -> None:
    bad = tmp_path / "dangling.py"
    bad.write_text("X = 1\n# lint: signature(-> kw)\n")
    project = ProjectContext(
        root=tmp_path, files=[FileContext.from_path(bad, tmp_path)]
    )
    with pytest.raises(LintError, match="does not attach"):
        SignatureTable(project.graph())


def test_unknown_parameter_in_directive_is_loud(tmp_path: Path) -> None:
    bad = tmp_path / "unknown_param.py"
    bad.write_text("def f(a):  # lint: signature(b: kw)\n    return a\n")
    project = ProjectContext(
        root=tmp_path, files=[FileContext.from_path(bad, tmp_path)]
    )
    with pytest.raises(LintError, match="unknown parameter"):
        SignatureTable(project.graph())
