"""Event model and bounded-channel tests for the live pipeline."""

import numpy as np
import pytest

from repro.errors import MonitoringError, SeriesShapeError
from repro.live.channel import OVERFLOW_POLICIES, BoundedChannel
from repro.live.events import (
    CI_STREAM,
    POWER_STREAM,
    StreamBatch,
    merge_batches,
    series_batches,
)
from repro.telemetry.io import save_csv
from repro.telemetry.series import TimeSeries


def make_batch(stream=POWER_STREAM, t0=0.0, n=4, value=1.0):
    times = t0 + np.arange(n, dtype=float)
    return StreamBatch(stream, times, np.full(n, value))


class TestStreamBatch:
    def test_valid_batch(self):
        batch = make_batch(n=3)
        assert len(batch) == 3
        assert batch.t_start_s == 0.0
        assert batch.t_end_s == 2.0

    def test_nan_values_allowed(self):
        batch = StreamBatch(POWER_STREAM, np.array([0.0, 1.0]), np.array([np.nan, 2.0]))
        assert np.isnan(batch.values[0])

    def test_empty_rejected(self):
        with pytest.raises(SeriesShapeError):
            StreamBatch(POWER_STREAM, np.array([]), np.array([]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(SeriesShapeError):
            StreamBatch(POWER_STREAM, np.arange(3.0), np.ones(2))

    def test_2d_rejected(self):
        with pytest.raises(SeriesShapeError):
            StreamBatch(POWER_STREAM, np.zeros((2, 2)), np.zeros((2, 2)))

    def test_nonfinite_time_rejected(self):
        with pytest.raises(SeriesShapeError):
            StreamBatch(POWER_STREAM, np.array([0.0, np.inf]), np.ones(2))

    def test_non_increasing_times_rejected(self):
        with pytest.raises(SeriesShapeError):
            StreamBatch(POWER_STREAM, np.array([0.0, 1.0, 1.0]), np.ones(3))


class TestSeriesBatches:
    def test_series_reconstructs(self):
        series = TimeSeries(np.arange(100.0), np.arange(100.0) * 2.0)
        batches = list(series_batches(POWER_STREAM, series, batch_size=17))
        assert all(b.stream == POWER_STREAM for b in batches)
        times = np.concatenate([b.times_s for b in batches])
        values = np.concatenate([b.values for b in batches])
        np.testing.assert_array_equal(times, series.times_s)
        np.testing.assert_array_equal(values, series.values)

    def test_csv_source(self, tmp_path):
        series = TimeSeries(np.arange(10.0), np.ones(10))
        path = tmp_path / "cabinet.csv"
        save_csv(series, path)
        batches = list(series_batches(POWER_STREAM, path, batch_size=4))
        assert sum(len(b) for b in batches) == 10


class TestMergeBatches:
    def test_global_time_order(self):
        power = [make_batch(POWER_STREAM, t0=t, n=4) for t in (0.0, 10.0, 20.0)]
        ci = [make_batch(CI_STREAM, t0=t, n=4) for t in (5.0, 15.0)]
        merged = list(merge_batches(power, ci))
        starts = [b.t_start_s for b in merged]
        assert starts == sorted(starts)
        assert len(merged) == 5

    def test_within_stream_order_preserved(self):
        power = [make_batch(POWER_STREAM, t0=t, n=2) for t in (0.0, 4.0, 8.0)]
        merged = [b for b in merge_batches(power) if b.stream == POWER_STREAM]
        assert [b.t_start_s for b in merged] == [0.0, 4.0, 8.0]

    def test_backwards_stream_rejected(self):
        power = [make_batch(POWER_STREAM, t0=10.0), make_batch(POWER_STREAM, t0=0.0)]
        with pytest.raises(MonitoringError):
            list(merge_batches(power))

    def test_empty_sources(self):
        assert list(merge_batches([], [])) == []

    def test_boundary_duplicate_timestamp_rejected(self):
        """A batch starting exactly at the previous batch's end timestamp
        would silently duplicate that timestamp — regression for the seam
        case the old `<` check let through."""
        first = make_batch(POWER_STREAM, t0=0.0, n=4)  # ends at t=3
        duplicate_seam = make_batch(POWER_STREAM, t0=3.0, n=4)
        with pytest.raises(MonitoringError, match="duplicates timestamp"):
            list(merge_batches([first, duplicate_seam]))

    def test_adjacent_but_disjoint_batches_accepted(self):
        """Starting strictly after the previous end is fine."""
        batches = [make_batch(POWER_STREAM, t0=0.0, n=4), make_batch(POWER_STREAM, t0=4.0, n=4)]
        merged = list(merge_batches(batches))
        times = np.concatenate([b.times_s for b in merged])
        assert len(np.unique(times)) == len(times) == 8

    def test_non_strict_mode_passes_faulty_flow_through(self):
        """strict=False (supervisor mode) delivers everything unchecked —
        duplicates and rewinds included — for downstream dead-lettering."""
        batches = [
            make_batch(POWER_STREAM, t0=0.0, n=4),
            make_batch(POWER_STREAM, t0=3.0, n=4),  # boundary duplicate
            make_batch(POWER_STREAM, t0=1.0, n=2),  # full rewind
        ]
        merged = list(merge_batches(batches, strict=False))
        assert len(merged) == 3


class TestBoundedChannel:
    def test_fifo_roundtrip(self):
        channel = BoundedChannel("power", capacity_samples=100)
        first, second = make_batch(t0=0.0), make_batch(t0=10.0)
        assert channel.put(first) and channel.put(second)
        assert channel.get() is first
        assert channel.get() is second
        assert channel.get() is None

    def test_accounting(self):
        channel = BoundedChannel("power", capacity_samples=100)
        channel.put(make_batch(n=7))
        channel.put(make_batch(t0=10.0, n=5))
        assert channel.offered_samples == 12
        assert channel.accepted_samples == 12
        assert channel.dropped_samples == 0
        assert channel.depth_samples == 12
        assert channel.high_watermark_samples == 12
        channel.get()
        assert channel.depth_samples == 5
        assert channel.high_watermark_samples == 12  # watermark never recedes

    def test_drop_oldest_evicts_history(self):
        channel = BoundedChannel("power", capacity_samples=8, policy="drop_oldest")
        channel.put(make_batch(t0=0.0, n=4, value=1.0))
        channel.put(make_batch(t0=10.0, n=4, value=2.0))
        assert not channel.put(make_batch(t0=20.0, n=4, value=3.0))  # sheds oldest
        assert channel.dropped_samples == 4
        assert channel.get().values[0] == 2.0  # oldest survivor is batch 2

    def test_drop_newest_refuses_incoming(self):
        channel = BoundedChannel("power", capacity_samples=8, policy="drop_newest")
        channel.put(make_batch(t0=0.0, n=4, value=1.0))
        channel.put(make_batch(t0=10.0, n=4, value=2.0))
        assert not channel.put(make_batch(t0=20.0, n=4, value=3.0))
        assert channel.dropped_samples == 4
        assert channel.get().values[0] == 1.0  # history kept contiguous

    def test_oversized_batch_shed_whole(self):
        channel = BoundedChannel("power", capacity_samples=3)
        assert not channel.put(make_batch(n=5))
        assert channel.dropped_samples == 5
        assert channel.depth_samples == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(MonitoringError):
            BoundedChannel("power", capacity_samples=0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(MonitoringError):
            BoundedChannel("power", policy="block")

    def test_policy_registry(self):
        assert OVERFLOW_POLICIES == ("drop_oldest", "drop_newest")
