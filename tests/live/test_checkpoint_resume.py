"""Checkpoint/resume tests: alert serialisation round-trips, checkpoint
file error paths, pipeline snapshot validation, and the acceptance
property — a killed-and-resumed monitor is bit-identical to one that was
never interrupted."""

import json
import math

import numpy as np
import pytest

from repro.core.regimes import OptimisationTarget, Regime
from repro.errors import CheckpointError
from repro.live.advisor import InterventionAdvisor
from repro.live.alerts import (
    AdviceAlert,
    Alert,
    ChangePointAlert,
    DataGapAlert,
    DeadLetterAlert,
    DegradedModeAlert,
    ProcessorCrashAlert,
    Recommendation,
    RegimeChangeAlert,
    RollupAlert,
)
from repro.live.checkpoint import (
    CHECKPOINT_VERSION,
    alert_from_dict,
    alert_to_dict,
    load_checkpoint,
    save_checkpoint,
)
from repro.live.cusum import OnlineCusum
from repro.live.events import CI_STREAM, POWER_STREAM, StreamBatch
from repro.live.monitor import build_monitor
from repro.live.processors import WindowedRollup
from repro.live.regime import RegimeTracker
from repro.live.replay import build_scenario, scenario_sources
from repro.live.supervisor import SupervisedPipeline, SupervisorConfig

SAMPLE_ALERTS = [
    Alert(time_s=10.0, stream=POWER_STREAM),
    RollupAlert(
        time_s=86400.0,
        stream=POWER_STREAM,
        window_start_s=0.0,
        window_end_s=86400.0,
        n_samples=96,
        n_valid=90,
        mean=3220.0,
        std=18.5,
        minimum=3150.0,
        maximum=3290.0,
        quantiles=((0.05, 3160.0), (0.95, 3280.0)),
    ),
    ChangePointAlert(
        time_s=5000.0,
        stream=POWER_STREAM,
        onset_time_s=4200.0,
        level_before=3220.0,
        level_after_estimate=3010.0,
        significance=12.5,
        direction=-1,
    ),
    RegimeChangeAlert(
        time_s=7200.0,
        stream=CI_STREAM,
        previous=None,
        regime=Regime.BALANCED,
        ci_g_per_kwh=55.0,
    ),
    RegimeChangeAlert(
        time_s=9000.0,
        stream=CI_STREAM,
        previous=Regime.BALANCED,
        regime=Regime.SCOPE2_DOMINATED,
        ci_g_per_kwh=180.0,
    ),
    AdviceAlert(
        time_s=9100.0,
        stream=CI_STREAM,
        regime=Regime.SCOPE2_DOMINATED,
        target=OptimisationTarget.MAXIMISE_ENERGY_EFFICIENCY,
        recommendations=(
            Recommendation("cap-frequency", "cap CPU frequency", -480.0, 1600.0),
        ),
        note="grid is dirty",
        confidence="degraded",
    ),
    DataGapAlert(
        time_s=4.0 * 3600,
        stream=CI_STREAM,
        last_seen_s=3600.0,
        gap_s=3.0 * 3600,
        recovered=False,
    ),
    ProcessorCrashAlert(
        time_s=3600.0,
        stream=POWER_STREAM,
        processor="power_kw:OnlineCusum",
        error="ValueError: boom",
        crashes=2,
        retry_at_s=10800.0,
        quarantined=False,
    ),
    DeadLetterAlert(
        time_s=1800.0,
        stream=POWER_STREAM,
        reason="batch rewinds admitted watermark",
        n_samples=64,
        t_start_s=0.0,
        t_end_s=900.0,
    ),
    DegradedModeAlert(
        time_s=5.0 * 3600,
        stream="advisor",
        entered=True,
        stale_streams=(CI_STREAM,),
    ),
]


class TestAlertSerialisation:
    @pytest.mark.parametrize(
        "alert", SAMPLE_ALERTS, ids=lambda a: type(a).__name__
    )
    def test_json_roundtrip_is_exact(self, alert):
        through_json = json.loads(json.dumps(alert_to_dict(alert)))
        assert alert_from_dict(through_json) == alert

    def test_unregistered_alert_type_rejected(self):
        class Bespoke(Alert):
            pass

        with pytest.raises(CheckpointError, match="Bespoke"):
            alert_to_dict(Bespoke(time_s=0.0, stream=POWER_STREAM))

    def test_non_primitive_field_rejected(self):
        alert = DataGapAlert(
            time_s=0.0,
            stream=CI_STREAM,
            last_seen_s=0.0,
            gap_s=np.arange(3.0),  # arrays are not checkpointable
            recovered=False,
        )
        with pytest.raises(CheckpointError, match="gap_s"):
            alert_to_dict(alert)

    def test_unknown_type_tag_rejected(self):
        with pytest.raises(CheckpointError, match="unknown alert type"):
            alert_from_dict({"type": "GremlinAlert", "time_s": 0.0})

    def test_malformed_record_rejected(self):
        with pytest.raises(CheckpointError, match="malformed"):
            alert_from_dict({"type": "Alert", "time_s": 0.0})  # stream missing


class TestCheckpointFile:
    def test_roundtrip_preserves_nonfinite_floats(self, tmp_path):
        path = tmp_path / "monitor.ckpt"
        payload = {"retry_at": {"p": math.inf}, "mean": 3219.25, "gap": math.nan}
        save_checkpoint(path, payload)
        loaded = load_checkpoint(path)
        assert loaded["retry_at"]["p"] == math.inf
        assert loaded["mean"] == 3219.25
        assert math.isnan(loaded["gap"])
        assert not path.with_name(path.name + ".tmp").exists()  # atomic write

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.ckpt")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "garbled.ckpt"
        path.write_text("{truncated")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(path)

    def test_missing_version_rejected(self, tmp_path):
        path = tmp_path / "old.ckpt"
        path.write_text(json.dumps({"payload": {}}))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "future.ckpt"
        path.write_text(
            json.dumps({"version": CHECKPOINT_VERSION + 1, "payload": {}})
        )
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_missing_payload_rejected(self, tmp_path):
        path = tmp_path / "empty.ckpt"
        path.write_text(json.dumps({"version": CHECKPOINT_VERSION}))
        with pytest.raises(CheckpointError, match="payload"):
            load_checkpoint(path)

    def test_unserialisable_payload_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="not serialisable"):
            save_checkpoint(tmp_path / "bad.ckpt", {"streams": {POWER_STREAM}})


def assemble_supervised(with_advisor=True):
    """The standard monitor processor set on a bare SupervisedPipeline."""
    pipeline = SupervisedPipeline(supervisor_config=SupervisorConfig())
    pipeline.add_processor(OnlineCusum(POWER_STREAM))
    pipeline.add_processor(WindowedRollup(POWER_STREAM, window_s=86400.0))
    pipeline.add_processor(RegimeTracker(CI_STREAM))
    pipeline.add_processor(WindowedRollup(CI_STREAM, window_s=86400.0))
    if with_advisor:
        pipeline.set_advisor(InterventionAdvisor())
    return pipeline


class TestPipelineSnapshot:
    def test_snapshot_is_json_serialisable(self):
        pipeline, *_ = build_monitor(supervisor_config=SupervisorConfig())
        json.dumps({"version": CHECKPOINT_VERSION, "payload": pipeline.checkpoint()})

    def test_undrained_channels_rejected(self):
        pipeline = assemble_supervised()
        pipeline._channels[POWER_STREAM].put(
            StreamBatch(POWER_STREAM, np.arange(4.0), np.full(4, 3220.0))
        )
        with pytest.raises(CheckpointError, match="undrained"):
            pipeline.checkpoint()

    def test_processor_mismatch_rejected(self):
        payload = assemble_supervised().checkpoint()
        other = SupervisedPipeline(supervisor_config=SupervisorConfig())
        other.add_processor(WindowedRollup(POWER_STREAM, window_s=86400.0))
        other.set_advisor(InterventionAdvisor())
        with pytest.raises(CheckpointError, match="does not match"):
            other.load_checkpoint_payload(payload)

    def test_advisor_mismatch_rejected(self):
        payload = assemble_supervised(with_advisor=True).checkpoint()
        bare = assemble_supervised(with_advisor=False)
        with pytest.raises(CheckpointError, match="advisor"):
            bare.load_checkpoint_payload(payload)

    def test_snapshot_restores_into_fresh_pipeline(self):
        original = assemble_supervised()
        flow = [
            StreamBatch(
                POWER_STREAM,
                h * 3600.0 + 900.0 * np.arange(4),
                np.full(4, 3220.0),
            )
            for h in range(6)
        ]
        original.run(iter(flow))
        payload = json.loads(json.dumps(original.checkpoint()))
        restored = assemble_supervised()
        restored.load_checkpoint_payload(payload)
        # Compare serialised form: NaN fields defeat plain dict equality.
        assert json.dumps(restored.checkpoint()) == json.dumps(original.checkpoint())


class Killed(RuntimeError):
    """Simulated hard kill of the monitor process."""


def kill_after(source, n_batches):
    for i, batch in enumerate(source):
        if i >= n_batches:
            raise Killed(f"killed after {n_batches} batches")
        yield batch


class TestKillAndResume:
    """The PR's acceptance property: kill the monitor mid-run, restore from
    the last checkpoint, replay the same deterministic faulted sources, and
    the final report is *exactly* the uninterrupted run's."""

    FAULTS = ["dropout", "duplicate", "reorder", "spike"]

    def outcome(self, pipeline, detector, tracker, scenario, killed_after=None):
        power, ci = scenario_sources(
            scenario, batch_size=256, faults=self.FAULTS, fault_seed=9
        )
        if killed_after is not None:
            power = kill_after(power, killed_after)
        report = pipeline.run(power, ci)
        return report, tuple(detector.segments), tuple(tracker.transitions)

    def test_resumed_run_is_bit_identical(self, tmp_path):
        scenario = build_scenario("fig2", duration_days=30.0)

        # The reference: one uninterrupted supervised run, no checkpointing.
        pipeline, detector, tracker, _ = build_monitor(
            supervisor_config=SupervisorConfig(seed=3)
        )
        full_report, full_segments, full_transitions = self.outcome(
            pipeline, detector, tracker, scenario
        )

        # The same run, checkpointing every 2 days, killed mid-flight.
        ckpt = tmp_path / "monitor.ckpt"
        cfg = SupervisorConfig(
            seed=3, checkpoint_path=ckpt, checkpoint_every_s=2 * 86400.0
        )
        victim, v_detector, v_tracker, _ = build_monitor(supervisor_config=cfg)
        with pytest.raises(Killed):
            self.outcome(victim, v_detector, v_tracker, scenario, killed_after=7)
        assert ckpt.exists()
        assert victim.metrics.checkpoints_written >= 1

        # A fresh process restores the checkpoint and replays the same sources.
        resumed, r_detector, r_tracker, _ = build_monitor(supervisor_config=cfg)
        resumed.resume_from(ckpt)
        report, segments, transitions = self.outcome(
            resumed, r_detector, r_tracker, scenario
        )

        assert segments == full_segments
        assert transitions == full_transitions
        assert report.alerts == full_report.alerts
        resumed_state = report.metrics.state_dict()
        full_state = full_report.metrics.state_dict()
        # The loaded checkpoint does not count itself on the resumed side.
        resumed_state.pop("checkpoints_written")
        full_state.pop("checkpoints_written")
        assert resumed_state == full_state
        assert report.metrics.reconciles()
