"""Columnar-vs-scalar parity: the vectorised hot path must be bit-identical.

Every scenario in ``SCENARIO_BUILDERS`` is replayed through both paths —
clean and under the full chaos-injector suite — and the alerts, segments,
transitions, metrics and per-processor checkpoint state must match exactly
(string-equal JSON, not approximately). Checkpoints written by one path
must resume under the other and still finish bit-identical to an
uninterrupted run.
"""

import json

import pytest

from repro.live.checkpoint import alert_to_dict
from repro.live.faults import FAULT_NAMES
from repro.live.monitor import build_monitor, run_monitor
from repro.live.replay import SCENARIO_BUILDERS, build_scenario, scenario_sources
from repro.live.supervisor import SupervisorConfig

#: Short enough to keep the matrix fast, long enough to cross the fig2/fig3
#: interventions and several regime plateaus.
DURATION_DAYS = 30.0


def outcome_fingerprint(outcome):
    """Everything observable from a run, as one JSON string (NaN-safe)."""
    return json.dumps(
        {
            "alerts": [alert_to_dict(a) for a in outcome.report.alerts],
            "segments": [
                {
                    "start_time_s": s.start_time_s,
                    "end_time_s": s.end_time_s,
                    "n": s.n,
                    "mean": s.mean,
                    "std": s.std,
                }
                for s in outcome.detector.segments
            ],
            "transitions": [alert_to_dict(a) for a in outcome.tracker.transitions],
            "metrics": outcome.report.metrics.state_dict(),
            "detector_state": outcome.detector.state_dict(),
            "tracker_state": outcome.tracker.state_dict(),
        }
    )


@pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
class TestCleanScenarios:
    def test_bit_identical(self, name):
        scenario = build_scenario(name, duration_days=DURATION_DAYS)
        scalar = run_monitor(scenario, batch_size=512, columnar=False)
        columnar = run_monitor(scenario, batch_size=512, columnar=True)
        assert outcome_fingerprint(columnar) == outcome_fingerprint(scalar)


@pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
class TestChaosScenarios:
    """Same property under the PR 3 fault suite: dropouts, duplicates,
    reorderings and spikes, supervised, with the full checkpoint payload
    (processors, advisor, metrics, alerts, RNG state) compared."""

    def run_supervised(self, scenario, columnar):
        pipeline, detector, tracker, _ = build_monitor(
            supervisor_config=SupervisorConfig(seed=5), columnar=columnar
        )
        power, ci = scenario_sources(
            scenario, batch_size=256, faults=list(FAULT_NAMES), fault_seed=7
        )
        report = pipeline.run(power, ci)
        return pipeline, detector, tracker, report

    def test_bit_identical_under_chaos(self, name):
        scenario = build_scenario(name, duration_days=DURATION_DAYS)
        s_pipe, s_det, s_track, s_report = self.run_supervised(scenario, False)
        c_pipe, c_det, c_track, c_report = self.run_supervised(scenario, True)
        assert c_report.alerts == s_report.alerts
        assert tuple(c_det.segments) == tuple(s_det.segments)
        assert tuple(c_track.transitions) == tuple(s_track.transitions)
        assert json.dumps(c_report.metrics.state_dict()) == json.dumps(
            s_report.metrics.state_dict()
        )
        # The strongest single assertion: the full checkpoint payloads match.
        assert json.dumps(c_pipe.checkpoint()) == json.dumps(s_pipe.checkpoint())


class Killed(RuntimeError):
    """Simulated hard kill of the monitor process."""


def kill_after(source, n_batches):
    for i, batch in enumerate(source):
        if i >= n_batches:
            raise Killed(f"killed after {n_batches} batches")
        yield batch


class TestCheckpointInterchangeability:
    """A checkpoint written by one path resumes under the other and the
    finished run is bit-identical to an uninterrupted reference."""

    FAULTS = list(FAULT_NAMES)

    def run_sources(self, pipeline, scenario, killed_after=None):
        power, ci = scenario_sources(
            scenario, batch_size=256, faults=self.FAULTS, fault_seed=9
        )
        if killed_after is not None:
            power = kill_after(power, killed_after)
        return pipeline.run(power, ci)

    def reference(self, scenario):
        pipeline, detector, tracker, _ = build_monitor(
            supervisor_config=SupervisorConfig(seed=3), columnar=False
        )
        report = self.run_sources(pipeline, scenario)
        return report, tuple(detector.segments), tuple(tracker.transitions)

    @pytest.mark.parametrize(
        "write_columnar,resume_columnar",
        [(True, False), (False, True)],
        ids=["columnar-writes-scalar-resumes", "scalar-writes-columnar-resumes"],
    )
    def test_cross_path_resume(self, tmp_path, write_columnar, resume_columnar):
        scenario = build_scenario("fig2", duration_days=DURATION_DAYS)
        full_report, full_segments, full_transitions = self.reference(scenario)

        ckpt = tmp_path / "monitor.ckpt"
        cfg = SupervisorConfig(
            seed=3, checkpoint_path=ckpt, checkpoint_every_s=2 * 86400.0
        )
        victim, *_ = build_monitor(supervisor_config=cfg, columnar=write_columnar)
        with pytest.raises(Killed):
            self.run_sources(victim, scenario, killed_after=7)
        assert ckpt.exists()

        resumed, r_det, r_track, _ = build_monitor(
            supervisor_config=cfg, columnar=resume_columnar
        )
        resumed.resume_from(ckpt)
        report = self.run_sources(resumed, scenario)

        assert tuple(r_det.segments) == full_segments
        assert tuple(r_track.transitions) == full_transitions
        assert report.alerts == full_report.alerts
        resumed_state = report.metrics.state_dict()
        full_state = full_report.metrics.state_dict()
        # The loaded checkpoint does not count itself on the resumed side.
        resumed_state.pop("checkpoints_written")
        full_state.pop("checkpoints_written")
        assert resumed_state == full_state
        assert report.metrics.reconciles()
