"""Online CUSUM detector unit tests."""

import numpy as np
import pytest

from repro.errors import MonitoringError
from repro.live.cusum import CusumConfig, OnlineCusum
from repro.live.events import POWER_STREAM, StreamBatch


def feed(detector, times, values, chunk=256):
    alerts = []
    for lo in range(0, len(times), chunk):
        batch = StreamBatch(POWER_STREAM, times[lo : lo + chunk], values[lo : lo + chunk])
        alerts.extend(detector.process(batch))
    return alerts


def step_signal(rng, n_before=600, n_after=600, level=3220.0, delta=-210.0, sigma=32.0):
    n = n_before + n_after
    times = 900.0 * np.arange(n)
    values = np.full(n, level) + sigma * rng.standard_normal(n)
    values[n_before:] += delta
    return times, values


class TestConfig:
    def test_defaults_valid(self):
        config = CusumConfig()
        assert config.threshold_sigma > 0
        assert config.drift_sigma >= 0

    def test_bad_threshold_rejected(self):
        with pytest.raises(MonitoringError):
            CusumConfig(threshold_sigma=0.0)

    def test_negative_drift_rejected(self):
        with pytest.raises(MonitoringError):
            CusumConfig(drift_sigma=-0.1)

    def test_tiny_warmup_rejected(self):
        with pytest.raises(MonitoringError):
            CusumConfig(warmup_samples=2)


class TestDetection:
    def test_no_alarm_on_steady_noise(self, rng):
        detector = OnlineCusum(POWER_STREAM)
        times = 900.0 * np.arange(5000)
        values = 3220.0 + 32.0 * rng.standard_normal(5000)
        assert feed(detector, times, values) == []
        assert detector.armed

    def test_not_armed_before_warmup(self):
        detector = OnlineCusum(POWER_STREAM, CusumConfig(warmup_samples=50))
        feed(detector, 900.0 * np.arange(10), np.full(10, 3220.0))
        assert not detector.armed

    def test_downward_step_detected(self, rng):
        times, values = step_signal(rng)
        detector = OnlineCusum(POWER_STREAM)
        alerts = feed(detector, times, values)
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.direction == -1
        assert alert.delta_estimate < 0
        # Onset within a handful of samples of the true step at index 600.
        assert abs(alert.onset_time_s - times[600]) <= 5 * 900.0
        assert alert.level_before == pytest.approx(3220.0, rel=0.01)
        assert alert.significance > detector.config.threshold_sigma

    def test_upward_step_detected(self, rng):
        times, values = step_signal(rng, delta=+210.0)
        alerts = feed(OnlineCusum(POWER_STREAM), times, values)
        assert len(alerts) == 1
        assert alerts[0].direction == +1
        assert alerts[0].delta_estimate > 0

    def test_nan_samples_skipped_and_counted(self, rng):
        times, values = step_signal(rng)
        values[::50] = np.nan
        detector = OnlineCusum(POWER_STREAM)
        alerts = feed(detector, times, values)
        assert len(alerts) == 1
        assert detector.nan_samples == np.isnan(values).sum()

    def test_segments_bracket_the_step(self, rng):
        times, values = step_signal(rng)
        detector = OnlineCusum(POWER_STREAM)
        feed(detector, times, values)
        detector.finish()
        segments = detector.segments
        assert len(segments) == 2
        assert segments[0].mean == pytest.approx(3220.0, rel=0.01)
        assert segments[1].mean == pytest.approx(3010.0, rel=0.01)
        assert segments[0].n + segments[1].n == len(values)
        assert segments[0].end_time_s <= segments[1].start_time_s

    def test_segment_means_match_batch_split(self, rng):
        """Reset-on-alarm attributes run samples to the *new* segment, so
        per-segment means equal the batch means at the detected onset."""
        times, values = step_signal(rng)
        detector = OnlineCusum(POWER_STREAM)
        alerts = feed(detector, times, values)
        detector.finish()
        onset = alerts[0].onset_time_s
        before = values[times < onset]
        after = values[times >= onset]
        assert detector.segments[0].mean == pytest.approx(before.mean(), rel=1e-12)
        assert detector.segments[1].mean == pytest.approx(after.mean(), rel=1e-12)

    def test_finish_idempotent(self, rng):
        times, values = step_signal(rng, n_before=200, n_after=0)
        detector = OnlineCusum(POWER_STREAM)
        feed(detector, times, values)
        detector.finish()
        detector.finish()
        assert len(detector.segments) == 1

    def test_mid_segment_resume_between_alarm_and_rearm(self, rng):
        """Kill the detector after an alarm but before the new segment has
        re-armed, resume from the state_dict, and the final segmentation is
        exactly the uninterrupted run's — not just approximately."""
        import json

        times, values = step_signal(rng)
        reference = OnlineCusum(POWER_STREAM)
        feed(reference, times, values)
        reference.finish()

        victim = OnlineCusum(POWER_STREAM)
        snapshot = None
        kill_at = None
        for i in range(len(times)):
            victim.process(
                StreamBatch(POWER_STREAM, times[i : i + 1], values[i : i + 1])
            )
            if victim.segments and not victim.armed:
                # Alarmed, new segment still warming up: the window the
                # whole-pipeline checkpoint tests never hit.
                snapshot = json.loads(json.dumps(victim.state_dict()))
                kill_at = i + 1
                break
        assert snapshot is not None, "the step must alarm before warmup completes"

        resumed = OnlineCusum(POWER_STREAM)
        resumed.load_state_dict(snapshot)
        assert not resumed.armed
        feed(resumed, times[kill_at:], values[kill_at:])
        resumed.finish()

        assert resumed.segments == reference.segments
        assert resumed.nan_samples == reference.nan_samples
        assert json.dumps(resumed.state_dict()) == json.dumps(
            reference.state_dict()
        )

    def test_zero_variance_baseline_survives(self):
        """A constant baseline must arm (sigma floored) without crashing."""
        detector = OnlineCusum(POWER_STREAM, CusumConfig(warmup_samples=8))
        times = 900.0 * np.arange(40)
        values = np.full(40, 3220.0)
        values[20:] = 3000.0
        alerts = feed(detector, times, values)
        assert len(alerts) >= 1
        assert alerts[0].direction == -1
