"""Chaos-injection harness tests: each injector's fault shape, seeding,
accounting, and the composed soak reconciliation."""

import numpy as np
import pytest

from repro.errors import MonitoringError
from repro.live.events import POWER_STREAM, StreamBatch
from repro.live.faults import (
    FAULT_NAMES,
    ClockSkewInjector,
    DropoutInjector,
    DuplicateInjector,
    ReorderInjector,
    SpikeInjector,
    StallInjector,
    TruncateInjector,
    apply_faults,
    chaos_chain,
)


def make_flow(n_batches=10, batch_len=32, dt=10.0, stream=POWER_STREAM):
    """A clean, contiguous, strictly-ordered batch flow."""
    flow = []
    t0 = 0.0
    for _ in range(n_batches):
        times = t0 + dt * np.arange(batch_len)
        flow.append(StreamBatch(stream, times, np.full(batch_len, 3220.0)))
        t0 = times[-1] + dt
    return flow


def total_samples(flow):
    return sum(len(b) for b in flow)


class TestDropout:
    def test_nans_injected_and_counted(self):
        inj = DropoutInjector(p_sample=0.2, seed=1)
        out = list(inj.apply(make_flow()))
        nans = sum(int(np.isnan(b.values).sum()) for b in out)
        assert nans == inj.samples_corrupted > 0
        assert total_samples(out) == 320  # timestamps survive, values die

    def test_does_not_recount_existing_nans(self):
        batch = StreamBatch(POWER_STREAM, [0.0, 1.0], [np.nan, 2.0])
        inj = DropoutInjector(p_sample=1.0, seed=0)
        out = list(inj.apply([batch]))
        assert inj.samples_corrupted == 1
        assert np.isnan(out[0].values).all()

    def test_seeded_reproducible(self):
        a = list(DropoutInjector(0.3, seed=5).apply(make_flow()))
        b = list(DropoutInjector(0.3, seed=5).apply(make_flow()))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.values, y.values)

    def test_reset_rewinds_rng(self):
        inj = DropoutInjector(0.3, seed=5)
        a = list(inj.apply(make_flow()))
        b = list(inj.reset().apply(make_flow()))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.values, y.values)
        assert inj.batches_seen == 10

    def test_bad_probability_rejected(self):
        with pytest.raises(MonitoringError):
            DropoutInjector(p_sample=1.5)


class TestStall:
    def test_window_removed_and_counted(self):
        flow = make_flow(n_batches=4, batch_len=10, dt=10.0)  # spans 0..390
        inj = StallInjector(start_s=100.0, duration_s=100.0)
        out = list(inj.apply(flow))
        times = np.concatenate([b.times_s for b in out])
        assert not np.any((times >= 100.0) & (times < 200.0))
        assert inj.samples_removed == 40 - len(times)
        assert inj.samples_removed == 10

    def test_straddling_batch_split_sides_stay_ordered(self):
        batch = StreamBatch(POWER_STREAM, np.arange(10.0), np.arange(10.0))
        inj = StallInjector(start_s=3.0, duration_s=4.0)
        out = list(inj.apply([batch]))
        assert [list(b.times_s) for b in out] == [[0.0, 1.0, 2.0], [7.0, 8.0, 9.0]]
        assert inj.samples_removed == 4

    def test_zero_duration_rejected(self):
        with pytest.raises(MonitoringError):
            StallInjector(0.0, 0.0)


class TestDuplicate:
    def test_duplicates_counted(self):
        inj = DuplicateInjector(p_batch=1.0, seed=0)
        out = list(inj.apply(make_flow(n_batches=3)))
        assert len(out) == 6
        assert inj.samples_duplicated == 96
        assert out[0].t_start_s == out[1].t_start_s

    def test_zero_probability_is_identity(self):
        flow = make_flow()
        out = list(DuplicateInjector(p_batch=0.0).apply(flow))
        assert out == flow


class TestReorder:
    def test_swap_displaces_the_late_batch(self):
        inj = ReorderInjector(p_swap=1.0, seed=0)
        out = list(inj.apply(make_flow(n_batches=4)))
        assert len(out) == 4
        starts = [b.t_start_s for b in out]
        assert starts != sorted(starts)
        assert inj.samples_displaced == 64  # two swaps of 32-sample batches

    def test_trailing_batch_without_successor_passes_through(self):
        inj = ReorderInjector(p_swap=1.0, seed=0)
        out = list(inj.apply(make_flow(n_batches=3)))
        assert len(out) == 3
        assert inj.samples_displaced == 32  # only one complete pair to swap


class TestClockSkew:
    def test_post_onset_timestamps_shift(self):
        inj = ClockSkewInjector(offset_s=-50.0, onset_s=155.0)
        out = list(inj.apply(make_flow(n_batches=2, batch_len=16, dt=10.0)))
        shifted = [b for b in out if b.t_start_s >= 105.0 and b.t_end_s <= 260.0]
        assert inj.samples_displaced == 16  # the second batch, wholly post-onset
        assert shifted

    def test_straddling_batch_splits_at_onset(self):
        batch = StreamBatch(POWER_STREAM, np.arange(10.0), np.zeros(10))
        inj = ClockSkewInjector(offset_s=100.0, onset_s=5.0)
        head, tail = list(inj.apply([batch]))
        assert list(head.times_s) == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert list(tail.times_s) == [105.0, 106.0, 107.0, 108.0, 109.0]
        assert inj.samples_displaced == 5

    def test_zero_offset_rejected(self):
        with pytest.raises(MonitoringError):
            ClockSkewInjector(0.0, 10.0)


class TestSpike:
    def test_corruption_counted_and_split_by_kind(self):
        inj = SpikeInjector(p_sample=0.5, spike_factor=30.0, p_inf=0.5, seed=2)
        out = list(inj.apply(make_flow()))
        values = np.concatenate([b.values for b in out])
        n_inf = int(np.isinf(values).sum())
        n_spiked = int((np.abs(values) > 10_000).sum()) - n_inf
        assert inj.samples_nonfinite == n_inf > 0
        assert inj.samples_corrupted == n_inf + n_spiked > n_inf

    def test_skips_nan_samples(self):
        batch = StreamBatch(POWER_STREAM, [0.0, 1.0], [np.nan, 1.0])
        inj = SpikeInjector(p_sample=1.0, p_inf=0.0, seed=0)
        out = list(inj.apply([batch]))
        assert np.isnan(out[0].values[0])
        assert inj.samples_corrupted == 1


class TestTruncate:
    def test_stream_ends_at_cut(self):
        flow = make_flow(n_batches=4, batch_len=10, dt=10.0)  # 0..390
        inj = TruncateInjector(cut_s=250.0)
        out = list(inj.apply(flow))
        assert max(b.t_end_s for b in out) < 250.0
        assert inj.samples_removed == 40 - total_samples(out) == 15

    def test_remainder_drained_for_accounting(self):
        inj = TruncateInjector(cut_s=0.0)
        out = list(inj.apply(make_flow(n_batches=3, batch_len=8)))
        assert out == []
        assert inj.samples_removed == 24
        assert inj.batches_seen == 3


class TestComposition:
    def test_chain_applies_in_order(self):
        flow = make_flow(n_batches=6, batch_len=16, dt=10.0)
        drop = DropoutInjector(0.1, seed=1)
        dup = DuplicateInjector(0.5, seed=2)
        out = list(apply_faults(flow, drop, dup))
        assert drop.batches_seen == 6
        assert dup.batches_seen == 6  # duplicate wraps dropout's output
        assert total_samples(out) == 96 + dup.samples_duplicated

    def test_chaos_chain_registry(self):
        chain = chaos_chain(FAULT_NAMES, duration_s=86400.0, seed=0)
        assert [i.name for i in chain] == list(FAULT_NAMES)

    def test_chaos_chain_order_independent_of_spelling(self):
        a = chaos_chain(["spike", "dropout"], 86400.0, seed=0)
        b = chaos_chain(["dropout", "spike"], 86400.0, seed=0)
        assert [i.name for i in a] == [i.name for i in b] == ["dropout", "spike"]

    def test_chaos_chain_unknown_name_rejected(self):
        with pytest.raises(MonitoringError, match="unknown fault"):
            chaos_chain(["gremlins"], 86400.0)

    def test_chaos_chain_deterministic(self):
        flow = make_flow(n_batches=20, batch_len=64, dt=30.0)
        duration = flow[-1].t_end_s
        out_a = list(apply_faults(flow, *chaos_chain(FAULT_NAMES, duration, seed=7)))
        out_b = list(apply_faults(flow, *chaos_chain(FAULT_NAMES, duration, seed=7)))
        assert len(out_a) == len(out_b)
        for x, y in zip(out_a, out_b):
            np.testing.assert_array_equal(x.times_s, y.times_s)
            np.testing.assert_array_equal(x.values, y.values)

    def test_full_suite_accounting_reconciles(self):
        """Composed suite: delivered == clean − removed + duplicated, where
        per-injector counts refer to the flow each injector saw."""
        flow = make_flow(n_batches=20, batch_len=64, dt=30.0)
        clean = total_samples(flow)
        chain = chaos_chain(FAULT_NAMES, flow[-1].t_end_s, seed=3)
        delivered = total_samples(list(apply_faults(flow, *chain)))
        removed = sum(i.samples_removed for i in chain)
        duplicated = sum(i.samples_duplicated for i in chain)
        assert delivered == clean - removed + duplicated
