"""End-to-end pipeline tests against the paper's figure scenarios.

The acceptance criteria for the live subsystem: replaying the Fig. 2/Fig. 3
intervention windows, the online detector's levels must match the batch
:func:`repro.analysis.changepoint.detect_single` means within 1 %, the first
alarm onset must land within one detection window of the true change, and
the regime tracker must reproduce the batch classification sequence without
flapping.
"""

import numpy as np
import pytest

from repro.analysis.changepoint import detect_single, segment_means
from repro.core.regimes import Regime
from repro.errors import MonitoringError
from repro.live.alerts import (
    AdviceAlert,
    ChangePointAlert,
    ListAlertSink,
    RegimeChangeAlert,
    RollupAlert,
    format_alert,
)
from repro.live.cusum import OnlineCusum
from repro.live.events import POWER_STREAM, series_batches
from repro.live.monitor import build_monitor, monitor_main, run_monitor
from repro.live.pipeline import MonitorPipeline
from repro.live.replay import build_scenario, figure2_scenario, figure3_scenario
from repro.units import SECONDS_PER_DAY

#: One detection window: the detector re-estimates its baseline over
#: ``warmup_samples`` (96) meter intervals (900 s) — one day.
DETECTION_WINDOW_S = 96 * 900.0


@pytest.fixture(scope="module")
def fig2_outcome():
    return run_monitor(figure2_scenario())


@pytest.fixture(scope="module")
def fig3_outcome():
    return run_monitor(figure3_scenario())


def assert_figure_acceptance(outcome, level_before, level_after):
    scenario = outcome.scenario
    changes = outcome.report.alerts_of(ChangePointAlert)
    assert changes, "the intervention must raise at least one change alert"

    # Onset of the first alarm within one detection window of the truth.
    (true_change,) = scenario.change_times_s
    assert abs(changes[0].onset_time_s - true_change) <= DETECTION_WINDOW_S
    # All alarms cluster on the intervention, none elsewhere (no false alarms).
    settle_s = 2.0 * SECONDS_PER_DAY
    for alert in changes:
        assert true_change - DETECTION_WINDOW_S <= alert.onset_time_s
        assert alert.onset_time_s <= true_change + settle_s + DETECTION_WINDOW_S
        assert alert.direction == -1

    # Live levels match the batch single-change-point means within 1 %.
    batch = detect_single(scenario.power_kw)
    segments = outcome.detector.segments
    assert segments[0].mean == pytest.approx(batch.mean_before, rel=0.01)
    assert segments[-1].mean == pytest.approx(batch.mean_after, rel=0.01)
    # And both recover the paper's published levels within 1 %.
    assert segments[0].mean == pytest.approx(level_before, rel=0.01)
    assert segments[-1].mean == pytest.approx(level_after, rel=0.01)

    # Live segmentation equals the batch segmentation at the same onsets.
    onsets = [a.onset_time_s for a in changes]
    batch_means = segment_means(scenario.power_kw, onsets)
    live_means = [s.mean for s in segments]
    assert live_means == pytest.approx(batch_means, rel=1e-9)


class TestFigureScenarios:
    def test_fig2_bios_step(self, fig2_outcome):
        """Fig. 2: −210 kW BIOS determinism step, 3,220 → 3,010 kW."""
        assert_figure_acceptance(fig2_outcome, 3220.0, 3010.0)

    def test_fig3_frequency_step(self, fig3_outcome):
        """Fig. 3: −480 kW frequency-cap step, 3,010 → 2,530 kW."""
        assert_figure_acceptance(fig3_outcome, 3010.0, 2530.0)

    def test_fig2_advice_reaches_frequency_cap(self, fig2_outcome):
        """After the BIOS step lands, the remaining §4 action is the cap."""
        final = fig2_outcome.report.alerts_of(AdviceAlert)[-1]
        assert [r.action for r in final.recommendations] == ["frequency-cap-2.0ghz"]

    def test_fig3_advice_exhausted(self, fig3_outcome):
        """At 2,530 kW both interventions are in effect: nothing pending."""
        assert fig3_outcome.advisor.pending_actions() == ()

    def test_rollups_emitted_daily(self, fig2_outcome):
        rollups = [
            a
            for a in fig2_outcome.report.alerts_of(RollupAlert)
            if a.stream == POWER_STREAM
        ]
        # 61 days → 61 windows (the last closed by finish()).
        assert len(rollups) == 61
        assert all(a.n_valid <= a.n_samples for a in rollups)

    def test_no_samples_dropped_unthrottled(self, fig2_outcome):
        metrics = fig2_outcome.report.metrics
        assert metrics.total_samples_dropped == 0
        assert metrics.samples_in == metrics.samples_processed

    def test_watermark_reaches_end(self, fig2_outcome):
        scenario = fig2_outcome.scenario
        assert fig2_outcome.report.metrics.watermark_time_s == pytest.approx(
            max(scenario.power_kw.t_end_s, scenario.ci_g_per_kwh.t_end_s)
        )


class TestRegimeSweepScenario:
    def test_sequence_and_no_flapping(self):
        """The CI sweep commits exactly the five plateau regimes."""
        outcome = run_monitor(build_scenario("regimes"))
        assert outcome.tracker.regime_sequence == [
            Regime.SCOPE3_DOMINATED,
            Regime.BALANCED,
            Regime.SCOPE2_DOMINATED,
            Regime.BALANCED,
            Regime.SCOPE3_DOMINATED,
        ]
        # Scope-3 advice recommends no power actions.
        final = outcome.report.alerts_of(AdviceAlert)[-1]
        assert final.recommendations == ()


class TestBackpressure:
    def test_throttled_consumer_sheds_and_accounts(self):
        """A drain budget below the ingest rate must shed samples, and every
        shed sample must appear in the metrics — nothing silent."""
        scenario = figure2_scenario(duration_days=20.0)
        pipeline, detector, _, _ = build_monitor(
            channel_capacity_samples=64,
            max_samples_per_drain=32,
        )
        report = pipeline.run(
            series_batches(POWER_STREAM, scenario.power_kw, batch_size=64),
            series_batches("ci_g_per_kwh", scenario.ci_g_per_kwh, batch_size=64),
        )
        metrics = report.metrics
        assert metrics.total_samples_dropped > 0
        for stream in metrics.samples_in:
            assert metrics.samples_in[stream] == (
                metrics.samples_processed.get(stream, 0)
                + metrics.samples_dropped.get(stream, 0)
            )
            assert metrics.channel_high_watermarks[stream] <= 64

    def test_unknown_stream_rejected(self):
        pipeline = MonitorPipeline()
        pipeline.add_processor(OnlineCusum(POWER_STREAM))
        series = figure2_scenario(duration_days=2.0).ci_g_per_kwh
        with pytest.raises(MonitoringError):
            pipeline.run(series_batches("mystery", series))

    def test_empty_pipeline_rejected(self):
        with pytest.raises(MonitoringError):
            MonitorPipeline().run(iter(()))


class TestChannelParameterValidation:
    """Bad channel parameters fail at build time with the allowed values in
    the message — not on first overflow deep inside the channel."""

    def test_unknown_policy_rejected_up_front(self):
        with pytest.raises(MonitoringError, match="drop_oldest"):
            build_monitor(channel_policy="drop_latest")

    def test_unknown_policy_message_names_the_offender(self):
        with pytest.raises(MonitoringError, match="'shred'"):
            build_monitor(channel_policy="shred")

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_nonpositive_capacity_rejected_up_front(self, capacity):
        with pytest.raises(MonitoringError, match="channel_capacity_samples"):
            build_monitor(channel_capacity_samples=capacity)

    def test_pipeline_validates_directly(self):
        with pytest.raises(MonitoringError, match="overflow policy"):
            MonitorPipeline(channel_policy="nonsense")
        with pytest.raises(MonitoringError, match=">= 1"):
            MonitorPipeline(channel_capacity_samples=0)

    def test_valid_policies_accepted(self):
        for policy in ("drop_oldest", "drop_newest"):
            build_monitor(channel_policy=policy)


class TestAlertPlumbing:
    def test_sinks_receive_all_alerts(self):
        sink = ListAlertSink()
        outcome = run_monitor(build_scenario("regimes", duration_days=5.0), sinks=(sink,))
        assert len(sink.alerts) == len(outcome.report.alerts)
        assert sink.of_type(RegimeChangeAlert)

    def test_format_alert_covers_every_type(self, fig2_outcome):
        lines = [format_alert(a) for a in fig2_outcome.report.alerts]
        assert all(isinstance(line, str) and line for line in lines)
        assert any("CHANGE" in line for line in lines)
        assert any("ADVICE" in line for line in lines)
        assert any("ROLLUP" in line for line in lines)


class TestMonitorCli:
    def test_quiet_run_exits_zero(self, capsys):
        assert monitor_main(["--scenario", "regimes", "--days", "4", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Live facility monitor summary" in out

    def test_live_feed_prints_alerts(self, capsys):
        assert monitor_main(["--scenario", "regimes", "--days", "4"]) == 0
        out = capsys.readouterr().out
        assert "REGIME" in out

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            monitor_main(["--help"])
        assert excinfo.value.code == 0

    def test_dispatch_from_main_cli(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["monitor", "--help"])
        assert excinfo.value.code == 0
        assert "repro monitor" in capsys.readouterr().out
