"""Regime tracker (hysteresis/debounce) and intervention advisor tests."""

import math

import numpy as np
import pytest

from repro.core.regimes import OptimisationTarget, Regime, classify_ci
from repro.errors import MonitoringError
from repro.live.advisor import (
    PAPER_ACTIONS,
    ActionSpec,
    AdvisorConfig,
    InterventionAdvisor,
)
from repro.live.alerts import ChangePointAlert, RegimeChangeAlert
from repro.live.events import CI_STREAM, POWER_STREAM, StreamBatch
from repro.live.regime import RegimeTracker, RegimeTrackerConfig


def track(values, config=None):
    tracker = RegimeTracker(CI_STREAM, config)
    values = np.asarray(values, dtype=float)
    times = 900.0 * np.arange(len(values))
    tracker.process(StreamBatch(CI_STREAM, times, values))
    return tracker


def batch_sequence(values):
    """The batch per-sample regime sequence, transitions only."""
    sequence = []
    for ci in values:
        if math.isnan(ci):
            continue
        regime = classify_ci(ci)
        if not sequence or sequence[-1] is not regime:
            sequence.append(regime)
    return sequence


class TestTrackerConfig:
    def test_inverted_band_rejected(self):
        with pytest.raises(MonitoringError):
            RegimeTrackerConfig(low_ci_g_per_kwh=100.0, high_ci_g_per_kwh=30.0)

    def test_oversized_hysteresis_rejected(self):
        with pytest.raises(MonitoringError):
            RegimeTrackerConfig(hysteresis_g_per_kwh=40.0)

    def test_zero_dwell_rejected(self):
        with pytest.raises(MonitoringError):
            RegimeTrackerConfig(min_dwell_samples=0)


class TestTracker:
    def test_initial_classification_emitted(self):
        tracker = track([190.0])
        assert tracker.regime_sequence == [Regime.SCOPE2_DOMINATED]
        assert tracker.transitions[0].previous is None

    def test_nan_skipped(self):
        tracker = track([np.nan, np.nan, 190.0])
        assert tracker.nan_samples == 2
        assert tracker.current is Regime.SCOPE2_DOMINATED

    def test_degenerate_config_matches_batch_classifier(self, rng):
        """With no hysteresis and dwell 1, the tracker IS the batch rule —
        classify_ci stays the single source of truth."""
        values = rng.uniform(5.0, 200.0, 500)
        config = RegimeTrackerConfig(hysteresis_g_per_kwh=0.0, min_dwell_samples=1)
        tracker = track(values, config)
        assert tracker.regime_sequence == batch_sequence(values)

    def test_boundary_chatter_does_not_flap(self, rng):
        """CI chattering ±2 g around the 30 g boundary flaps the batch rule
        but must not flap the hysteresis tracker."""
        values = 30.0 + rng.normal(0.0, 2.0, 400)
        assert len(batch_sequence(values)) > 2  # the naive rule does flap
        tracker = track(values)  # default 5 g hysteresis, dwell 3
        assert len(tracker.regime_sequence) == 1

    def test_brief_excursion_debounced(self):
        """A spike shorter than min_dwell_samples never commits."""
        values = [20.0] * 10 + [50.0] * 2 + [20.0] * 10
        tracker = track(values, RegimeTrackerConfig(min_dwell_samples=3))
        assert tracker.regime_sequence == [Regime.SCOPE3_DOMINATED]

    def test_sustained_change_commits_at_dwell(self):
        values = [20.0] * 10 + [65.0] * 10
        tracker = track(values, RegimeTrackerConfig(min_dwell_samples=3))
        assert tracker.regime_sequence == [Regime.SCOPE3_DOMINATED, Regime.BALANCED]
        # Committed at the first sample of the dwell run, not the third.
        assert tracker.transitions[1].time_s == 900.0 * 10
        assert tracker.transitions[1].ci_g_per_kwh == 65.0

    def test_full_sweep_sequence(self):
        values = [20.0] * 5 + [65.0] * 5 + [190.0] * 5 + [65.0] * 5 + [20.0] * 5
        tracker = track(values)
        assert tracker.regime_sequence == [
            Regime.SCOPE3_DOMINATED,
            Regime.BALANCED,
            Regime.SCOPE2_DOMINATED,
            Regime.BALANCED,
            Regime.SCOPE3_DOMINATED,
        ]


def regime_alert(regime, ci, previous=Regime.BALANCED, time_s=0.0):
    return RegimeChangeAlert(
        time_s=time_s, stream=CI_STREAM, previous=previous, regime=regime,
        ci_g_per_kwh=ci,
    )


def level_alert(level_kw, time_s=0.0):
    return ChangePointAlert(
        time_s=time_s, stream=POWER_STREAM, onset_time_s=time_s,
        level_before=level_kw + 100.0, level_after_estimate=level_kw,
        significance=12.0, direction=-1,
    )


class TestAdvisorConfig:
    def test_expected_levels_ladder(self):
        levels = AdvisorConfig().expected_levels_kw()
        assert levels == pytest.approx([3220.0, 3010.0, 2530.0])

    def test_bad_baseline_rejected(self):
        with pytest.raises(MonitoringError):
            AdvisorConfig(baseline_power_kw=0.0)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(MonitoringError):
            AdvisorConfig(level_tolerance_fraction=1.5)


class TestAdvisor:
    def test_no_advice_before_regime_known(self):
        advisor = InterventionAdvisor()
        assert advisor.observe(level_alert(3220.0)) == []

    def test_baseline_level_advises_both_actions(self):
        advisor = InterventionAdvisor()
        advisor.observe(level_alert(3220.0))
        [alert] = advisor.observe(regime_alert(Regime.SCOPE2_DOMINATED, 190.0))
        assert [r.action for r in alert.recommendations] == [
            "bios-performance-determinism",
            "frequency-cap-2.0ghz",
        ]
        assert alert.target is OptimisationTarget.MAXIMISE_ENERGY_EFFICIENCY

    def test_mid_ladder_level_advises_remaining_action(self):
        advisor = InterventionAdvisor()
        advisor.observe(regime_alert(Regime.SCOPE2_DOMINATED, 190.0))
        [alert] = advisor.observe(level_alert(3015.0))  # near the 3010 rung
        assert [r.action for r in alert.recommendations] == ["frequency-cap-2.0ghz"]

    def test_bottom_rung_advises_nothing(self):
        advisor = InterventionAdvisor()
        advisor.observe(regime_alert(Regime.SCOPE2_DOMINATED, 190.0))
        [alert] = advisor.observe(level_alert(2531.0))
        assert alert.recommendations == ()

    def test_unattributable_level_advises_everything(self):
        """A level far from every rung must not silently assume an action."""
        advisor = InterventionAdvisor()
        advisor.level_kw = 2800.0  # ~130 kW from the nearest rung, > 4 % of 3220
        assert len(advisor.pending_actions()) == len(PAPER_ACTIONS)

    def test_scope3_regime_recommends_nothing(self):
        advisor = InterventionAdvisor()
        advisor.observe(level_alert(3220.0))
        [alert] = advisor.observe(regime_alert(Regime.SCOPE3_DOMINATED, 15.0))
        assert alert.recommendations == ()
        assert alert.target is OptimisationTarget.MAXIMISE_PERFORMANCE

    def test_emissions_estimate_scales_with_ci(self):
        advisor = InterventionAdvisor()
        [alert] = advisor.observe(regime_alert(Regime.SCOPE2_DOMINATED, 200.0))
        bios = alert.recommendations[0]
        # 210 kW × 8766 h/yr × 200 g/kWh ≈ 368 tCO2e/yr.
        assert bios.estimated_tco2e_saved_per_year == pytest.approx(368.2, rel=0.01)

    def test_repeat_state_deduplicated(self):
        advisor = InterventionAdvisor()
        first = advisor.observe(regime_alert(Regime.SCOPE2_DOMINATED, 190.0))
        again = advisor.observe(regime_alert(Regime.SCOPE2_DOMINATED, 195.0))
        assert len(first) == 1 and again == []

    def test_state_change_re_advises(self):
        advisor = InterventionAdvisor()
        advisor.observe(regime_alert(Regime.SCOPE2_DOMINATED, 190.0))
        [alert] = advisor.observe(level_alert(3010.0))
        assert [r.action for r in alert.recommendations] == ["frequency-cap-2.0ghz"]

    def test_custom_action_ladder(self):
        actions = (ActionSpec("dim-lights", "turn the lights off", -20.0),)
        config = AdvisorConfig(baseline_power_kw=100.0, actions=actions)
        assert config.expected_levels_kw() == pytest.approx([100.0, 80.0])
        advisor = InterventionAdvisor(config=config)
        advisor.observe(regime_alert(Regime.SCOPE2_DOMINATED, 190.0))
        advisor.observe(level_alert(80.5))
        assert advisor.pending_actions() == ()
