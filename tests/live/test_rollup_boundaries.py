"""Window-boundary semantics of :class:`WindowedRollup`, pinned.

The contract (audited before the columnar rewrite so both paths inherit
it): window *k* covers ``[k*W, (k+1)*W)`` — start-inclusive, end-exclusive
— so a sample landing exactly on an edge belongs to exactly one window,
and ``finish()`` never emits an empty or zero-count final window, in
particular when the last batch ends exactly on a boundary.
"""

import numpy as np
import pytest

from repro.errors import MonitoringError
from repro.live.events import POWER_STREAM, StreamBatch
from repro.live.processors import WindowedRollup

W = 100.0


def batch(times, values=None):
    times = np.asarray(times, dtype=float)
    if values is None:
        values = np.full(len(times), 3220.0)
    return StreamBatch(POWER_STREAM, times, np.asarray(values, dtype=float))


def run(rollup, *batches):
    alerts = []
    for b in batches:
        alerts.extend(rollup.process(b))
    alerts.extend(rollup.finish())
    return alerts


class TestEdgeSamples:
    def test_sample_on_edge_opens_the_next_window(self):
        """t == k*W belongs to window k, not window k-1."""
        rollup = WindowedRollup(POWER_STREAM, window_s=W)
        alerts = run(rollup, batch([10.0, 50.0, W]))
        assert len(alerts) == 2
        first, second = alerts
        assert (first.window_start_s, first.window_end_s) == (0.0, W)
        assert first.n_samples == 2
        assert (second.window_start_s, second.window_end_s) == (W, 2 * W)
        assert second.n_samples == 1

    def test_edge_sample_counted_exactly_once(self):
        """Total samples across all emitted windows equals samples fed."""
        times = [0.0, W / 2, W, 3 * W / 2, 2 * W, 2 * W + 1.0]
        rollup = WindowedRollup(POWER_STREAM, window_s=W)
        alerts = run(rollup, batch(times))
        assert sum(a.n_samples for a in alerts) == len(times)
        assert [a.window_start_s for a in alerts] == [0.0, W, 2 * W]

    def test_windows_are_start_inclusive_end_exclusive(self):
        rollup = WindowedRollup(POWER_STREAM, window_s=W)
        alerts = run(rollup, batch([W, 2 * W - 1e-9]), batch([2 * W]))
        assert len(alerts) == 2
        assert alerts[0].n_samples == 2  # both samples in [W, 2W)
        assert alerts[1].n_samples == 1  # the edge sample alone in [2W, 3W)


class TestFinishSemantics:
    def test_no_empty_window_when_batch_ends_on_boundary(self):
        """A batch whose last sample opens a fresh window must yield that
        window once from finish() — never an extra zero-count window."""
        rollup = WindowedRollup(POWER_STREAM, window_s=W)
        mid = rollup.process(batch([10.0, W]))
        assert len(mid) == 1
        tail = rollup.finish()
        assert len(tail) == 1
        assert tail[0].n_samples == 1
        assert tail[0].window_start_s == W

    def test_finish_without_samples_emits_nothing(self):
        assert WindowedRollup(POWER_STREAM, window_s=W).finish() == []

    def test_finish_is_idempotent(self):
        rollup = WindowedRollup(POWER_STREAM, window_s=W)
        rollup.process(batch([10.0]))
        assert len(rollup.finish()) == 1
        assert rollup.finish() == []

    def test_every_emitted_window_is_nonempty(self):
        rng = np.random.default_rng(5)
        times = np.sort(rng.uniform(0.0, 40 * W, size=300))
        times = np.unique(times)
        rollup = WindowedRollup(POWER_STREAM, window_s=W)
        alerts = run(rollup, batch(times))
        assert all(a.n_samples >= 1 for a in alerts)
        assert sum(a.n_samples for a in alerts) == len(times)

    def test_windows_closed_counter_matches_alerts(self):
        rollup = WindowedRollup(POWER_STREAM, window_s=W)
        alerts = run(rollup, batch([0.0, W, 2 * W]))
        assert rollup.windows_closed == len(alerts) == 3


class TestConfigValidation:
    @pytest.mark.parametrize("window_s", [0.0, -1.0])
    def test_nonpositive_window_rejected(self, window_s):
        with pytest.raises(MonitoringError):
            WindowedRollup(POWER_STREAM, window_s=window_s)
