"""Supervised pipeline tests: admission control and dead-lettering, crash
isolation with backoff/quarantine, staleness watchdogs and degraded-mode
advice, and the accounting identity under chaos."""

import numpy as np
import pytest

from repro.errors import MonitoringError
from repro.live.advisor import AdvisorConfig
from repro.live.alerts import (
    AdviceAlert,
    DataGapAlert,
    DeadLetterAlert,
    DegradedModeAlert,
    ProcessorCrashAlert,
    format_alert,
)
from repro.live.events import CI_STREAM, POWER_STREAM, StreamBatch
from repro.live.faults import FAULT_NAMES
from repro.live.monitor import build_monitor, run_monitor
from repro.live.processors import Processor
from repro.live.replay import build_scenario, scenario_sources
from repro.live.supervisor import (
    DeadLetterStore,
    SupervisedPipeline,
    SupervisorConfig,
)

DAY = 86_400.0


def make_batch(stream=POWER_STREAM, t0=0.0, n=8, value=3220.0, dt=10.0):
    times = t0 + dt * np.arange(n)
    return StreamBatch(stream, times, np.full(n, float(value)))


class Recorder(Processor):
    """Counts what it receives; never alerts."""

    def __init__(self, stream):
        super().__init__(stream)
        self.samples = 0

    def process(self, batch):
        self.samples += len(batch)
        return []


class Flaky(Processor):
    """Raises whenever a batch reaches one of the scheduled crash times."""

    def __init__(self, stream, crash_times):
        super().__init__(stream)
        self.crash_times = list(crash_times)
        self.samples = 0

    def process(self, batch):
        if self.crash_times and batch.t_end_s >= self.crash_times[0]:
            self.crash_times.pop(0)
            raise RuntimeError("synthetic processor fault")
        self.samples += len(batch)
        return []


class TestAdmissionControl:
    def run_batches(self, batches, **cfg_kwargs):
        pipeline = SupervisedPipeline(
            supervisor_config=SupervisorConfig(**cfg_kwargs)
        )
        recorder = Recorder(POWER_STREAM)
        pipeline.add_processor(recorder)
        report = pipeline.run(batches)
        return pipeline, recorder, report

    def test_duplicate_batch_dead_lettered(self):
        first = make_batch(t0=0.0)
        pipeline, recorder, report = self.run_batches([first, first])
        assert recorder.samples == 8
        metrics = report.metrics
        assert metrics.samples_in[POWER_STREAM] == 16
        assert metrics.samples_dead_lettered[POWER_STREAM] == 8
        assert metrics.reconciles()
        (alert,) = report.alerts_of(DeadLetterAlert)
        assert "out-of-order or duplicate" in alert.reason
        assert "DEAD LETTER" in format_alert(alert)

    def test_out_of_order_batch_dead_lettered(self):
        late = make_batch(t0=0.0)
        pipeline, recorder, report = self.run_batches([make_batch(t0=1000.0), late])
        assert report.metrics.batches_dead_lettered[POWER_STREAM] == 1
        assert pipeline.dead_letters.total_samples == 8

    def test_unknown_stream_dead_lettered_not_fatal(self):
        batches = [make_batch(t0=0.0), make_batch(stream="rogue", t0=5.0)]
        pipeline, recorder, report = self.run_batches(batches)
        assert report.metrics.samples_dead_lettered["rogue"] == 8
        assert report.metrics.reconciles()

    def test_nonfinite_values_sanitised_to_nan(self):
        batch = StreamBatch(
            POWER_STREAM, [0.0, 1.0, 2.0], [3220.0, np.inf, -np.inf]
        )
        pipeline, recorder, report = self.run_batches([batch])
        assert report.metrics.samples_sanitised[POWER_STREAM] == 2
        assert recorder.samples == 3  # sanitised, not shed

    def test_dead_letter_store_bounded_but_totals_keep_counting(self):
        store = DeadLetterStore(capacity=2)
        for i in range(5):
            store.add(make_batch(t0=i * 1000.0), "test")
        assert len(store.entries) == 2
        assert store.total_batches == 5
        assert store.total_samples == 40

    def test_config_validation(self):
        with pytest.raises(MonitoringError):
            SupervisorConfig(max_restarts=-1)
        with pytest.raises(MonitoringError):
            SupervisorConfig(backoff_multiplier=0.5)
        with pytest.raises(MonitoringError):
            SupervisorConfig(dead_letter_capacity=0)


class TestCrashIsolation:
    def build(self, crash_times, **cfg_kwargs):
        cfg = SupervisorConfig(
            seed=1, backoff_base_s=3600.0, backoff_jitter_fraction=0.0, **cfg_kwargs
        )
        pipeline = SupervisedPipeline(supervisor_config=cfg)
        flaky = Flaky(POWER_STREAM, crash_times)
        healthy = Recorder(POWER_STREAM)
        pipeline.add_processor(flaky)
        pipeline.add_processor(healthy)
        return pipeline, flaky, healthy

    def flow(self, hours=10):
        return [make_batch(t0=h * 3600.0, n=6, dt=60.0) for h in range(hours)]

    def test_crash_is_isolated_from_healthy_processors(self):
        pipeline, flaky, healthy = self.build([2 * 3600.0])
        report = pipeline.run(self.flow())
        assert healthy.samples == 60  # untouched by its neighbour's crash
        (alert,) = report.alerts_of(ProcessorCrashAlert)
        assert alert.crashes == 1 and not alert.quarantined
        assert "synthetic processor fault" in alert.error
        assert report.metrics.reconciles()

    def test_backoff_skips_batches_then_restarts(self):
        pipeline, flaky, healthy = self.build([2 * 3600.0])
        report = pipeline.run(self.flow())
        # Crash at hour 2; backoff 1h ⇒ restarted in time for the hour-3 batch.
        assert report.metrics.processor_restarts == {"power_kw:Flaky": 1}
        assert flaky.samples == healthy.samples - 6  # lost only the crash batch

    def test_backoff_grows_exponentially(self):
        pipeline, flaky, healthy = self.build(
            [2 * 3600.0, 4 * 3600.0], max_restarts=5
        )
        report = pipeline.run(self.flow(hours=20))
        first, second = report.alerts_of(ProcessorCrashAlert)
        assert (second.retry_at_s - second.time_s) == pytest.approx(
            2 * (first.retry_at_s - first.time_s)
        )

    def test_quarantine_after_max_restarts(self):
        pipeline, flaky, healthy = self.build(
            [h * 3600.0 for h in (1, 3, 5, 7)], max_restarts=2
        )
        report = pipeline.run(self.flow(hours=12))
        crashes = report.alerts_of(ProcessorCrashAlert)
        assert [c.quarantined for c in crashes] == [False, False, True]
        assert report.metrics.processors_quarantined == ["power_kw:Flaky"]
        last = crashes[-1]
        assert last.retry_at_s == np.inf
        assert "QUARANTINED" in format_alert(last)
        # Healthy neighbour still processed the entire stream.
        assert healthy.samples == 72

    def test_jitter_is_seeded_and_deterministic(self):
        def retry(seed):
            cfg = SupervisorConfig(seed=seed, backoff_jitter_fraction=0.5)
            pipeline = SupervisedPipeline(supervisor_config=cfg)
            pipeline.add_processor(Flaky(POWER_STREAM, [3600.0]))
            report = pipeline.run(self.flow(hours=3))
            return report.alerts_of(ProcessorCrashAlert)[0].retry_at_s

        assert retry(3) == retry(3)
        assert retry(3) != retry(4)

    def test_crashing_finish_is_isolated(self):
        class FinishBomb(Recorder):
            def finish(self):
                raise ValueError("finish exploded")

        cfg = SupervisorConfig(seed=0)
        pipeline = SupervisedPipeline(supervisor_config=cfg)
        pipeline.add_processor(FinishBomb(POWER_STREAM))
        report = pipeline.run([make_batch()])
        (alert,) = report.alerts_of(ProcessorCrashAlert)
        assert "finish exploded" in alert.error


class TestStalenessWatchdog:
    def run_scenario(
        self, power_hours, ci_hours, timeout_h=2.0, policy="flag", shift_hour=None
    ):
        cfg = SupervisorConfig(seed=0, staleness_timeout_s=timeout_h * 3600.0)
        pipeline, detector, tracker, advisor = build_monitor(
            supervisor_config=cfg,
            advisor_config=AdvisorConfig(degraded_policy=policy),
        )
        power = [
            make_batch(
                POWER_STREAM,
                t0=h * 3600.0,
                n=60,
                dt=60.0,
                value=3220.0 if shift_hour is None or h < shift_hour else 2500.0,
            )
            for h in power_hours
        ]
        ci = [
            make_batch(CI_STREAM, t0=h * 3600.0 + 1.0, n=4, dt=880.0, value=150.0)
            for h in ci_hours
        ]
        return pipeline.run(power, ci), advisor

    def test_gap_detected_and_recovery_announced(self):
        report, advisor = self.run_scenario(
            power_hours=range(12), ci_hours=[0, 1, 2, 9, 10, 11]
        )
        gaps = report.alerts_of(DataGapAlert)
        assert [g.recovered for g in gaps] == [False, True]
        assert gaps[0].stream == CI_STREAM
        assert report.metrics.data_gaps_detected == {CI_STREAM: 1}
        assert "DATA GAP" in format_alert(gaps[0])

    def test_degraded_mode_entered_and_left(self):
        report, advisor = self.run_scenario(
            power_hours=range(12), ci_hours=[0, 1, 2, 9, 10, 11]
        )
        modes = report.alerts_of(DegradedModeAlert)
        assert [m.entered for m in modes] == [True, False]
        assert modes[0].stale_streams == (CI_STREAM,)
        assert not advisor.degraded  # recovered by end of run

    def test_degraded_advice_is_confidence_flagged(self):
        report, advisor = self.run_scenario(
            power_hours=range(24), ci_hours=[0, 1, 2], shift_hour=12
        )
        advice = report.alerts_of(AdviceAlert)
        assert advice, "expected advice from the regime classification"
        degraded = [a for a in advice if a.confidence == "degraded"]
        assert degraded, "level shifts while CI is stale must be flagged"
        assert "[DEGRADED]" in format_alert(degraded[0])

    def test_suppress_policy_emits_no_degraded_advice(self):
        report, advisor = self.run_scenario(
            power_hours=range(24), ci_hours=[0, 1, 2], policy="suppress",
            shift_hour=12,
        )
        advice = report.alerts_of(AdviceAlert)
        assert advice, "pre-degradation advice still expected"
        assert all(a.confidence == "normal" for a in advice)

    def test_trailing_gap_detected_for_truncated_stream(self):
        report, advisor = self.run_scenario(
            power_hours=range(12), ci_hours=[0, 1, 2]
        )
        gaps = report.alerts_of(DataGapAlert)
        assert gaps and gaps[-1].stream == CI_STREAM
        assert not gaps[-1].recovered


class TestChaosSoak:
    @pytest.mark.parametrize("fault", list(FAULT_NAMES))
    def test_single_fault_survives_and_reconciles(self, fault):
        scenario = build_scenario("fig2", duration_days=10, seed=2)
        outcome = run_monitor(
            scenario,
            batch_size=256,
            faults=[fault],
            fault_seed=11,
            supervisor_config=SupervisorConfig(seed=1),
        )
        metrics = outcome.report.metrics
        assert metrics.reconciles(), f"{fault}: accounting identity broken"
        assert metrics.total_samples_in > 0

    def test_composed_suite_survives_and_reconciles(self):
        scenario = build_scenario("fig2", duration_days=15, seed=2)
        outcome = run_monitor(
            scenario,
            batch_size=256,
            faults=list(FAULT_NAMES),
            fault_seed=29,
            supervisor_config=SupervisorConfig(seed=1),
        )
        metrics = outcome.report.metrics
        assert metrics.reconciles()
        assert isinstance(outcome.pipeline, SupervisedPipeline)
        # The chaos suite actually exercised the defences.
        assert metrics.total_samples_dead_lettered > 0
        assert sum(metrics.data_gaps_detected.values()) > 0

    def test_plain_pipeline_still_strict(self):
        """Without a supervisor the duplicate fault is fatal, as documented."""
        first = make_batch(t0=0.0)
        from repro.live.pipeline import MonitorPipeline

        pipeline = MonitorPipeline()
        pipeline.add_processor(Recorder(POWER_STREAM))
        with pytest.raises(MonitoringError):
            pipeline.run([first, make_batch(t0=first.t_end_s)])
