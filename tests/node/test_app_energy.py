"""Application-on-node evaluation tests — the Tables 3/4 engine."""

import pytest

from repro.node.app_energy import compare_points, evaluate_app
from repro.node.determinism import DeterminismMode
from repro.node.pstates import FrequencySetting
from repro.workload.applications import (
    paper_bios_benchmarks,
    paper_frequency_benchmarks,
)


@pytest.fixture(scope="module")
def freq_apps():
    return paper_frequency_benchmarks()


class TestEvaluateApp:
    def test_reference_point_time_ratio_one(self, node_model, freq_apps):
        app = freq_apps["VASP CdTe"]
        run = evaluate_app(
            app, FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.POWER, node_model
        )
        assert run.time_ratio == pytest.approx(1.0)

    def test_lower_frequency_stretches_time(self, node_model, freq_apps):
        app = freq_apps["LAMMPS Ethanol"]
        run = evaluate_app(
            app, FrequencySetting.GHZ_2_0, DeterminismMode.POWER, node_model
        )
        assert run.time_ratio > 1.3  # ~26 % perf loss

    def test_power_between_idle_and_max(self, node_model, freq_apps):
        for app in freq_apps.values():
            for setting in FrequencySetting:
                run = evaluate_app(
                    app, setting, DeterminismMode.PERFORMANCE, node_model
                )
                assert node_model.idle_power_w < run.node_power_w <= node_model.max_power_w()


class TestComparePoints:
    def test_compare_different_apps_rejected(self, node_model, freq_apps):
        a = evaluate_app(
            freq_apps["VASP CdTe"],
            FrequencySetting.GHZ_2_0,
            DeterminismMode.POWER,
            node_model,
        )
        b = evaluate_app(
            freq_apps["LAMMPS Ethanol"],
            FrequencySetting.GHZ_2_25_TURBO,
            DeterminismMode.POWER,
            node_model,
        )
        with pytest.raises(ValueError):
            compare_points(a, b)

    def test_self_comparison_is_unity(self, node_model, freq_apps):
        app = freq_apps["CASTEP Al Slab"]
        run = evaluate_app(
            app, FrequencySetting.GHZ_2_0, DeterminismMode.POWER, node_model
        )
        pair = compare_points(run, run)
        assert pair.perf_ratio == pytest.approx(1.0)
        assert pair.energy_ratio == pytest.approx(1.0)

    def test_power_ratio_identity(self, node_model, freq_apps):
        app = freq_apps["GROMACS 1400k"]
        base = evaluate_app(
            app, FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.PERFORMANCE, node_model
        )
        cand = evaluate_app(
            app, FrequencySetting.GHZ_2_0, DeterminismMode.PERFORMANCE, node_model
        )
        pair = compare_points(cand, base)
        assert pair.power_ratio == pytest.approx(
            cand.node_power_w / base.node_power_w
        )


class TestTable4Reproduction:
    """Perf ratios must match the paper (they calibrate the profiles);
    energy ratios are model predictions that must stay in the paper's band."""

    def test_perf_ratios_match_paper(self, node_model, freq_apps):
        for app in freq_apps.values():
            base = evaluate_app(
                app,
                FrequencySetting.GHZ_2_25_TURBO,
                DeterminismMode.PERFORMANCE,
                node_model,
            )
            cand = evaluate_app(
                app, FrequencySetting.GHZ_2_0, DeterminismMode.PERFORMANCE, node_model
            )
            pair = compare_points(cand, base)
            assert pair.perf_ratio == pytest.approx(app.paper_perf_ratio, abs=0.015)

    def test_every_app_saves_energy_at_2ghz(self, node_model, freq_apps):
        """Paper: 'All the application benchmarks are more energy efficient
        at 2.0 GHz'."""
        for app in freq_apps.values():
            base = evaluate_app(
                app,
                FrequencySetting.GHZ_2_25_TURBO,
                DeterminismMode.PERFORMANCE,
                node_model,
            )
            cand = evaluate_app(
                app, FrequencySetting.GHZ_2_0, DeterminismMode.PERFORMANCE, node_model
            )
            assert compare_points(cand, base).energy_ratio < 1.0

    def test_energy_ratios_in_paper_band(self, node_model, freq_apps):
        """Paper band: 7-20 % savings. Allow modest model slack."""
        for app in freq_apps.values():
            base = evaluate_app(
                app,
                FrequencySetting.GHZ_2_25_TURBO,
                DeterminismMode.PERFORMANCE,
                node_model,
            )
            cand = evaluate_app(
                app, FrequencySetting.GHZ_2_0, DeterminismMode.PERFORMANCE, node_model
            )
            assert 0.75 < compare_points(cand, base).energy_ratio < 0.99


class TestTable3Reproduction:
    def test_bios_change_negligible_perf_cost(self, node_model):
        """Paper Table 3: perf ratios 0.99-1.00."""
        for app in paper_bios_benchmarks().values():
            base = evaluate_app(
                app, FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.POWER, node_model
            )
            cand = evaluate_app(
                app,
                FrequencySetting.GHZ_2_25_TURBO,
                DeterminismMode.PERFORMANCE,
                node_model,
            )
            pair = compare_points(cand, base)
            assert pair.perf_ratio >= 0.985

    def test_bios_change_saves_energy(self, node_model):
        """Paper Table 3: energy ratios 0.90-0.94."""
        for app in paper_bios_benchmarks().values():
            base = evaluate_app(
                app, FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.POWER, node_model
            )
            cand = evaluate_app(
                app,
                FrequencySetting.GHZ_2_25_TURBO,
                DeterminismMode.PERFORMANCE,
                node_model,
            )
            pair = compare_points(cand, base)
            assert 0.88 < pair.energy_ratio < 0.96
