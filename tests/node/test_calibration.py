"""Node calibration fit tests."""

import pytest

from repro.node.calibration import (
    LOADED_NODE_ANCHOR_W,
    build_node_model,
    fit_node_constants,
)


@pytest.fixture(scope="module")
def fit():
    return fit_node_constants()


class TestBuildNodeModel:
    def test_default_model(self):
        model = build_node_model()
        assert model.idle_power_w == 230.0

    def test_custom_constants_threaded(self):
        from repro.node.node_power import NodePowerConstants

        model = build_node_model(NodePowerConstants(idle_w=250.0))
        assert model.idle_power_w == 250.0


class TestFit:
    def test_fit_converges(self, fit):
        assert fit.cost < 0.1

    def test_constants_physical(self, fit):
        c = fit.constants
        assert 150.0 <= c.cpu_dynamic_w <= 700.0
        assert 10.0 <= c.memory_dynamic_w <= 200.0
        assert 0.05 <= c.stall_activity <= 0.8
        assert 0.70 <= fit.determinism.performance_power_derate <= 1.0

    def test_residuals_labelled_per_row(self, fit):
        keys = set(fit.residuals)
        assert any(k.startswith("T4:") for k in keys)
        assert any(k.startswith("T3:") for k in keys)
        assert "T2:loaded-node-anchor" in keys

    def test_anchor_respected(self, fit):
        """Fitted loaded-node power stays near the Table 2 anchor."""
        assert abs(fit.residuals["T2:loaded-node-anchor"]) < 0.05

    def test_max_residual_modest(self, fit):
        """The worst row (the Nektar++/ONETEP outliers) stays within ~0.12
        of the paper's energy ratio; typical rows are far closer."""
        assert fit.max_abs_residual < 0.15

    def test_typical_residuals_small(self, fit):
        t4 = [abs(v) for k, v in fit.residuals.items() if k.startswith("T4:")]
        t4.sort()
        # At least four of seven Table 4 rows within 0.05.
        assert sum(1 for r in t4 if r < 0.05) >= 4

    def test_fitted_model_keeps_anchor_power(self, fit):
        model = build_node_model(fit.constants, fit.determinism)
        from repro.node.determinism import DeterminismMode
        from repro.node.pstates import FrequencySetting

        point = model.cpu.operating_point(
            FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.POWER
        )
        power = float(model.busy_power_w(point, 0.3, 0.7))
        assert power == pytest.approx(LOADED_NODE_ANCHOR_W, rel=0.05)
