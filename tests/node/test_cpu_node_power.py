"""CPU operating-point and node power model tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.node.cpu import CpuModel
from repro.node.determinism import DeterminismMode
from repro.node.node_power import NodePowerConstants, NodePowerModel
from repro.node.pstates import FrequencySetting


@pytest.fixture(scope="module")
def cpu():
    return CpuModel()


@pytest.fixture(scope="module")
def power_model():
    return NodePowerModel()


class TestOperatingPoints:
    def test_turbo_power_determinism_hits_2_8(self, cpu):
        """§4.2: applications 'typically boost ... closer to 2.8 GHz'."""
        point = cpu.operating_point(
            FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.POWER
        )
        assert point.effective_ghz == pytest.approx(2.8)
        assert point.turbo_active

    def test_turbo_performance_determinism_slightly_lower(self, cpu):
        power = cpu.operating_point(
            FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.POWER
        )
        perf = cpu.operating_point(
            FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.PERFORMANCE
        )
        assert perf.effective_ghz < power.effective_ghz
        assert perf.effective_ghz / power.effective_ghz == pytest.approx(0.99)

    def test_fixed_frequencies_mode_independent(self, cpu):
        for setting in (FrequencySetting.GHZ_2_0, FrequencySetting.GHZ_1_5):
            a = cpu.operating_point(setting, DeterminismMode.POWER)
            b = cpu.operating_point(setting, DeterminismMode.PERFORMANCE)
            assert a.effective_ghz == b.effective_ghz
            assert not a.turbo_active

    def test_reference_is_max_boost(self, cpu):
        assert cpu.reference_ghz == pytest.approx(2.8)

    def test_dynamic_scale_below_one_at_2ghz(self, cpu):
        point = cpu.operating_point(FrequencySetting.GHZ_2_0, DeterminismMode.POWER)
        assert cpu.dynamic_scale(point) < 0.6


class TestNodePowerModel:
    def test_idle_power_matches_table2(self, power_model):
        assert power_model.idle_power_w == pytest.approx(230.0)

    def test_typical_loaded_near_table2(self, power_model):
        """A 30/70 compute/memory mix at the reference point lands near the
        Table 2 loaded figure of 510 W."""
        point = power_model.cpu.operating_point(
            FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.POWER
        )
        power = power_model.busy_power_w(point, 0.3, 0.7)
        assert power == pytest.approx(510.0, rel=0.03)

    def test_idle_fraction_near_half(self, power_model):
        """§5: idle nodes draw ~50 % of a loaded node."""
        assert power_model.idle_fraction() == pytest.approx(0.5, abs=0.1)

    def test_compute_bound_draws_more_than_memory_bound(self, power_model):
        point = power_model.cpu.operating_point(
            FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.POWER
        )
        compute = power_model.busy_power_w(point, 1.0, 0.0)
        memory = power_model.busy_power_w(point, 0.0, 1.0)
        assert compute > memory > power_model.idle_power_w

    def test_lower_frequency_lower_power(self, power_model):
        high = power_model.busy_power_at(
            FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.POWER, 0.5, 0.5
        )
        low = power_model.busy_power_at(
            FrequencySetting.GHZ_2_0, DeterminismMode.POWER, 0.5, 0.5
        )
        lowest = power_model.busy_power_at(
            FrequencySetting.GHZ_1_5, DeterminismMode.POWER, 0.5, 0.5
        )
        assert high > low > lowest > power_model.idle_power_w

    def test_performance_determinism_cuts_power(self, power_model):
        power = power_model.busy_power_at(
            FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.POWER, 0.3, 0.7
        )
        perf = power_model.busy_power_at(
            FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.PERFORMANCE, 0.3, 0.7
        )
        assert 0.90 < perf / power < 0.97

    def test_vectorised_activities(self, power_model):
        point = power_model.cpu.operating_point(
            FrequencySetting.GHZ_2_0, DeterminismMode.POWER
        )
        a_c = np.array([0.1, 0.5, 0.9])
        a_m = np.array([0.9, 0.5, 0.1])
        out = power_model.busy_power_w(point, a_c, a_m)
        assert isinstance(out, np.ndarray)
        assert np.all(np.diff(out) > 0)  # more compute activity, more power

    def test_activities_exceeding_one_rejected(self, power_model):
        point = power_model.cpu.operating_point(
            FrequencySetting.GHZ_2_0, DeterminismMode.POWER
        )
        with pytest.raises(ConfigurationError):
            power_model.busy_power_w(point, 0.7, 0.5)

    def test_negative_activity_rejected(self, power_model):
        point = power_model.cpu.operating_point(
            FrequencySetting.GHZ_2_0, DeterminismMode.POWER
        )
        with pytest.raises(ConfigurationError):
            power_model.busy_power_w(point, -0.1, 0.5)

    def test_max_power_above_loaded_anchor(self, power_model):
        """Fully compute-active exceeds the mix-typical 510 W figure."""
        assert power_model.max_power_w() > 510.0

    def test_constants_validation(self):
        with pytest.raises(Exception):
            NodePowerConstants(idle_w=-1.0)
        with pytest.raises(Exception):
            NodePowerConstants(stall_activity=1.5)
