"""BIOS determinism model tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, UnitError
from repro.node.determinism import DeterminismMode, DeterminismModel


@pytest.fixture
def model():
    return DeterminismModel()


class TestPowerFactor:
    def test_power_mode_draws_full_envelope(self, model):
        assert model.dynamic_power_factor(DeterminismMode.POWER) == 1.0

    def test_performance_mode_derates(self, model):
        factor = model.dynamic_power_factor(DeterminismMode.PERFORMANCE)
        assert 0.8 < factor < 0.95

    def test_boost_factor_power_mode(self, model):
        assert model.boost_factor(DeterminismMode.POWER) == 1.0

    def test_boost_factor_performance_mode_small_cost(self, model):
        """§4.1: the performance cost of Performance Determinism is ~1 %."""
        factor = model.boost_factor(DeterminismMode.PERFORMANCE)
        assert 0.98 <= factor < 1.0


class TestPartVariation:
    def test_performance_mode_is_deterministic(self, model, rng):
        """The mode's defining property: zero part-to-part spread."""
        spread = model.fleet_performance_spread(
            DeterminismMode.PERFORMANCE, 1000, rng
        )
        assert spread == 0.0

    def test_power_mode_has_spread(self, model, rng):
        spread = model.fleet_performance_spread(DeterminismMode.POWER, 1000, rng)
        assert spread > 0.0

    def test_power_mode_mean_near_one(self, model, rng):
        parts = model.sample_part_performance(DeterminismMode.POWER, 20_000, rng)
        assert parts.mean() == pytest.approx(1.0, abs=0.002)

    def test_power_mode_beats_performance_mode_on_average(self, model, rng):
        """Power determinism lets good parts run faster: fleet mean perf is
        higher than the derated deterministic level."""
        power_parts = model.sample_part_performance(DeterminismMode.POWER, 5000, rng)
        perf_parts = model.sample_part_performance(
            DeterminismMode.PERFORMANCE, 5000, rng
        )
        assert power_parts.mean() > perf_parts.mean()

    def test_spread_clipped_at_three_sigma(self, model, rng):
        parts = model.sample_part_performance(DeterminismMode.POWER, 50_000, rng)
        assert np.all(parts >= 1.0 - 3 * model.part_sigma - 1e-12)
        assert np.all(parts <= 1.0 + 3 * model.part_sigma + 1e-12)

    def test_zero_parts_rejected(self, model, rng):
        with pytest.raises(ConfigurationError):
            model.sample_part_performance(DeterminismMode.POWER, 0, rng)


class TestValidation:
    def test_boost_derate_above_one_rejected(self):
        with pytest.raises(ConfigurationError):
            DeterminismModel(performance_boost_derate=1.01)

    def test_power_derate_above_one_rejected(self):
        with pytest.raises(UnitError):
            DeterminismModel(performance_power_derate=1.2)

    def test_negative_sigma_rejected(self):
        with pytest.raises(UnitError):
            DeterminismModel(part_sigma=-0.01)
