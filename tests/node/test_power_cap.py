"""Node power-cap tests."""

import pytest

from repro.errors import ConfigurationError
from repro.node.power_cap import cap_comparison, effective_frequency_under_cap
from repro.workload.applications import paper_frequency_benchmarks


@pytest.fixture(scope="module")
def apps():
    return paper_frequency_benchmarks()


class TestEffectiveFrequency:
    def test_generous_cap_uncapped(self, node_model, apps):
        result = effective_frequency_under_cap(apps["VASP CdTe"], 800.0, node_model)
        assert not result.throttled
        assert result.perf_ratio == 1.0
        assert result.effective_ghz == pytest.approx(2.8 * 0.99)

    def test_tight_cap_throttles(self, node_model, apps):
        result = effective_frequency_under_cap(apps["LAMMPS Ethanol"], 400.0, node_model)
        assert result.throttled
        assert result.effective_ghz < 2.7
        assert result.perf_ratio < 1.0

    def test_power_respects_cap(self, node_model, apps):
        for name in ("LAMMPS Ethanol", "CASTEP Al Slab", "GROMACS 1400k"):
            result = effective_frequency_under_cap(apps[name], 420.0, node_model)
            assert result.node_power_w <= 420.0 + 0.5

    def test_bisection_tight(self, node_model, apps):
        """The found frequency sits at the cap boundary (within tolerance)."""
        result = effective_frequency_under_cap(apps["LAMMPS Ethanol"], 450.0, node_model)
        assert result.node_power_w == pytest.approx(450.0, abs=2.0)

    def test_infeasible_cap_rejected(self, node_model, apps):
        with pytest.raises(ConfigurationError, match="floor"):
            effective_frequency_under_cap(apps["LAMMPS Ethanol"], 250.0, node_model)

    def test_validation(self, node_model, apps):
        with pytest.raises(Exception):
            effective_frequency_under_cap(apps["VASP CdTe"], 0.0, node_model)
        with pytest.raises(ConfigurationError):
            effective_frequency_under_cap(
                apps["VASP CdTe"], 400.0, node_model, f_min_ghz=3.0
            )


class TestCapComparison:
    def test_caps_self_select_compute_bound_apps(self, node_model, apps):
        """The watts-domain Table 4: a fleet cap throttles compute-bound
        codes hard while memory-bound codes keep (nearly) full speed."""
        results = {r.app_name: r for r in cap_comparison(apps, 430.0, node_model)}
        lammps = results["LAMMPS Ethanol"]
        vasp = results["VASP CdTe"]
        assert lammps.throttled
        assert lammps.perf_ratio < 0.9
        assert vasp.perf_ratio > 0.97

    def test_looser_cap_higher_perf(self, node_model, apps):
        tight = {
            r.app_name: r.perf_ratio for r in cap_comparison(apps, 400.0, node_model)
        }
        loose = {
            r.app_name: r.perf_ratio for r in cap_comparison(apps, 500.0, node_model)
        }
        for name in tight:
            assert loose[name] >= tight[name] - 1e-9
