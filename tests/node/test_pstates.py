"""P-state and voltage/frequency curve tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.node.pstates import (
    ARCHER2_TURBO_GHZ,
    FrequencySetting,
    PState,
    PStateTable,
    VoltageFrequencyCurve,
    archer2_pstates,
)


class TestVoltageFrequencyCurve:
    def test_voltage_increases_with_frequency(self):
        curve = VoltageFrequencyCurve()
        assert curve.voltage_v(2.8) > curve.voltage_v(2.0) > curve.voltage_v(1.5)

    def test_default_voltages_plausible(self):
        curve = VoltageFrequencyCurve()
        assert 0.9 < curve.voltage_v(2.0) < 1.05
        assert 1.1 < curve.voltage_v(2.8) < 1.25

    def test_dynamic_scale_is_one_at_reference(self):
        curve = VoltageFrequencyCurve()
        assert curve.dynamic_scale(2.8, 2.8) == pytest.approx(1.0)

    def test_dynamic_scale_at_2ghz_near_half(self):
        """The core DVFS mechanism: ~2x dynamic-power saving at 2.0 GHz."""
        curve = VoltageFrequencyCurve()
        scale = curve.dynamic_scale(2.0, 2.8)
        assert 0.4 < scale < 0.6

    def test_dynamic_scale_monotone(self):
        curve = VoltageFrequencyCurve()
        freqs = np.array([1.5, 2.0, 2.25, 2.8])
        scales = curve.dynamic_scale(freqs, 2.8)
        assert np.all(np.diff(scales) > 0)

    def test_array_input_returns_array(self):
        curve = VoltageFrequencyCurve()
        out = curve.voltage_v(np.array([1.5, 2.0]))
        assert isinstance(out, np.ndarray)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            VoltageFrequencyCurve().voltage_v(0.0)


class TestPState:
    def test_turbo_needs_boost_target(self):
        with pytest.raises(ConfigurationError):
            PState(FrequencySetting.GHZ_2_25_TURBO, 2.25, turbo=True)

    def test_boost_below_base_rejected(self):
        with pytest.raises(ConfigurationError):
            PState(
                FrequencySetting.GHZ_2_25_TURBO, 2.25, turbo=True, max_boost_ghz=2.0
            )

    def test_non_turbo_cannot_boost(self):
        with pytest.raises(ConfigurationError):
            PState(FrequencySetting.GHZ_2_0, 2.0, max_boost_ghz=2.4)

    def test_effective_frequency(self):
        turbo = PState(
            FrequencySetting.GHZ_2_25_TURBO, 2.25, turbo=True, max_boost_ghz=2.8
        )
        fixed = PState(FrequencySetting.GHZ_2_0, 2.0)
        assert turbo.effective_ghz == 2.8
        assert fixed.effective_ghz == 2.0


class TestPStateTable:
    def test_archer2_has_three_settings(self):
        table = archer2_pstates()
        assert len(table) == 3
        assert set(table.settings) == set(FrequencySetting)

    def test_max_effective_is_turbo(self):
        assert archer2_pstates().max_effective_ghz == ARCHER2_TURBO_GHZ

    def test_lookup(self):
        table = archer2_pstates()
        assert table.get(FrequencySetting.GHZ_2_0).frequency_ghz == 2.0

    def test_empty_table_rejected(self):
        with pytest.raises(ConfigurationError):
            PStateTable([])

    def test_duplicate_setting_rejected(self):
        with pytest.raises(ConfigurationError):
            PStateTable(
                [
                    PState(FrequencySetting.GHZ_2_0, 2.0),
                    PState(FrequencySetting.GHZ_2_0, 2.0),
                ]
            )

    def test_missing_setting_raises(self):
        table = PStateTable([PState(FrequencySetting.GHZ_2_0, 2.0)])
        with pytest.raises(ConfigurationError):
            table.get(FrequencySetting.GHZ_1_5)

    def test_custom_turbo_target(self):
        table = archer2_pstates(turbo_ghz=3.0)
        assert table.max_effective_ghz == 3.0
