"""Thermal/leakage model tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.node.thermal import ThermalModel, sweep_coolant_setpoint


@pytest.fixture(scope="module")
def thermal():
    return ThermalModel()


class TestJunctionTemperature:
    def test_rises_with_coolant(self, thermal):
        assert thermal.junction_temperature_c(40.0, 500.0) > thermal.junction_temperature_c(
            20.0, 500.0
        )

    def test_rises_with_power(self, thermal):
        assert thermal.junction_temperature_c(30.0, 600.0) > thermal.junction_temperature_c(
            30.0, 300.0
        )

    def test_formula(self, thermal):
        assert thermal.junction_temperature_c(25.0, 500.0) == pytest.approx(
            25.0 + 0.06 * 500.0
        )

    def test_vectorised(self, thermal):
        out = thermal.junction_temperature_c(np.array([20.0, 40.0]), 500.0)
        assert isinstance(out, np.ndarray)
        assert out[1] > out[0]


class TestLeakage:
    def test_reference_point(self, thermal):
        assert thermal.leakage_w(60.0) == pytest.approx(35.0)

    def test_exponential_growth(self, thermal):
        """+25 °C (one t_slope) multiplies leakage by e."""
        assert thermal.leakage_w(85.0) / thermal.leakage_w(60.0) == pytest.approx(
            np.e, rel=1e-9
        )

    def test_monotone(self, thermal):
        temps = np.array([40.0, 60.0, 80.0, 95.0])
        leaks = thermal.leakage_w(temps)
        assert np.all(np.diff(leaks) > 0)


class TestFixedPoint:
    def test_total_exceeds_dynamic(self, thermal):
        total = thermal.solve_node_power_w(30.0, 450.0)
        assert total > 450.0 + 30.0  # dynamic + meaningful leakage

    def test_self_consistency(self, thermal):
        total = thermal.solve_node_power_w(30.0, 450.0)
        t_j = thermal.junction_temperature_c(30.0, total)
        assert total == pytest.approx(450.0 + thermal.leakage_w(t_j), abs=0.1)

    def test_warmer_coolant_more_total_power(self, thermal):
        cold = thermal.solve_node_power_w(20.0, 450.0)
        warm = thermal.solve_node_power_w(45.0, 450.0)
        assert warm > cold

    def test_zero_dynamic_gives_idle_leakage(self, thermal):
        total = thermal.solve_node_power_w(30.0, 0.0)
        assert 0 < total < 100.0

    def test_negative_dynamic_rejected(self, thermal):
        with pytest.raises(ConfigurationError):
            thermal.solve_node_power_w(30.0, -1.0)

    def test_limits_check(self, thermal):
        assert thermal.within_limits(30.0, 500.0)
        assert not thermal.within_limits(80.0, 500.0)


class TestCoolantSweep:
    def test_free_cooling_flag(self, thermal):
        sweep = sweep_coolant_setpoint(
            thermal, 450.0, np.array([15.0, 27.0, 40.0]), free_cooling_threshold_c=27.0
        )
        assert not sweep[0].free_cooling
        assert sweep[1].free_cooling
        assert sweep[2].free_cooling

    def test_chiller_overhead_dominates_cold(self, thermal):
        sweep = sweep_coolant_setpoint(thermal, 450.0, np.array([15.0, 30.0]))
        assert (
            sweep[0].cooling_overhead_w_per_node
            > sweep[1].cooling_overhead_w_per_node
        )

    def test_optimum_at_or_above_threshold(self, thermal):
        """The warm-water design point: total power is minimised at the
        free-cooling edge, not at the coldest (chillers) nor the hottest
        (leakage) set-point."""
        temps = np.arange(10.0, 50.0, 1.0)
        sweep = sweep_coolant_setpoint(thermal, 450.0, temps)
        totals = [s.total_w_per_node for s in sweep]
        best = sweep[int(np.argmin(totals))]
        assert 26.0 <= best.coolant_c <= 32.0
        assert best.free_cooling

    def test_leakage_grows_across_sweep(self, thermal):
        sweep = sweep_coolant_setpoint(thermal, 450.0, np.array([20.0, 30.0, 40.0]))
        leaks = [s.leakage_w for s in sweep]
        assert leaks == sorted(leaks)

    def test_validation(self, thermal):
        with pytest.raises(Exception):
            sweep_coolant_setpoint(thermal, 450.0, np.array([20.0]), chiller_cop=0.0)
        with pytest.raises(ConfigurationError):
            sweep_coolant_setpoint(thermal, 450.0, np.array([20.0]), pump_fraction=1.0)
