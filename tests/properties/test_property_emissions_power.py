"""Property-based tests: emissions accounting and node power physics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emissions import EmbodiedProfile, EmissionsModel
from repro.node.calibration import build_node_model
from repro.node.determinism import DeterminismMode
from repro.node.pstates import FrequencySetting

power_kw = st.floats(min_value=10.0, max_value=50_000.0, allow_nan=False)
embodied = st.floats(min_value=100.0, max_value=1e6, allow_nan=False)
lifetime = st.floats(min_value=1.0, max_value=20.0, allow_nan=False)
ci = st.floats(min_value=0.0, max_value=2000.0, allow_nan=False)

_MODEL = build_node_model()


class TestEmissionsProperties:
    @given(power_kw, embodied, lifetime, ci)
    @settings(max_examples=100)
    def test_shares_partition(self, p, e, life, intensity):
        model = EmissionsModel(
            embodied=EmbodiedProfile(total_tco2e=e, lifetime_years=life),
            mean_power_kw=p,
        )
        breakdown = model.annual_breakdown(intensity)
        assert 0.0 <= breakdown.scope2_share <= 1.0
        assert breakdown.total_tco2e >= breakdown.scope3_tco2e

    @given(power_kw, embodied, lifetime)
    @settings(max_examples=100)
    def test_crossover_balances(self, p, e, life):
        model = EmissionsModel(
            embodied=EmbodiedProfile(total_tco2e=e, lifetime_years=life),
            mean_power_kw=p,
        )
        crossover = model.crossover_ci_g_per_kwh()
        breakdown = model.annual_breakdown(crossover)
        assert abs(breakdown.scope2_share - 0.5) < 1e-9

    @given(power_kw, embodied, lifetime, ci, ci)
    @settings(max_examples=100)
    def test_scope2_monotone_in_ci(self, p, e, life, c1, c2):
        model = EmissionsModel(
            embodied=EmbodiedProfile(total_tco2e=e, lifetime_years=life),
            mean_power_kw=p,
        )
        lo, hi = min(c1, c2), max(c1, c2)
        assert model.scope2_tco2e_per_year(lo) <= model.scope2_tco2e_per_year(hi)

    @given(power_kw, embodied, lifetime)
    @settings(max_examples=100)
    def test_lifetime_breakdown_scales_annual(self, p, e, life):
        model = EmissionsModel(
            embodied=EmbodiedProfile(total_tco2e=e, lifetime_years=life),
            mean_power_kw=p,
        )
        annual = model.annual_breakdown(100.0)
        lifetime_bd = model.lifetime_breakdown(100.0)
        assert lifetime_bd.scope2_tco2e == annual.scope2_tco2e * life or abs(
            lifetime_bd.scope2_tco2e - annual.scope2_tco2e * life
        ) < 1e-6 * lifetime_bd.scope2_tco2e


activity_pairs = st.tuples(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
).filter(lambda pair: pair[0] + pair[1] <= 1.0)


class TestNodePowerProperties:
    @given(activity_pairs)
    @settings(max_examples=100)
    def test_power_at_least_idle(self, activities):
        a_c, a_m = activities
        for setting in FrequencySetting:
            for mode in DeterminismMode:
                power = _MODEL.busy_power_at(setting, mode, a_c, a_m)
                assert power >= _MODEL.idle_power_w - 1e-9

    @given(activity_pairs)
    @settings(max_examples=100)
    def test_performance_determinism_never_draws_more(self, activities):
        a_c, a_m = activities
        for setting in FrequencySetting:
            power = _MODEL.busy_power_at(setting, DeterminismMode.POWER, a_c, a_m)
            perf = _MODEL.busy_power_at(
                setting, DeterminismMode.PERFORMANCE, a_c, a_m
            )
            assert perf <= power + 1e-9

    @given(activity_pairs)
    @settings(max_examples=100)
    def test_frequency_monotone(self, activities):
        a_c, a_m = activities
        p15 = _MODEL.busy_power_at(FrequencySetting.GHZ_1_5, DeterminismMode.POWER, a_c, a_m)
        p20 = _MODEL.busy_power_at(FrequencySetting.GHZ_2_0, DeterminismMode.POWER, a_c, a_m)
        p28 = _MODEL.busy_power_at(
            FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.POWER, a_c, a_m
        )
        assert p15 <= p20 + 1e-9
        assert p20 <= p28 + 1e-9

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=100)
    def test_compute_activity_dominates_memory(self, x):
        """Swapping memory activity for compute activity cannot reduce power."""
        within = min(x, 1.0)
        compute_heavy = _MODEL.busy_power_at(
            FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.POWER, within, 0.0
        )
        memory_heavy = _MODEL.busy_power_at(
            FrequencySetting.GHZ_2_25_TURBO, DeterminismMode.POWER, 0.0, within
        )
        assert compute_heavy >= memory_heavy - 1e-9
