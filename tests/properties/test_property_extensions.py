"""Property-based tests for the extension modules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.carbon_aware import optimal_shift_savings
from repro.node.thermal import ThermalModel
from repro.telemetry.series import TimeSeries
from repro.workload.applications import AppProfile
from repro.workload.toolchain import Toolchain, apply_toolchain

fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
speedups = st.floats(min_value=1.0, max_value=3.0, allow_nan=False)


class TestToolchainProperties:
    @given(fractions, speedups, speedups)
    @settings(max_examples=100)
    def test_compute_fraction_stays_in_range(self, phi, s_c, s_m):
        app = AppProfile(
            name="p", research_area="x", compute_fraction=phi, typical_nodes=4
        )
        rebuilt = apply_toolchain(
            app, Toolchain(name="t", compute_speedup=s_c, memory_speedup=s_m)
        )
        assert 0.0 <= rebuilt.compute_fraction <= 1.0

    @given(fractions, speedups, speedups)
    @settings(max_examples=100)
    def test_runtime_never_grows(self, phi, s_c, s_m):
        """Speedups ≥ 1 can only shorten the runtime."""
        app = AppProfile(
            name="p", research_area="x", compute_fraction=phi, typical_nodes=4
        )
        rebuilt = apply_toolchain(
            app, Toolchain(name="t", compute_speedup=s_c, memory_speedup=s_m)
        )
        assert rebuilt.baseline_runtime_s <= app.baseline_runtime_s + 1e-9

    @given(fractions, speedups)
    @settings(max_examples=100)
    def test_compute_speedup_never_raises_sensitivity(self, phi, s_c):
        app = AppProfile(
            name="p", research_area="x", compute_fraction=phi, typical_nodes=4
        )
        rebuilt = apply_toolchain(app, Toolchain(name="t", compute_speedup=s_c))
        before = app.roofline.perf_ratio(2.0)
        after = rebuilt.roofline.perf_ratio(2.0)
        assert after >= before - 1e-9


class TestCarbonAwareProperties:
    @st.composite
    def power_and_ci(draw):
        n = draw(st.integers(min_value=24, max_value=96))
        times = 3600.0 * np.arange(n)
        power = draw(
            st.lists(
                st.floats(min_value=100.0, max_value=5000.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
        ci = draw(
            st.lists(
                st.floats(min_value=10.0, max_value=600.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
        return (
            TimeSeries(times, np.asarray(power)),
            TimeSeries(times, np.asarray(ci)),
        )

    @given(power_and_ci(), fractions)
    @settings(max_examples=60, deadline=None)
    def test_shifting_never_increases_emissions(self, series_pair, flexible):
        power, ci = series_pair
        outcome = optimal_shift_savings(power, ci, flexible)
        assert outcome.shifted_tco2e <= outcome.baseline_tco2e + 1e-9

    @given(power_and_ci())
    @settings(max_examples=40, deadline=None)
    def test_full_flexibility_bounded_by_min_ci(self, series_pair):
        """Even perfect shifting cannot beat running everything at the
        window's minimum CI."""
        power, ci = series_pair
        outcome = optimal_shift_savings(power, ci, 1.0)
        total_kwh = float(np.sum(power.values))  # hourly samples → kWh
        floor_t = total_kwh * float(ci.values.min()) / 1e6
        assert outcome.shifted_tco2e >= floor_t - 1e-9


class TestThermalProperties:
    @given(
        st.floats(min_value=10.0, max_value=45.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=800.0, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_fixed_point_self_consistent(self, coolant, dynamic):
        thermal = ThermalModel()
        total = thermal.solve_node_power_w(coolant, dynamic)
        t_junction_c = thermal.junction_temperature_c(coolant, total)
        assert abs(total - dynamic - thermal.leakage_w(t_junction_c)) < 0.05

    @given(
        st.floats(min_value=10.0, max_value=44.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=800.0, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_total_power_monotone_in_coolant(self, coolant, dynamic):
        thermal = ThermalModel()
        cold = thermal.solve_node_power_w(coolant, dynamic)
        warm = thermal.solve_node_power_w(coolant + 1.0, dynamic)
        assert warm >= cold - 1e-9
