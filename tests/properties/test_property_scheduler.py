"""Property-based tests for scheduler invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.node.calibration import build_node_model
from repro.node.determinism import DeterminismMode
from repro.scheduler.backfill import BackfillScheduler, StaticEnvironment
from repro.scheduler.partition import NodePool
from repro.workload.applications import full_catalogue
from repro.workload.jobs import Job

_APPS = list(full_catalogue().values())
_ENV = StaticEnvironment(node_model=build_node_model(), mode=DeterminismMode.POWER)


@st.composite
def job_batch(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    jobs = []
    for i in range(n):
        jobs.append(
            Job(
                job_id=i,
                app=_APPS[draw(st.integers(0, len(_APPS) - 1))],
                n_nodes=draw(st.integers(min_value=1, max_value=64)),
                submit_time_s=draw(
                    st.floats(min_value=0.0, max_value=50_000.0, allow_nan=False)
                ),
                reference_runtime_s=draw(
                    st.floats(min_value=60.0, max_value=50_000.0, allow_nan=False)
                ),
            )
        )
    return jobs


class TestSchedulerInvariants:
    @given(job_batch())
    @settings(max_examples=40, deadline=None)
    def test_capacity_never_exceeded(self, jobs):
        result = BackfillScheduler(64).run(jobs, 200_000.0, _ENV)
        assert np.all(result.trace.busy_nodes <= 64)

    @given(job_batch())
    @settings(max_examples=40, deadline=None)
    def test_causality(self, jobs):
        result = BackfillScheduler(64).run(jobs, 200_000.0, _ENV)
        for record in result.records:
            assert record.start_time_s >= record.job.submit_time_s
            assert record.end_time_s > record.start_time_s

    @given(job_batch())
    @settings(max_examples=40, deadline=None)
    def test_every_job_accounted_once(self, jobs):
        result = BackfillScheduler(64).run(jobs, 200_000.0, _ENV)
        record_ids = [r.job.job_id for r in result.records]
        assert len(record_ids) == len(set(record_ids))
        assert len(record_ids) + result.n_unstarted == len(jobs)

    @given(job_batch())
    @settings(max_examples=30, deadline=None)
    def test_energy_trace_matches_records(self, jobs):
        result = BackfillScheduler(64).run(jobs, 200_000.0, _ENV)
        from_records = sum(r.energy_j for r in result.records)
        assert result.trace.energy_j() == np.float64(from_records) or abs(
            result.trace.energy_j() - from_records
        ) <= 1e-6 * max(from_records, 1.0)

    @given(job_batch())
    @settings(max_examples=30, deadline=None)
    def test_runtime_stretch_matches_roofline(self, jobs):
        result = BackfillScheduler(64).run(jobs, 500_000.0, _ENV)
        for record in result.records:
            if record.end_time_s == 500_000.0:
                continue  # truncated at horizon
            expected = record.job.reference_runtime_s * record.job.app.roofline.time_ratio(
                record.effective_ghz
            )
            assert abs(record.runtime_s - expected) < 1e-6 * expected


class TestNodePoolProperties:
    @given(
        st.integers(min_value=1, max_value=1000),
        st.lists(st.integers(min_value=1, max_value=100), max_size=50),
    )
    @settings(max_examples=100)
    def test_alloc_release_conservation(self, capacity, requests):
        pool = NodePool(capacity)
        live: list[int] = []
        for req in requests:
            if pool.fits(req):
                pool.allocate(req)
                live.append(req)
            elif live:
                pool.release(live.pop())
        assert pool.busy == sum(live)
        assert 0 <= pool.busy <= capacity
