"""Property-based tests for the telemetry time-series container."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.telemetry.series import TimeSeries


@st.composite
def series_strategy(draw, min_size=2, max_size=200):
    """Strictly-increasing times with finite values."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    gaps = draw(
        arrays(
            float,
            n,
            elements=st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
        )
    )
    times = np.cumsum(gaps)
    values = draw(
        arrays(
            float,
            n,
            elements=st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        )
    )
    return TimeSeries(times, values)


class TestSeriesProperties:
    @given(series_strategy())
    def test_mean_within_min_max(self, series):
        assert series.min() - 1e-6 <= series.mean() <= series.max() + 1e-6

    @given(series_strategy())
    @settings(max_examples=60)
    def test_resample_bounded_by_source(self, series):
        interval = max(series.span_s / 10.0, 1e-3)
        resampled = series.resample(interval)
        assert resampled.min() >= series.min() - 1e-9
        assert resampled.max() <= series.max() + 1e-9

    @given(series_strategy(), st.floats(min_value=0.1, max_value=1e5))
    def test_rolling_mean_bounded(self, series, window):
        smooth = series.rolling_mean(window)
        # Cumulative-sum evaluation carries relative float error at large
        # magnitudes, so the bound check is relative, not absolute.
        slack = 1e-9 * max(1.0, abs(series.min()), abs(series.max()))
        assert np.nanmin(smooth.values) >= series.min() - slack
        assert np.nanmax(smooth.values) <= series.max() + slack

    @given(series_strategy())
    def test_scale_linear(self, series):
        doubled = series.scale_values(2.0)
        expected = 2.0 * series.mean()
        tol = 1e-9 * max(1e-300, abs(expected))
        assert abs(doubled.mean() - expected) <= tol

    @given(series_strategy())
    def test_shift_moves_mean(self, series):
        shifted = series.shift_values(100.0)
        tol = 1e-6 * max(1.0, abs(series.mean()))
        assert abs(shifted.mean() - (series.mean() + 100.0)) <= tol

    @given(series_strategy(min_size=4))
    @settings(max_examples=50)
    def test_slice_subset_of_span(self, series):
        mid = (series.t_start_s + series.t_end_s) / 2
        part = series.slice(series.t_start_s, mid + 1e-9)
        assert part.t_end_s <= mid + 1e-9
        assert len(part) <= len(series)

    @given(series_strategy())
    def test_addition_commutes(self, series):
        other = TimeSeries(series.times_s, series.values * 0.5)
        a = (series + other).values
        b = (other + series).values
        np.testing.assert_array_equal(a, b)

    @given(series_strategy())
    def test_dropna_idempotent(self, series):
        cleaned = series.dropna()
        again = cleaned.dropna()
        np.testing.assert_array_equal(cleaned.values, again.values)
