"""Property-based tests: unit conversions and the roofline model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.workload.roofline import (
    RooflineModel,
    compute_fraction_from_perf_ratio,
)

finite_positive = st.floats(
    min_value=1e-6, max_value=1e12, allow_nan=False, allow_infinity=False
)
fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
frequencies = st.floats(min_value=0.5, max_value=4.0, allow_nan=False)


class TestUnitProperties:
    @given(finite_positive)
    def test_power_roundtrip(self, x):
        assert units.w_to_kw(units.kw_to_w(x)) == pytest.approx(x, rel=1e-12)

    @given(finite_positive)
    def test_energy_roundtrip(self, x):
        assert units.j_to_kwh(units.kwh_to_j(x)) == pytest.approx(x, rel=1e-12)

    @given(finite_positive)
    def test_emissions_roundtrip(self, x):
        assert units.g_to_tonnes(units.tonnes_to_g(x)) == pytest.approx(x, rel=1e-12)

    @given(finite_positive, finite_positive)
    def test_energy_bilinear(self, p, t):
        assert units.energy_j(2 * p, t) == np.float64(2.0) * units.energy_j(p, t)

    @given(finite_positive, st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
    def test_emissions_monotone_in_intensity(self, energy, ci):
        base = units.emissions_g(energy, ci)
        higher = units.emissions_g(energy, ci + 1.0)
        assert higher >= base


class TestRooflineProperties:
    @given(fractions, frequencies)
    def test_time_ratio_positive(self, phi, f):
        assert RooflineModel(compute_fraction=phi).time_ratio(f) > 0

    @given(fractions)
    def test_time_ratio_unity_at_reference(self, phi):
        model = RooflineModel(compute_fraction=phi)
        assert abs(model.time_ratio(model.reference_ghz) - 1.0) < 1e-12

    @given(fractions, frequencies, frequencies)
    def test_time_ratio_monotone_decreasing(self, phi, f1, f2):
        if f1 == f2:
            return
        lo, hi = min(f1, f2), max(f1, f2)
        model = RooflineModel(compute_fraction=phi)
        assert model.time_ratio(lo) >= model.time_ratio(hi) - 1e-12

    @given(fractions, frequencies)
    def test_activities_partition_unity(self, phi, f):
        profile = RooflineModel(compute_fraction=phi).at(f)
        total = profile.compute_activity + profile.memory_activity
        assert abs(total - 1.0) < 1e-9
        assert profile.compute_activity >= 0
        assert profile.memory_activity >= 0

    @given(fractions)
    @settings(max_examples=200)
    def test_inversion_roundtrip(self, phi):
        model = RooflineModel(compute_fraction=phi)
        ratio = model.perf_ratio(2.0)
        recovered = compute_fraction_from_perf_ratio(ratio, 2.0, 2.8)
        assert abs(recovered - phi) < 1e-9

    @given(
        st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.05, max_value=0.999),
    )
    def test_frequency_for_perf_target_consistent(self, phi, target):
        # φ below ~1e-6 produces denormal frequencies where float division
        # loses the identity; the model is memory-bound there anyway.
        model = RooflineModel(compute_fraction=phi)
        freq = model.frequency_for_perf_target(target)
        if freq > 0:
            assert abs(model.perf_ratio(freq) - target) < 1e-6

    @given(fractions)
    def test_more_compute_bound_more_sensitive(self, phi):
        """For any φ' > φ, perf at 2.0 GHz is no better."""
        if phi >= 0.99:
            return
        base = RooflineModel(compute_fraction=phi).perf_ratio(2.0)
        more = RooflineModel(compute_fraction=min(phi + 0.01, 1.0)).perf_ratio(2.0)
        assert more <= base + 1e-12
