"""Power trace and simulation accounting tests."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.scheduler.accounting import PowerTrace, TraceBuilder


def step_trace():
    """Power 100 W on [0,10), 300 W on [10,20), 0 after, horizon 30."""
    return PowerTrace(
        times_s=np.array([0.0, 10.0, 20.0]),
        busy_power_w=np.array([100.0, 300.0, 0.0]),
        busy_nodes=np.array([1.0, 3.0, 0.0]),
        t_end_s=30.0,
    )


class TestPowerTrace:
    def test_time_weighted_mean_exact(self):
        trace = step_trace()
        # (100·10 + 300·10 + 0·10) / 30
        assert trace.mean_busy_power_w() == pytest.approx(4000.0 / 30.0)

    def test_energy_exact(self):
        assert step_trace().energy_j() == pytest.approx(100.0 * 10 + 300.0 * 10)

    def test_sample_previous_value_hold(self):
        trace = step_trace()
        samples = trace.sample(np.array([0.0, 5.0, 10.0, 15.0, 25.0]))
        np.testing.assert_allclose(samples, [100.0, 100.0, 300.0, 300.0, 0.0])

    def test_sample_before_start_clamps(self):
        assert step_trace().sample(np.array([-5.0]))[0] == 100.0

    def test_sample_busy_nodes(self):
        nodes = step_trace().sample_busy_nodes(np.array([5.0, 15.0, 25.0]))
        np.testing.assert_allclose(nodes, [1.0, 3.0, 0.0])

    def test_mean_busy_nodes(self):
        assert step_trace().mean_busy_nodes() == pytest.approx(4.0 / 3.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(SchedulingError):
            PowerTrace(
                times_s=np.array([0.0, 1.0]),
                busy_power_w=np.array([1.0]),
                busy_nodes=np.array([1.0, 2.0]),
                t_end_s=2.0,
            )

    def test_decreasing_times_rejected(self):
        with pytest.raises(SchedulingError):
            PowerTrace(
                times_s=np.array([1.0, 0.5]),
                busy_power_w=np.array([1.0, 2.0]),
                busy_nodes=np.array([1.0, 2.0]),
                t_end_s=2.0,
            )

    def test_horizon_before_last_point_rejected(self):
        with pytest.raises(SchedulingError):
            PowerTrace(
                times_s=np.array([0.0, 10.0]),
                busy_power_w=np.array([1.0, 2.0]),
                busy_nodes=np.array([1.0, 2.0]),
                t_end_s=5.0,
            )

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            PowerTrace(
                times_s=np.array([]),
                busy_power_w=np.array([]),
                busy_nodes=np.array([]),
                t_end_s=1.0,
            )


class TestTraceBuilder:
    def test_same_instant_updates_coalesce(self):
        builder = TraceBuilder(0.0)
        builder.append(0.0, 100.0, 1)
        builder.append(5.0, 200.0, 2)
        builder.append(5.0, 300.0, 3)  # same instant: replaces
        trace = builder.build(10.0)
        assert len(trace.times_s) == 2
        assert trace.sample(np.array([6.0]))[0] == 300.0

    def test_empty_builder_yields_zero_trace(self):
        trace = TraceBuilder(2.0).build(10.0)
        assert trace.mean_busy_power_w() == 0.0
        assert trace.t_start_s == 2.0
