"""Job admission and input-validation tests (errors must name the job)."""

import pytest

from repro.errors import ConfigurationError, SchedulingError, UnitError
from repro.scheduler.backfill import BackfillScheduler, StaticEnvironment, validate_jobs
from repro.node.calibration import build_node_model
from repro.workload.applications import full_catalogue
from repro.workload.jobs import Job


def make_job(job_id=7, n_nodes=4, runtime=3600.0, min_nodes=None, max_nodes=None):
    return Job(
        job_id=job_id,
        app=full_catalogue()["VASP CdTe"],
        n_nodes=n_nodes,
        submit_time_s=0.0,
        reference_runtime_s=runtime,
        min_nodes=min_nodes,
        max_nodes=max_nodes,
    )


class TestJobConstruction:
    def test_nonpositive_nodes_rejected_naming_job(self):
        with pytest.raises(ConfigurationError, match="job 7"):
            make_job(n_nodes=0)
        with pytest.raises(ConfigurationError, match="job 7"):
            make_job(n_nodes=-4)

    def test_nonpositive_walltime_rejected_naming_job(self):
        with pytest.raises(UnitError, match="job 7"):
            make_job(runtime=0.0)
        with pytest.raises(UnitError, match="job 7"):
            make_job(runtime=-60.0)

    def test_min_above_max_rejected_naming_job(self):
        with pytest.raises(ConfigurationError, match="job 7"):
            make_job(n_nodes=8, min_nodes=16, max_nodes=8)

    def test_preferred_outside_envelope_rejected(self):
        with pytest.raises(ConfigurationError, match="1 <= min_nodes"):
            make_job(n_nodes=4, min_nodes=8, max_nodes=16)

    def test_half_declared_shape_rejected(self):
        with pytest.raises(ConfigurationError, match="set together"):
            Job(
                job_id=7,
                app=full_catalogue()["VASP CdTe"],
                n_nodes=4,
                submit_time_s=0.0,
                reference_runtime_s=3600.0,
                min_nodes=2,
            )

    def test_negative_slack_rejected_naming_job(self):
        with pytest.raises(ConfigurationError, match="job 7.*shift_slack_s"):
            Job(
                job_id=7,
                app=full_catalogue()["VASP CdTe"],
                n_nodes=4,
                submit_time_s=0.0,
                reference_runtime_s=3600.0,
                shift_slack_s=-1.0,
            )


class TestValidateJobs:
    def test_oversize_job_named_with_allowed_range(self):
        with pytest.raises(SchedulingError, match=r"job 7.*1\.\.16"):
            validate_jobs([make_job(n_nodes=32)], available_nodes=16)

    def test_elastic_admission_uses_min_shape(self):
        job = make_job(n_nodes=32, min_nodes=4, max_nodes=32)
        validate_jobs([job], available_nodes=16, elastic=True)  # min fits
        with pytest.raises(SchedulingError, match="job 7"):
            validate_jobs([job], available_nodes=16)  # rigid: preferred must fit

    def test_no_schedulable_nodes_rejected(self):
        with pytest.raises(SchedulingError, match="no schedulable nodes"):
            validate_jobs([make_job()], available_nodes=0, offline_nodes=16)

    def test_scheduler_rejects_oversize_before_simulating(self):
        env = StaticEnvironment(node_model=build_node_model())
        with pytest.raises(SchedulingError, match="job 7"):
            BackfillScheduler(16).run([make_job(n_nodes=32)], 10_000.0, env)

    def test_offline_drain_reduces_admissible_width(self):
        env = StaticEnvironment(node_model=build_node_model())
        with pytest.raises(SchedulingError, match="12 available"):
            BackfillScheduler(16, offline_nodes=4).run(
                [make_job(n_nodes=16)], 10_000.0, env
            )
