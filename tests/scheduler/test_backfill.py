"""EASY-backfill scheduler tests."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.node.calibration import build_node_model
from repro.node.determinism import DeterminismMode
from repro.scheduler.backfill import BackfillScheduler, StaticEnvironment
from repro.units import SECONDS_PER_DAY
from repro.workload.applications import full_catalogue
from repro.workload.generator import JobStreamConfig, JobStreamGenerator
from repro.workload.jobs import Job
from repro.workload.mix import archer2_mix


@pytest.fixture(scope="module")
def env():
    return StaticEnvironment(node_model=build_node_model(), mode=DeterminismMode.POWER)


def make_job(job_id, n_nodes, submit, runtime, app=None):
    return Job(
        job_id=job_id,
        app=app or full_catalogue()["VASP CdTe"],
        n_nodes=n_nodes,
        submit_time_s=submit,
        reference_runtime_s=runtime,
    )


class TestBasicScheduling:
    def test_single_job_runs_immediately(self, env):
        jobs = [make_job(0, 4, 0.0, 3600.0)]
        result = BackfillScheduler(16).run(jobs, 10_000.0, env)
        assert len(result.records) == 1
        record = result.records[0]
        assert record.start_time_s == 0.0
        assert record.wait_s == 0.0

    def test_jobs_queue_when_full(self, env):
        jobs = [make_job(0, 16, 0.0, 3600.0), make_job(1, 16, 10.0, 3600.0)]
        result = BackfillScheduler(16).run(jobs, 20_000.0, env)
        second = next(r for r in result.records if r.job.job_id == 1)
        first = next(r for r in result.records if r.job.job_id == 0)
        assert second.start_time_s >= first.end_time_s

    def test_fcfs_order_respected_for_equal_jobs(self, env):
        jobs = [make_job(i, 16, float(i), 3600.0) for i in range(4)]
        result = BackfillScheduler(16).run(jobs, 10 * SECONDS_PER_DAY, env)
        starts = {r.job.job_id: r.start_time_s for r in result.records}
        assert starts[0] < starts[1] < starts[2] < starts[3]

    def test_backfill_fills_holes_without_delaying_head(self, env):
        # Big job 0 runs; head job 1 needs the whole machine; small job 2
        # can backfill because it finishes before job 0 releases its nodes.
        jobs = [
            make_job(0, 12, 0.0, 10_000.0),
            make_job(1, 16, 10.0, 3600.0),
            make_job(2, 4, 20.0, 1000.0),
        ]
        result = BackfillScheduler(16).run(jobs, 60_000.0, env)
        starts = {r.job.job_id: r.start_time_s for r in result.records}
        ends = {r.job.job_id: r.end_time_s for r in result.records}
        assert starts[2] < ends[0]  # backfilled ahead of the head
        assert starts[1] == pytest.approx(ends[0])  # head not delayed

    def test_oversized_job_rejected(self, env):
        with pytest.raises(SchedulingError):
            BackfillScheduler(8).run([make_job(0, 16, 0.0, 100.0)], 1000.0, env)

    def test_bad_window_rejected(self, env):
        with pytest.raises(SchedulingError):
            BackfillScheduler(8).run([], 0.0, env)

    def test_truncation_at_horizon(self, env):
        jobs = [make_job(0, 4, 0.0, 1e6)]
        result = BackfillScheduler(16).run(jobs, 1000.0, env)
        assert result.records[0].end_time_s == 1000.0

    def test_unstarted_jobs_counted(self, env):
        jobs = [make_job(0, 16, 0.0, 1e6), make_job(1, 16, 1.0, 100.0)]
        result = BackfillScheduler(16).run(jobs, 1000.0, env)
        assert result.n_unstarted == 1


class TestConservation:
    """DES invariants on a realistic random workload."""

    @pytest.fixture(scope="class")
    def result(self, env):
        rng = np.random.default_rng(7)
        config = JobStreamConfig(
            n_facility_nodes=256, max_job_nodes=64, mean_runtime_s=4 * 3600.0
        )
        jobs = JobStreamGenerator(archer2_mix(), config, rng).generate_until(
            5 * SECONDS_PER_DAY
        )
        return BackfillScheduler(256).run(jobs, 5 * SECONDS_PER_DAY, env)

    def test_busy_nodes_never_exceed_capacity(self, result):
        assert np.all(result.trace.busy_nodes <= 256)
        assert np.all(result.trace.busy_nodes >= 0)

    def test_no_job_starts_before_submit(self, result):
        for record in result.records:
            assert record.start_time_s >= record.job.submit_time_s

    def test_trace_power_consistent_with_records(self, result):
        """Busy-node energy from the trace equals the per-record sum."""
        record_energy = sum(r.energy_j for r in result.records)
        assert result.trace.energy_j() == pytest.approx(record_energy, rel=1e-9)

    def test_node_hours_consistency(self, result):
        from_trace = result.trace.mean_busy_nodes() * result.span_s / 3600.0
        from_records = result.total_node_hours()
        assert from_trace == pytest.approx(from_records, rel=1e-9)

    def test_utilisation_reasonable(self, result):
        assert 0.5 < result.mean_utilisation() <= 1.0

    def test_concurrent_nodes_at_sample_times(self, result):
        """Cross-check sampled busy nodes against interval arithmetic."""
        ts = np.linspace(0, 5 * SECONDS_PER_DAY - 1, 50)
        sampled = result.trace.sample_busy_nodes(ts)
        for t, expected in zip(ts, sampled):
            running = sum(
                r.job.n_nodes
                for r in result.records
                if r.start_time_s <= t < r.end_time_s
            )
            assert running == expected


class TestBackfillDepth:
    def test_zero_depth_is_pure_fcfs(self, env):
        jobs = [
            make_job(0, 12, 0.0, 10_000.0),
            make_job(1, 16, 10.0, 3600.0),
            make_job(2, 4, 20.0, 1000.0),
        ]
        result = BackfillScheduler(16, backfill_depth=0).run(jobs, 60_000.0, env)
        starts = {r.job.job_id: r.start_time_s for r in result.records}
        ends = {r.job.job_id: r.end_time_s for r in result.records}
        # Without backfill, job 2 must wait behind the blocked head.
        assert starts[2] >= ends[0]

    def test_negative_depth_rejected(self):
        with pytest.raises(SchedulingError):
            BackfillScheduler(16, backfill_depth=-1)
