"""Demand-response environment tests."""

import pytest

from repro.errors import ConfigurationError
from repro.grid.events import GridStressEvent
from repro.node.calibration import build_node_model
from repro.node.determinism import DeterminismMode
from repro.node.pstates import FrequencySetting
from repro.scheduler.backfill import BackfillScheduler, StaticEnvironment
from repro.scheduler.demand_response import (
    DemandResponseEnvironment,
    response_latency_estimate,
)
from repro.workload.applications import full_catalogue
from repro.workload.jobs import Job


def make_event(start=1000.0, duration=2000.0):
    return GridStressEvent(
        start_s=start, duration_s=duration, severity=1.0, requested_reduction_kw=100.0
    )


def make_job(override=None):
    return Job(
        job_id=0,
        app=full_catalogue()["VASP CdTe"],
        n_nodes=4,
        submit_time_s=0.0,
        reference_runtime_s=3600.0,
        frequency_override=override,
    )


@pytest.fixture(scope="module")
def inner():
    return StaticEnvironment(node_model=build_node_model(), mode=DeterminismMode.POWER)


class TestDemandResponseEnvironment:
    def test_outside_event_untouched(self, inner):
        env = DemandResponseEnvironment(inner=inner, events=[make_event()])
        resolved = env.resolve(make_job(), 100.0)
        assert resolved == inner.resolve(make_job(), 100.0)

    def test_inside_event_frequency_forced(self, inner):
        env = DemandResponseEnvironment(inner=inner, events=[make_event()])
        resolved = env.resolve(make_job(), 1500.0)
        assert resolved.setting is FrequencySetting.GHZ_1_5
        assert resolved.node_power_w < inner.resolve(make_job(), 1500.0).node_power_w

    def test_event_boundaries_half_open(self, inner):
        env = DemandResponseEnvironment(inner=inner, events=[make_event()])
        assert not env.in_event(999.9)
        assert env.in_event(1000.0)
        assert env.in_event(2999.9)
        assert not env.in_event(3000.0)

    def test_user_override_honoured_by_default(self, inner):
        env = DemandResponseEnvironment(inner=inner, events=[make_event()])
        job = make_job(override=FrequencySetting.GHZ_2_25_TURBO)
        resolved = env.resolve(job, 1500.0)
        assert resolved.setting is FrequencySetting.GHZ_2_25_TURBO

    def test_emergency_posture_overrides_users(self, inner):
        env = DemandResponseEnvironment(
            inner=inner, events=[make_event()], override_users=True
        )
        job = make_job(override=FrequencySetting.GHZ_2_25_TURBO)
        resolved = env.resolve(job, 1500.0)
        assert resolved.setting is FrequencySetting.GHZ_1_5

    def test_overlapping_events_rejected(self, inner):
        with pytest.raises(ConfigurationError):
            DemandResponseEnvironment(
                inner=inner,
                events=[make_event(0.0, 2000.0), make_event(1000.0, 2000.0)],
            )

    def test_multiple_events_sorted_internally(self, inner):
        env = DemandResponseEnvironment(
            inner=inner,
            events=[make_event(5000.0, 1000.0), make_event(0.0, 1000.0)],
        )
        assert env.in_event(500.0)
        assert not env.in_event(2000.0)
        assert env.in_event(5500.0)

    def test_scheduler_integration_sheds_power(self, inner):
        """Jobs started during the event run at lower power end-to-end."""
        event = make_event(start=0.0, duration=100_000.0)
        env = DemandResponseEnvironment(inner=inner, events=[event])
        jobs = [
            Job(
                job_id=i,
                app=full_catalogue()["VASP CdTe"],
                n_nodes=8,
                submit_time_s=float(i * 10),
                reference_runtime_s=7200.0,
            )
            for i in range(8)
        ]
        normal = BackfillScheduler(64).run(jobs, 100_000.0, inner)
        shed = BackfillScheduler(64).run(jobs, 100_000.0, env)
        assert shed.trace.energy_j() < normal.trace.energy_j()
        for record in shed.records:
            assert record.setting is FrequencySetting.GHZ_1_5


class TestResponseLatency:
    def test_latency_on_runtime_scale(self):
        latency = response_latency_estimate(12 * 3600.0)
        assert 0.5 * 12 * 3600.0 < latency < 1.5 * 12 * 3600.0

    def test_deeper_target_takes_longer(self):
        fast = response_latency_estimate(3600.0, target_fraction=0.5)
        deep = response_latency_estimate(3600.0, target_fraction=0.9)
        assert deep > fast

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            response_latency_estimate(0.0)
        with pytest.raises(ConfigurationError):
            response_latency_estimate(3600.0, target_fraction=1.0)
