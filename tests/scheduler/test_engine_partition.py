"""Event queue and node pool tests."""

import pytest

from repro.errors import AllocationError, SchedulingError
from repro.scheduler.engine import Event, EventKind, EventQueue
from repro.scheduler.partition import NodePool


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(Event(5.0, EventKind.MARKER, "late"))
        q.push(Event(1.0, EventKind.MARKER, "early"))
        q.push(Event(3.0, EventKind.MARKER, "mid"))
        assert [q.pop().payload for _ in range(3)] == ["early", "mid", "late"]

    def test_fifo_for_simultaneous_events(self):
        q = EventQueue()
        for i in range(5):
            q.push(Event(1.0, EventKind.MARKER, i))
        assert [q.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            EventQueue().pop()

    def test_push_into_past_raises(self):
        q = EventQueue()
        q.push(Event(10.0, EventKind.MARKER))
        q.pop()
        with pytest.raises(SchedulingError):
            q.push(Event(5.0, EventKind.MARKER))

    def test_push_at_current_time_allowed(self):
        q = EventQueue()
        q.push(Event(10.0, EventKind.MARKER))
        q.pop()
        q.push(Event(10.0, EventKind.MARKER))
        assert q.pop().time_s == 10.0

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert not q
        q.push(Event(2.0, EventKind.MARKER))
        assert q.peek_time() == 2.0
        assert len(q) == 1

    def test_now_tracks_pops(self):
        q = EventQueue()
        q.push(Event(7.0, EventKind.MARKER))
        q.pop()
        assert q.now_s == 7.0


class TestNodePool:
    def test_initial_state(self):
        pool = NodePool(100)
        assert pool.free == 100
        assert pool.busy == 0
        assert pool.utilisation == 0.0

    def test_allocate_release_cycle(self):
        pool = NodePool(100)
        pool.allocate(60)
        assert pool.busy == 60
        assert pool.utilisation == pytest.approx(0.6)
        pool.release(60)
        assert pool.free == 100

    def test_over_allocation_raises(self):
        pool = NodePool(10)
        pool.allocate(8)
        with pytest.raises(AllocationError):
            pool.allocate(3)

    def test_over_release_raises(self):
        pool = NodePool(10)
        pool.allocate(4)
        with pytest.raises(AllocationError):
            pool.release(5)

    def test_zero_allocation_raises(self):
        with pytest.raises(AllocationError):
            NodePool(10).allocate(0)

    def test_fits(self):
        pool = NodePool(10)
        pool.allocate(7)
        assert pool.fits(3)
        assert not pool.fits(4)
        assert not pool.fits(0)

    def test_bad_capacity(self):
        with pytest.raises(AllocationError):
            NodePool(0)


class TestEventQueueCheckpoint:
    def _drain(self, q):
        out = []
        while len(q):
            event = q.pop()
            out.append((event.time_s, event.kind, event.payload))
        return out

    def test_mid_stream_round_trip(self):
        import json

        q = EventQueue()
        q.push(Event(5.0, EventKind.JOB_END, (3, 0)))
        q.push(Event(1.0, EventKind.JOB_SUBMIT, 3))
        q.push(Event(9.0, EventKind.SIM_END))
        q.push(Event(5.0, EventKind.CARBON_TICK))
        q.pop()  # consume the submit; queue is now mid-stream
        snapshot = json.loads(json.dumps(q.state_dict()))
        restored = EventQueue()
        restored.load_state_dict(snapshot)
        assert self._drain(restored) == self._drain(q)

    def test_restored_queue_preserves_time_floor(self):
        q = EventQueue()
        q.push(Event(10.0, EventKind.MARKER))
        q.pop()
        restored = EventQueue()
        restored.load_state_dict(q.state_dict())
        with pytest.raises(SchedulingError):
            restored.push(Event(5.0, EventKind.MARKER))

    def test_json_round_trip_normalises_list_payloads_to_tuples(self):
        """JSON turns tuple payloads into lists; load must restore tuples so
        generation-tagged JOB_END payloads compare equal after resume."""
        import json

        q = EventQueue()
        q.push(Event(2.0, EventKind.JOB_END, (7, 4)))
        restored = EventQueue()
        restored.load_state_dict(json.loads(json.dumps(q.state_dict())))
        assert restored.pop().payload == (7, 4)

    def test_fifo_counter_survives_resume(self):
        """Events pushed after a resume must sort behind pre-snapshot events
        at the same timestamp (the counter keeps monotone FIFO order)."""
        q = EventQueue()
        q.push(Event(1.0, EventKind.MARKER, "first"))
        restored = EventQueue()
        restored.load_state_dict(q.state_dict())
        restored.push(Event(1.0, EventKind.MARKER, "second"))
        assert [restored.pop().payload for _ in range(2)] == ["first", "second"]


class TestNodePoolCheckpoint:
    def test_round_trip_preserves_allocation(self):
        pool = NodePool(100)
        pool.allocate(37)
        restored = NodePool(100)
        restored.load_state_dict(pool.state_dict())
        assert restored.busy == 37
        assert restored.free == 63

    def test_capacity_mismatch_rejected(self):
        pool = NodePool(100)
        other = NodePool(64)
        with pytest.raises(AllocationError):
            other.load_state_dict(pool.state_dict())

    def test_corrupt_busy_count_rejected(self):
        pool = NodePool(16)
        with pytest.raises(AllocationError):
            pool.load_state_dict({"n_nodes": 16, "busy": 17})
        with pytest.raises(AllocationError):
            pool.load_state_dict({"n_nodes": 16, "busy": -1})

    def test_conservation_through_seeded_churn(self):
        """allocated + free == total holds through an arbitrary seeded
        alloc/release sequence, and survives a mid-sequence checkpoint."""
        import numpy as np

        rng = np.random.default_rng(42)
        pool = NodePool(128)
        held = []
        for step in range(200):
            if held and rng.random() < 0.45:
                pool.release(held.pop(rng.integers(len(held))))
            else:
                width = int(rng.integers(1, 17))
                if pool.fits(width):
                    pool.allocate(width)
                    held.append(width)
            assert pool.busy + pool.free == 128
            assert pool.busy == sum(held)
            if step == 100:
                restored = NodePool(128)
                restored.load_state_dict(pool.state_dict())
                assert restored.busy == pool.busy
