"""Event queue and node pool tests."""

import pytest

from repro.errors import AllocationError, SchedulingError
from repro.scheduler.engine import Event, EventKind, EventQueue
from repro.scheduler.partition import NodePool


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(Event(5.0, EventKind.MARKER, "late"))
        q.push(Event(1.0, EventKind.MARKER, "early"))
        q.push(Event(3.0, EventKind.MARKER, "mid"))
        assert [q.pop().payload for _ in range(3)] == ["early", "mid", "late"]

    def test_fifo_for_simultaneous_events(self):
        q = EventQueue()
        for i in range(5):
            q.push(Event(1.0, EventKind.MARKER, i))
        assert [q.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            EventQueue().pop()

    def test_push_into_past_raises(self):
        q = EventQueue()
        q.push(Event(10.0, EventKind.MARKER))
        q.pop()
        with pytest.raises(SchedulingError):
            q.push(Event(5.0, EventKind.MARKER))

    def test_push_at_current_time_allowed(self):
        q = EventQueue()
        q.push(Event(10.0, EventKind.MARKER))
        q.pop()
        q.push(Event(10.0, EventKind.MARKER))
        assert q.pop().time_s == 10.0

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert not q
        q.push(Event(2.0, EventKind.MARKER))
        assert q.peek_time() == 2.0
        assert len(q) == 1

    def test_now_tracks_pops(self):
        q = EventQueue()
        q.push(Event(7.0, EventKind.MARKER))
        q.pop()
        assert q.now_s == 7.0


class TestNodePool:
    def test_initial_state(self):
        pool = NodePool(100)
        assert pool.free == 100
        assert pool.busy == 0
        assert pool.utilisation == 0.0

    def test_allocate_release_cycle(self):
        pool = NodePool(100)
        pool.allocate(60)
        assert pool.busy == 60
        assert pool.utilisation == pytest.approx(0.6)
        pool.release(60)
        assert pool.free == 100

    def test_over_allocation_raises(self):
        pool = NodePool(10)
        pool.allocate(8)
        with pytest.raises(AllocationError):
            pool.allocate(3)

    def test_over_release_raises(self):
        pool = NodePool(10)
        pool.allocate(4)
        with pytest.raises(AllocationError):
            pool.release(5)

    def test_zero_allocation_raises(self):
        with pytest.raises(AllocationError):
            NodePool(10).allocate(0)

    def test_fits(self):
        pool = NodePool(10)
        pool.allocate(7)
        assert pool.fits(3)
        assert not pool.fits(4)
        assert not pool.fits(0)

    def test_bad_capacity(self):
        with pytest.raises(AllocationError):
            NodePool(0)
