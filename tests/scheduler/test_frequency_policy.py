"""Frequency policy tests (§4.2 operational rules)."""

import pytest

from repro.node.cpu import CpuModel
from repro.node.determinism import DeterminismMode
from repro.node.pstates import FrequencySetting
from repro.scheduler.frequency_policy import FrequencyPolicy
from repro.workload.applications import full_catalogue, paper_curated_apps
from repro.workload.jobs import Job


@pytest.fixture(scope="module")
def cpu():
    return CpuModel()


@pytest.fixture(scope="module")
def catalogue():
    return full_catalogue()


def make_job(app, override=None):
    return Job(
        job_id=0,
        app=app,
        n_nodes=4,
        submit_time_s=0.0,
        reference_runtime_s=3600.0,
        frequency_override=override,
    )


class TestDefaultPolicy:
    def test_turbo_default_passes_through(self, cpu, catalogue):
        policy = FrequencyPolicy()  # default 2.25+turbo
        job = make_job(catalogue["LAMMPS Ethanol"])
        assert (
            policy.setting_for(job, cpu, DeterminismMode.POWER)
            is FrequencySetting.GHZ_2_25_TURBO
        )

    def test_impact_zero_when_default_is_reset(self, cpu, catalogue):
        policy = FrequencyPolicy()
        impact = policy.perf_impact(
            catalogue["LAMMPS Ethanol"], cpu, DeterminismMode.POWER
        )
        assert impact == 0.0


class TestTwoGhzDefault:
    @pytest.fixture
    def policy(self):
        return FrequencyPolicy(default_setting=FrequencySetting.GHZ_2_0)

    def test_memory_bound_apps_follow_default(self, policy, cpu, catalogue):
        job = make_job(catalogue["VASP CdTe"])  # 5 % impact
        assert (
            policy.setting_for(job, cpu, DeterminismMode.PERFORMANCE)
            is FrequencySetting.GHZ_2_0
        )

    def test_high_impact_apps_reset_to_turbo(self, policy, cpu, catalogue):
        """Paper: apps with >10 % expected impact get module resets."""
        for name in ("LAMMPS Ethanol", "GROMACS 1400k", "Nektar++ TGV 128DoF"):
            job = make_job(catalogue[name])
            assert (
                policy.setting_for(job, cpu, DeterminismMode.PERFORMANCE)
                is FrequencySetting.GHZ_2_25_TURBO
            ), name

    def test_impact_matches_paper_threshold_logic(self, policy, cpu, catalogue):
        impact = policy.perf_impact(
            catalogue["LAMMPS Ethanol"], cpu, DeterminismMode.PERFORMANCE
        )
        assert impact == pytest.approx(0.26, abs=0.02)

    def test_user_override_wins(self, policy, cpu, catalogue):
        job = make_job(
            catalogue["VASP CdTe"], override=FrequencySetting.GHZ_2_25_TURBO
        )
        assert (
            policy.setting_for(job, cpu, DeterminismMode.PERFORMANCE)
            is FrequencySetting.GHZ_2_25_TURBO
        )

    def test_override_ignored_when_disabled(self, cpu, catalogue):
        policy = FrequencyPolicy(
            default_setting=FrequencySetting.GHZ_2_0, respect_user_override=False
        )
        job = make_job(
            catalogue["VASP CdTe"], override=FrequencySetting.GHZ_2_25_TURBO
        )
        assert (
            policy.setting_for(job, cpu, DeterminismMode.PERFORMANCE)
            is FrequencySetting.GHZ_2_0
        )

    def test_disabled_threshold_never_resets(self, cpu, catalogue):
        policy = FrequencyPolicy(
            default_setting=FrequencySetting.GHZ_2_0, reset_threshold=None
        )
        job = make_job(catalogue["LAMMPS Ethanol"])
        assert (
            policy.setting_for(job, cpu, DeterminismMode.PERFORMANCE)
            is FrequencySetting.GHZ_2_0
        )

    def test_curated_list_limits_resets(self, cpu, catalogue):
        """Uncurated high-impact apps follow the default (long-tail codes)."""
        policy = FrequencyPolicy(
            default_setting=FrequencySetting.GHZ_2_0,
            curated_apps=paper_curated_apps(),
        )
        curated_job = make_job(catalogue["LAMMPS Ethanol"])
        uncurated_job = make_job(catalogue["Plasma archetype"])  # ~15 % impact
        assert (
            policy.setting_for(curated_job, cpu, DeterminismMode.PERFORMANCE)
            is FrequencySetting.GHZ_2_25_TURBO
        )
        assert (
            policy.setting_for(uncurated_job, cpu, DeterminismMode.PERFORMANCE)
            is FrequencySetting.GHZ_2_0
        )

    def test_impact_cache_consistency(self, policy, cpu, catalogue):
        app = catalogue["CASTEP Al Slab"]
        first = policy.perf_impact(app, cpu, DeterminismMode.PERFORMANCE)
        second = policy.perf_impact(app, cpu, DeterminismMode.PERFORMANCE)
        assert first == second


class TestCarbonAwareResolution:
    """``setting_for_ci`` boundary semantics at 30.0 / 100.0 gCO₂/kWh."""

    @pytest.fixture
    def slow_default(self):
        return FrequencyPolicy(default_setting=FrequencySetting.GHZ_2_0)

    def test_below_low_boundary_resets_to_fast(self, slow_default, cpu, catalogue):
        """Scope-3 regime: a nearly clean grid argues for finishing fast,
        even under a 2.0 GHz default policy."""
        job = make_job(catalogue["VASP CdTe"])
        setting = slow_default.setting_for_ci(
            job, cpu, DeterminismMode.PERFORMANCE, ci_g_per_kwh=29.999
        )
        assert setting is FrequencySetting.GHZ_2_25_TURBO

    def test_low_boundary_is_inclusive_into_static_rules(
        self, slow_default, cpu, catalogue
    ):
        """Exactly 30.0 is *balanced* (mirrors ``classify_ci``): the static
        policy applies, so the 2.0 GHz default sticks."""
        job = make_job(catalogue["VASP CdTe"])
        setting = slow_default.setting_for_ci(
            job, cpu, DeterminismMode.PERFORMANCE, ci_g_per_kwh=30.0
        )
        assert setting is FrequencySetting.GHZ_2_0

    def test_high_boundary_is_inclusive_into_static_rules(self, cpu, catalogue):
        """Exactly 100.0 is still balanced: a turbo-default policy keeps
        turbo; only *strictly above* drops to 2.0 GHz."""
        policy = FrequencyPolicy()  # default 2.25+turbo
        job = make_job(catalogue["LAMMPS Ethanol"])
        at_boundary = policy.setting_for_ci(
            job, cpu, DeterminismMode.PERFORMANCE, ci_g_per_kwh=100.0
        )
        above = policy.setting_for_ci(
            job, cpu, DeterminismMode.PERFORMANCE, ci_g_per_kwh=100.001
        )
        assert at_boundary is FrequencySetting.GHZ_2_25_TURBO
        assert above is FrequencySetting.GHZ_2_0

    @pytest.mark.parametrize("ci", [5.0, 30.0, 65.0, 100.0, 400.0])
    def test_user_override_wins_at_any_ci(self, slow_default, cpu, catalogue, ci):
        job = make_job(
            catalogue["LAMMPS Ethanol"], override=FrequencySetting.GHZ_2_25_TURBO
        )
        setting = slow_default.setting_for_ci(
            job, cpu, DeterminismMode.PERFORMANCE, ci_g_per_kwh=ci
        )
        assert setting is FrequencySetting.GHZ_2_25_TURBO

    def test_custom_thresholds_shift_the_regimes(self, slow_default, cpu, catalogue):
        job = make_job(catalogue["VASP CdTe"])
        setting = slow_default.setting_for_ci(
            job,
            cpu,
            DeterminismMode.PERFORMANCE,
            ci_g_per_kwh=65.0,
            low_g_per_kwh=70.0,
        )
        assert setting is FrequencySetting.GHZ_2_25_TURBO
