"""Carbon-aware malleable scheduler tests."""

import numpy as np
import pytest

from repro.node.calibration import build_node_model
from repro.scheduler.backfill import BackfillScheduler, StaticEnvironment
from repro.scheduler.malleable import (
    MalleableScheduler,
    compare_rigid_malleable,
)
from repro.telemetry.series import TimeSeries
from repro.units import SECONDS_PER_DAY
from repro.workload.applications import full_catalogue
from repro.workload.generator import JobStreamConfig, JobStreamGenerator
from repro.workload.jobs import Job
from repro.workload.mix import archer2_mix


@pytest.fixture(scope="module")
def env():
    return StaticEnvironment(node_model=build_node_model())


def flat_ci(value, t_end_s=30 * SECONDS_PER_DAY):
    times = np.arange(0.0, t_end_s, 1800.0)
    return TimeSeries(times, np.full(len(times), float(value)), "ci")


def step_ci(switch_s, before, after, t_end_s=30 * SECONDS_PER_DAY):
    """CI that holds ``before`` until ``switch_s``, then ``after``."""
    times = np.arange(0.0, t_end_s, 1800.0)
    values = np.where(times < switch_s, float(before), float(after))
    return TimeSeries(times, values, "ci")


def make_job(job_id, n_nodes, submit, runtime, min_nodes=None, max_nodes=None, slack=0.0):
    return Job(
        job_id=job_id,
        app=full_catalogue()["VASP CdTe"],
        n_nodes=n_nodes,
        submit_time_s=submit,
        reference_runtime_s=runtime,
        min_nodes=min_nodes,
        max_nodes=max_nodes,
        shift_slack_s=slack,
    )


class TestRigidParity:
    def test_rigid_trace_on_inelastic_workload(self, env):
        """With no elastic jobs, no slack and balanced CI, the malleable
        scheduler reduces to EASY backfill: identical starts and energy."""
        jobs = [
            make_job(0, 12, 0.0, 10_000.0),
            make_job(1, 16, 10.0, 3600.0),
            make_job(2, 4, 20.0, 1000.0),
            make_job(3, 8, 30.0, 2000.0),
        ]
        t_end = 2 * SECONDS_PER_DAY
        ci = flat_ci(65.0)
        rigid = BackfillScheduler(16).run(jobs, t_end, env)
        malleable = MalleableScheduler(16, env, ci).run(jobs, t_end)
        rigid_starts = {r.job.job_id: r.start_time_s for r in rigid.records}
        malleable_starts = {r.job_id: r.start_time_s for r in malleable.records}
        assert malleable_starts == rigid_starts
        assert malleable.total_energy_kwh() == pytest.approx(
            rigid.total_energy_kwh(), rel=1e-12
        )


class TestCarbonBehaviour:
    def test_high_ci_starts_elastic_jobs_at_min_shape(self, env):
        job = make_job(0, 8, 0.0, 3600.0, min_nodes=2, max_nodes=8)
        result = MalleableScheduler(16, env, flat_ci(150.0)).run(
            [job], 5 * SECONDS_PER_DAY
        )
        record = result.records[0]
        # Ran at 2 nodes throughout: node-seconds = 2 × stretched runtime.
        assert record.runtime_s > 3600.0  # shrunk => stretched
        assert record.node_seconds == pytest.approx(2 * record.runtime_s)
        assert record.setting == "2.0GHz"  # high-CI frequency co-optimisation

    def test_low_ci_runs_at_preferred_and_fast(self, env):
        job = make_job(0, 8, 0.0, 3600.0, min_nodes=2, max_nodes=8)
        result = MalleableScheduler(16, env, flat_ci(10.0)).run(
            [job], 5 * SECONDS_PER_DAY
        )
        record = result.records[0]
        assert record.node_seconds == pytest.approx(8 * record.runtime_s)
        assert record.setting == "2.25GHz+turbo"
        assert result.n_shrinks == 0

    def test_shrinks_when_ci_goes_high_midrun(self, env):
        job = make_job(0, 8, 0.0, 8 * 3600.0, min_nodes=2, max_nodes=8)
        ci = step_ci(2 * 3600.0, before=65.0, after=150.0)
        result = MalleableScheduler(16, env, ci).run([job], 5 * SECONDS_PER_DAY)
        assert result.n_shrinks == 1
        record = result.records[0]
        assert record.runtime_s > 8 * 3600.0  # shrink stretched the tail

    def test_grows_back_when_ci_recovers(self, env):
        job = make_job(0, 8, 0.0, 12 * 3600.0, min_nodes=2, max_nodes=8)
        ci = step_ci(2 * 3600.0, before=150.0, after=65.0)
        result = MalleableScheduler(16, env, ci).run([job], 5 * SECONDS_PER_DAY)
        assert result.n_grows >= 1
        record = result.records[0]
        # Started narrow (high CI), grew back — faster than all-min execution.
        shape_stretch_at_min = record.runtime_s / (12 * 3600.0)
        assert shape_stretch_at_min > 1.0

    def test_slack_shifts_start_into_green_window(self, env):
        # High CI for 6 h, then clean; 12 h of slack: the job should wait.
        job = make_job(0, 4, 0.0, 3600.0, slack=12 * 3600.0)
        ci = step_ci(6 * 3600.0, before=150.0, after=30.0)
        result = MalleableScheduler(16, env, ci).run([job], 5 * SECONDS_PER_DAY)
        assert result.n_shifted == 1
        assert result.records[0].start_time_s >= 6 * 3600.0

    def test_no_shift_without_improvement(self, env):
        job = make_job(0, 4, 0.0, 3600.0, slack=12 * 3600.0)
        result = MalleableScheduler(16, env, flat_ci(65.0)).run(
            [job], 5 * SECONDS_PER_DAY
        )
        assert result.n_shifted == 0
        assert result.records[0].start_time_s == 0.0


class TestSqueezeAdmission:
    def test_elastic_job_wider_than_pool_squeezes_in(self, env):
        # Preferred 32 on a 16-node pool: admissible because min fits.
        job = make_job(0, 32, 0.0, 3600.0, min_nodes=4, max_nodes=32)
        result = MalleableScheduler(16, env, flat_ci(65.0)).run(
            [job], 5 * SECONDS_PER_DAY
        )
        assert result.n_completed == 1
        record = result.records[0]
        assert record.node_seconds <= 16 * record.runtime_s


class TestAccountingIdentities:
    @pytest.fixture(scope="class")
    def stream(self):
        config = JobStreamConfig(
            n_facility_nodes=64,
            offered_load=0.95,
            mean_runtime_s=4 * 3600.0,
            max_job_nodes=32,
            malleable_fraction=0.5,
            shift_slack_mean_s=2 * 3600.0,
        )
        gen = JobStreamGenerator(archer2_mix(), config, np.random.default_rng(7))
        return gen.generate_until(6 * SECONDS_PER_DAY)

    @pytest.fixture(scope="class")
    def wavy_ci(self):
        t = np.arange(0.0, 8 * SECONDS_PER_DAY, 1800.0)
        return TimeSeries(t, 80.0 + 60.0 * np.sin(2 * np.pi * t / SECONDS_PER_DAY), "ci")

    def test_reconciliation_with_truncation(self, env, stream, wavy_ci):
        # End the simulation early so jobs are left running and queued.
        result = MalleableScheduler(64, env, wavy_ci).run(
            stream, 3 * SECONDS_PER_DAY
        )
        assert result.reconciles()
        assert result.n_running_at_end > 0 or result.n_queued_at_end > 0

    def test_deterministic_rerun(self, env, stream, wavy_ci):
        sched = MalleableScheduler(64, env, wavy_ci, seed=3)
        a = sched.run(stream, 7 * SECONDS_PER_DAY)
        b = sched.run(stream, 7 * SECONDS_PER_DAY)
        assert a.records == b.records
        assert np.array_equal(a.trace.times_s, b.trace.times_s)
        assert np.array_equal(a.trace.busy_power_w, b.trace.busy_power_w)

    def test_pool_conservation_in_trace(self, env, stream, wavy_ci):
        result = MalleableScheduler(64, env, wavy_ci).run(
            stream, 7 * SECONDS_PER_DAY
        )
        assert np.all(result.trace.busy_nodes >= 0)
        assert np.all(result.trace.busy_nodes <= 64)

    def test_malleable_beats_rigid_emissions(self, env, stream, wavy_ci):
        comparison = compare_rigid_malleable(
            stream, 7 * SECONDS_PER_DAY, env, wavy_ci, n_nodes=64
        )
        assert comparison.malleable_tco2e < comparison.rigid_tco2e
        assert comparison.emissions_saving_tco2e > 0.0
        assert comparison.energy_saving_kwh > 0.0
