"""Checkpoint/kill/resume tests: mid-trace snapshots must replay bit-identically."""

import json

import numpy as np
import pytest

from repro.node.calibration import build_node_model
from repro.scheduler.backfill import StaticEnvironment
from repro.scheduler.malleable import MalleableScheduler
from repro.telemetry.series import TimeSeries
from repro.units import SECONDS_PER_DAY
from repro.workload.generator import JobStreamConfig, JobStreamGenerator
from repro.workload.mix import archer2_mix


@pytest.fixture(scope="module")
def env():
    return StaticEnvironment(node_model=build_node_model())


@pytest.fixture(scope="module")
def jobs():
    config = JobStreamConfig(
        n_facility_nodes=64,
        offered_load=0.95,
        mean_runtime_s=4 * 3600.0,
        max_job_nodes=32,
        malleable_fraction=0.5,
        shift_slack_mean_s=2 * 3600.0,
    )
    gen = JobStreamGenerator(archer2_mix(), config, np.random.default_rng(11))
    return gen.generate_until(5 * SECONDS_PER_DAY)


@pytest.fixture(scope="module")
def ci():
    t = np.arange(0.0, 8 * SECONDS_PER_DAY, 1800.0)
    return TimeSeries(t, 80.0 + 60.0 * np.sin(2 * np.pi * t / SECONDS_PER_DAY), "ci")


@pytest.fixture(scope="module")
def scheduler(env, ci):
    return MalleableScheduler(64, env, ci, seed=5)


T_END = 6 * SECONDS_PER_DAY


@pytest.fixture(scope="module")
def reference(scheduler, jobs):
    return scheduler.simulation(jobs, T_END).run_to_completion()


def assert_identical(a, b):
    assert a.records == b.records
    assert a.trace.times_s.tobytes() == b.trace.times_s.tobytes()
    assert a.trace.busy_power_w.tobytes() == b.trace.busy_power_w.tobytes()
    assert a.trace.busy_nodes.tobytes() == b.trace.busy_nodes.tobytes()
    assert (a.n_jobs, a.n_completed, a.n_running_at_end, a.n_queued_at_end) == (
        b.n_jobs,
        b.n_completed,
        b.n_running_at_end,
        b.n_queued_at_end,
    )
    assert (a.n_shifted, a.n_shrinks, a.n_grows) == (
        b.n_shifted,
        b.n_shrinks,
        b.n_grows,
    )


class TestKillResume:
    @pytest.mark.parametrize("cut", [1, 10, 100, 500, 2000])
    def test_resume_is_bit_identical(self, scheduler, jobs, reference, cut):
        """Kill after ``cut`` events, JSON-round-trip the snapshot, resume
        in a *fresh* simulation: byte-identical to the uninterrupted run."""
        sim = scheduler.simulation(jobs, T_END)
        for _ in range(cut):
            if not sim.step():
                break
        snapshot = json.loads(json.dumps(sim.state_dict()))
        resumed = scheduler.simulation(jobs, T_END)
        resumed.load_state_dict(snapshot)
        assert_identical(resumed.run_to_completion(), reference)

    def test_snapshot_does_not_perturb_the_donor(self, scheduler, jobs, reference):
        """Taking snapshots mid-run must not change the donor's outcome."""
        sim = scheduler.simulation(jobs, T_END)
        steps = 0
        while sim.step():
            steps += 1
            if steps % 500 == 0:
                sim.state_dict()
        assert_identical(sim.result(), reference)

    def test_snapshot_of_finished_run_reloads(self, scheduler, jobs, reference):
        sim = scheduler.simulation(jobs, T_END)
        sim.run_to_completion()
        snapshot = json.loads(json.dumps(sim.state_dict()))
        reloaded = scheduler.simulation(jobs, T_END)
        reloaded.load_state_dict(snapshot)
        assert reloaded.done
        assert_identical(reloaded.result(), reference)

    def test_rng_state_round_trips(self, scheduler, jobs):
        sim = scheduler.simulation(jobs, T_END)
        for _ in range(300):
            sim.step()
        snapshot = json.loads(json.dumps(sim.state_dict()))
        resumed = scheduler.simulation(jobs, T_END)
        resumed.load_state_dict(snapshot)
        # The next draw from both generators must agree exactly.
        assert sim._rng.random() == resumed._rng.random()  # lint: exact-float
