"""Fault-injection tests: seeded determinism, conservation, kill/resume.

The fault layer must be *reproducible* (same seed, same machine, same
schedule of failures and kills), *accounted* (every burned node-second is
either delivered or wasted, never lost), and *resumable* (a checkpoint
taken mid-fault replays byte-identically).
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, SchedulingError, UnitError
from repro.facility.failures import FailureModel, FaultConfig
from repro.grid.forecast import FeedOutage, ForecastFeed, ForecastIndex
from repro.node.calibration import build_node_model
from repro.scheduler.backfill import BackfillScheduler, StaticEnvironment
from repro.scheduler.malleable import MalleableScheduler, compare_rigid_malleable
from repro.telemetry.series import TimeSeries
from repro.units import SECONDS_PER_DAY
from repro.workload.generator import JobStreamConfig, JobStreamGenerator
from repro.workload.mix import archer2_mix

T_END = 5 * SECONDS_PER_DAY

# Short MTBF/MTTR so a 5-day, 64-node run sees tens of failures.
FAULTS = FaultConfig(
    model=FailureModel(mtbf_hours=200.0, mttr_hours=6.0), seed=7
)


@pytest.fixture(scope="module")
def env():
    return StaticEnvironment(node_model=build_node_model())


@pytest.fixture(scope="module")
def jobs():
    config = JobStreamConfig(
        n_facility_nodes=64,
        offered_load=0.9,
        mean_runtime_s=4 * 3600.0,
        max_job_nodes=32,
        malleable_fraction=0.5,
        shift_slack_mean_s=2 * 3600.0,
    )
    gen = JobStreamGenerator(archer2_mix(), config, np.random.default_rng(11))
    return gen.generate_until(4 * SECONDS_PER_DAY)


@pytest.fixture(scope="module")
def ci():
    t = np.arange(0.0, 7 * SECONDS_PER_DAY, 1800.0)
    return TimeSeries(t, 80.0 + 60.0 * np.sin(2 * np.pi * t / SECONDS_PER_DAY), "ci")


def faulted_scheduler(env, ci, fault_config=FAULTS, feed=None, **kwargs):
    return MalleableScheduler(
        64, env, ci, seed=5, fault_config=fault_config, feed=feed, **kwargs
    )


@pytest.fixture(scope="module")
def reference(env, ci, jobs):
    sched = faulted_scheduler(env, ci)
    return sched.simulation(jobs, T_END).run_to_completion()


def assert_identical(a, b):
    assert a.records == b.records
    assert a.faults == b.faults
    assert a.trace.times_s.tobytes() == b.trace.times_s.tobytes()
    assert a.trace.busy_power_w.tobytes() == b.trace.busy_power_w.tobytes()
    assert a.trace.busy_nodes.tobytes() == b.trace.busy_nodes.tobytes()
    assert (a.n_jobs, a.n_completed, a.n_running_at_end, a.n_queued_at_end) == (
        b.n_jobs,
        b.n_completed,
        b.n_running_at_end,
        b.n_queued_at_end,
    )


class TestFaultConfig:
    def test_defaults_validate(self):
        cfg = FaultConfig()
        assert cfg.mtbf_s == cfg.model.mtbf_hours * 3600.0
        assert cfg.mttr_s == cfg.model.mttr_hours * 3600.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": 0.0},
            {"backoff_multiplier": 0.5},
            {"backoff_cap_s": -1.0},
            {"checkpoint_interval_s": -60.0},
            {"checkpoint_overhead_s": -1.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises((ConfigurationError, UnitError)):
            FaultConfig(**kwargs)

    def test_backoff_grows_and_caps(self):
        cfg = FaultConfig(
            backoff_base_s=100.0, backoff_multiplier=2.0, backoff_cap_s=300.0
        )
        # jitter=0.5 gives the deterministic midpoint multiplier of 1.0
        assert cfg.backoff_s(1, 0.5) == 100.0
        assert cfg.backoff_s(2, 0.5) == 200.0
        assert cfg.backoff_s(3, 0.5) == 300.0  # capped, not 400
        assert cfg.backoff_s(10, 0.5) == 300.0


class TestSeededDeterminism:
    def test_same_seed_same_everything(self, env, ci, jobs, reference):
        rerun = faulted_scheduler(env, ci).simulation(jobs, T_END).run_to_completion()
        assert_identical(rerun, reference)

    def test_different_fault_seed_diverges(self, env, ci, jobs, reference):
        other = FaultConfig(model=FAULTS.model, seed=FAULTS.seed + 1)
        rerun = (
            faulted_scheduler(env, ci, fault_config=other)
            .simulation(jobs, T_END)
            .run_to_completion()
        )
        assert rerun.faults != reference.faults

    def test_rigid_same_seed_same_everything(self, env, ci, jobs):
        def once():
            sched = BackfillScheduler(64, fault_config=FAULTS)
            return sched.run(jobs, T_END, env)

        a, b = once(), once()
        assert a.records == b.records
        assert a.faults == b.faults
        assert a.trace.times_s.tobytes() == b.trace.times_s.tobytes()

    def test_faults_actually_fire(self, reference):
        assert reference.faults.n_failures > 10
        assert reference.faults.n_job_kills > 0
        assert reference.faults.wasted_node_seconds > 0.0
        assert reference.faults.drained_node_seconds > 0.0


class TestConservation:
    def test_malleable_reconciles_under_faults(self, reference):
        assert reference.reconciles()

    def test_rigid_reconciles_under_faults(self, env, ci, jobs):
        result = BackfillScheduler(64, fault_config=FAULTS).run(jobs, T_END, env)
        assert result.faults.n_job_kills > 0
        assert result.reconciles()

    def test_reconciles_with_checkpoint_restart(self, env, ci, jobs):
        cfg = FaultConfig(
            model=FAULTS.model, seed=FAULTS.seed, checkpoint_interval_s=1800.0
        )
        result = (
            faulted_scheduler(env, ci, fault_config=cfg)
            .simulation(jobs, T_END)
            .run_to_completion()
        )
        assert result.faults.n_job_kills > 0
        assert result.reconciles()

    def test_checkpointing_never_hurts_completions(self, env, ci, jobs, reference):
        """Restarting from a checkpoint re-runs less work than restarting
        from zero, so with the identical fault schedule the checkpointed
        run must complete at least as many jobs."""
        cfg = FaultConfig(
            model=FAULTS.model, seed=FAULTS.seed, checkpoint_interval_s=1800.0
        )
        ckpt = (
            faulted_scheduler(env, ci, fault_config=cfg)
            .simulation(jobs, T_END)
            .run_to_completion()
        )
        assert ckpt.n_completed >= reference.n_completed

    def test_no_faults_means_empty_accounting(self, env, ci, jobs):
        result = (
            MalleableScheduler(64, env, ci, seed=5)
            .simulation(jobs, T_END)
            .run_to_completion()
        )
        assert result.faults.n_failures == 0
        assert result.faults.wasted_node_seconds == 0.0
        assert result.faults.drained_node_seconds == 0.0
        assert result.reconciles()

    def test_unavailability_tracks_steady_state(self, reference):
        """Mean drained fraction should land within 2x of the two-state
        Markov steady state MTTR/(MTBF+MTTR)."""
        span = reference.t_end_s - reference.t_start_s
        measured = reference.faults.mean_unavailability(reference.n_nodes, span)
        steady = FAULTS.model.steady_state_unavailability
        assert steady / 2.0 <= measured <= steady * 2.0


class TestRetryBudget:
    def test_zero_retries_is_terminal(self, env, ci, jobs):
        cfg = FaultConfig(model=FAULTS.model, seed=FAULTS.seed, max_retries=0)
        result = (
            faulted_scheduler(env, ci, fault_config=cfg)
            .simulation(jobs, T_END)
            .run_to_completion()
        )
        assert result.faults.n_job_kills > 0
        assert result.faults.n_retries == 0
        assert result.faults.n_failed_terminal == result.faults.n_job_kills
        assert result.reconciles()

    def test_generous_budget_has_no_terminals(self, env, ci, jobs):
        cfg = FaultConfig(model=FAULTS.model, seed=FAULTS.seed, max_retries=1000)
        result = (
            faulted_scheduler(env, ci, fault_config=cfg)
            .simulation(jobs, T_END)
            .run_to_completion()
        )
        assert result.faults.n_job_kills > 0
        assert result.faults.n_failed_terminal == 0
        assert result.faults.n_retries == result.faults.n_job_kills
        assert result.reconciles()


class TestKillResumeUnderFaults:
    @pytest.mark.parametrize("cut", [1, 50, 500, 2000])
    def test_mid_fault_resume_is_bit_identical(self, env, ci, jobs, reference, cut):
        sched = faulted_scheduler(env, ci)
        sim = sched.simulation(jobs, T_END)
        for _ in range(cut):
            if not sim.step():
                break
        snapshot = json.loads(json.dumps(sim.state_dict()))
        resumed = sched.simulation(jobs, T_END)
        resumed.load_state_dict(snapshot)
        assert_identical(resumed.run_to_completion(), reference)

    def test_checkpoint_json_is_byte_identical_across_resume(self, env, ci, jobs):
        """Kill at step 300, resume, advance both the donor and the resumed
        copy in lockstep: their checkpoints must serialise to identical
        bytes at every probe."""
        sched = faulted_scheduler(env, ci)
        donor = sched.simulation(jobs, T_END)
        for _ in range(300):
            donor.step()
        snapshot = json.dumps(donor.state_dict(), sort_keys=True)
        resumed = sched.simulation(jobs, T_END)
        resumed.load_state_dict(json.loads(snapshot))
        assert json.dumps(resumed.state_dict(), sort_keys=True) == snapshot
        for _ in range(3):
            for _ in range(200):
                donor.step()
                resumed.step()
            assert json.dumps(
                resumed.state_dict(), sort_keys=True
            ) == json.dumps(donor.state_dict(), sort_keys=True)

    def test_fault_rng_state_round_trips(self, env, ci, jobs):
        sched = faulted_scheduler(env, ci)
        sim = sched.simulation(jobs, T_END)
        for _ in range(300):
            sim.step()
        snapshot = json.loads(json.dumps(sim.state_dict()))
        resumed = sched.simulation(jobs, T_END)
        resumed.load_state_dict(snapshot)
        assert sim._fault_rng.random() == resumed._fault_rng.random()  # lint: exact-float

    def test_faultless_scheduler_rejects_faulted_checkpoint(self, env, ci, jobs):
        sched = faulted_scheduler(env, ci)
        sim = sched.simulation(jobs, T_END)
        for _ in range(300):
            sim.step()
        snapshot = json.loads(json.dumps(sim.state_dict()))
        plain = MalleableScheduler(64, env, ci, seed=5).simulation(jobs, T_END)
        with pytest.raises(SchedulingError, match="fault"):
            plain.load_state_dict(snapshot)


class TestForecastDegradation:
    def test_long_outage_triggers_degraded_mode(self, env, ci, jobs):
        feed = ForecastFeed(
            ForecastIndex(ci),
            outages=(FeedOutage(1 * SECONDS_PER_DAY, 2.5 * SECONDS_PER_DAY),),
        )
        result = (
            faulted_scheduler(env, ci, fault_config=None, feed=feed)
            .simulation(jobs, T_END)
            .run_to_completion()
        )
        assert result.faults.n_degraded_ticks > 0
        assert result.reconciles()

    def test_degraded_run_is_deterministic(self, env, ci, jobs):
        def once():
            feed = ForecastFeed(
                ForecastIndex(ci),
                outages=(FeedOutage(1 * SECONDS_PER_DAY, 2.5 * SECONDS_PER_DAY),),
            )
            return (
                faulted_scheduler(env, ci, feed=feed)
                .simulation(jobs, T_END)
                .run_to_completion()
            )

        assert_identical(once(), once())

    def test_fresh_feed_never_degrades(self, env, ci, jobs):
        feed = ForecastFeed(ForecastIndex(ci))
        result = (
            faulted_scheduler(env, ci, fault_config=None, feed=feed)
            .simulation(jobs, T_END)
            .run_to_completion()
        )
        assert result.faults.n_degraded_ticks == 0
        assert result.faults.n_degraded_starts == 0

    def test_resume_under_outage_is_bit_identical(self, env, ci, jobs):
        def build():
            feed = ForecastFeed(
                ForecastIndex(ci),
                outages=(FeedOutage(1 * SECONDS_PER_DAY, 2.5 * SECONDS_PER_DAY),),
            )
            return faulted_scheduler(env, ci, feed=feed)

        reference = build().simulation(jobs, T_END).run_to_completion()
        sim = build().simulation(jobs, T_END)
        # Step until simulated time is inside the outage window.
        while sim._queue.now_s < 1.5 * SECONDS_PER_DAY:
            if not sim.step():
                break
        snapshot = json.loads(json.dumps(sim.state_dict()))
        resumed = build().simulation(jobs, T_END)
        resumed.load_state_dict(snapshot)
        assert_identical(resumed.run_to_completion(), reference)


class TestCompareFaultPassthrough:
    def test_compare_carries_fault_accounting(self, env, ci, jobs):
        comparison = compare_rigid_malleable(
            jobs, T_END, env, ci, n_nodes=64, seed=5, fault_config=FAULTS
        )
        assert comparison.rigid.faults.n_failures > 0
        assert comparison.malleable.faults.n_failures > 0
        assert comparison.rigid.reconciles()
        assert comparison.malleable.reconciles()

    def test_stale_after_must_be_positive(self, env, ci):
        with pytest.raises(SchedulingError):
            MalleableScheduler(64, env, ci, stale_after_s=0.0)
