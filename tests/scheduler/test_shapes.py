"""Elastic job-shape tests."""

import pytest

from repro.errors import ConfigurationError
from repro.scheduler.shapes import JobShape
from repro.workload.applications import full_catalogue
from repro.workload.jobs import Job
from repro.workload.scaling import StrongScalingModel


def make_job(n_nodes=8, min_nodes=None, max_nodes=None):
    return Job(
        job_id=0,
        app=full_catalogue()["VASP CdTe"],
        n_nodes=n_nodes,
        submit_time_s=0.0,
        reference_runtime_s=3600.0,
        min_nodes=min_nodes,
        max_nodes=max_nodes,
    )


class TestConstruction:
    def test_from_elastic_job(self):
        shape = JobShape.from_job(make_job(8, min_nodes=2, max_nodes=8))
        assert shape.min_nodes == 2
        assert shape.max_nodes == 8
        assert shape.preferred_nodes == 8
        assert shape.is_elastic

    def test_from_rigid_job(self):
        shape = JobShape.from_job(make_job(8))
        assert shape.min_nodes == shape.max_nodes == shape.preferred_nodes == 8
        assert not shape.is_elastic

    def test_inverted_envelope_rejected(self):
        with pytest.raises(ConfigurationError):
            JobShape(
                job_id=1,
                min_nodes=8,
                max_nodes=4,
                preferred_nodes=8,
                scaling=StrongScalingModel(t1_s=1.0),
            )

    def test_preferred_outside_envelope_rejected(self):
        with pytest.raises(ConfigurationError):
            JobShape(
                job_id=1,
                min_nodes=2,
                max_nodes=4,
                preferred_nodes=8,
                scaling=StrongScalingModel(t1_s=1.0),
            )


class TestStretch:
    @pytest.fixture
    def shape(self):
        return JobShape.from_job(make_job(8, min_nodes=2, max_nodes=16))

    def test_unity_at_preferred(self, shape):
        assert shape.stretch(8) == 1.0

    def test_shrinking_stretches_runtime(self, shape):
        assert shape.stretch(2) > shape.stretch(4) > shape.stretch(8)

    def test_matches_scaling_model_ratio(self, shape):
        expected = float(
            shape.scaling.runtime_s(2) / shape.scaling.runtime_s(8)
        )
        assert shape.stretch(2) == pytest.approx(expected, rel=1e-12)

    def test_shrinking_reduces_node_seconds(self, shape):
        # n·t(n) is monotone increasing, so narrow allocations are more
        # node-second efficient — the property the carbon policy exploits.
        assert shape.node_seconds_factor(2) < shape.node_seconds_factor(4) < 1.0
        assert shape.node_seconds_factor(16) > 1.0

    def test_out_of_envelope_allocation_rejected(self, shape):
        with pytest.raises(ConfigurationError):
            shape.stretch(1)
        with pytest.raises(ConfigurationError):
            shape.stretch(32)

    def test_clamp(self, shape):
        assert shape.clamp(1) == 2
        assert shape.clamp(9) == 9
        assert shape.clamp(100) == 16

    def test_rate_inverse_of_stretched_runtime(self, shape):
        rate = shape.rate_per_s(4, preferred_runtime_s=7200.0)
        assert rate == pytest.approx(1.0 / (7200.0 * shape.stretch(4)), rel=1e-12)

    def test_rate_rejects_nonpositive_runtime(self, shape):
        with pytest.raises(ConfigurationError):
            shape.rate_per_s(4, preferred_runtime_s=0.0)
