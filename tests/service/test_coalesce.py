"""Single-flight semantics: one evaluation per key, safe under cancellation."""

import asyncio

import pytest

from repro.service.coalesce import SingleFlight


def run(coro):
    return asyncio.run(coro)


class TestSingleFlight:
    def test_concurrent_identical_keys_compute_once(self):
        async def main():
            flights = SingleFlight()
            calls = []

            async def factory():
                calls.append(1)
                await asyncio.sleep(0)
                return object()

            results = await asyncio.gather(
                *(flights.run("k", factory) for _ in range(50))
            )
            assert len(calls) == 1
            assert all(r is results[0] for r in results)
            assert flights.leads == 1
            assert flights.joins == 49
            assert len(flights) == 0

        run(main())

    def test_distinct_keys_do_not_coalesce(self):
        async def main():
            flights = SingleFlight()
            calls = []

            async def factory():
                calls.append(1)
                await asyncio.sleep(0)
                return len(calls)

            await asyncio.gather(
                flights.run("a", factory), flights.run("b", factory)
            )
            assert len(calls) == 2
            assert flights.leads == 2 and flights.joins == 0

        run(main())

    def test_sequential_calls_compute_each_time(self):
        async def main():
            flights = SingleFlight()

            async def factory():
                return object()

            first = await flights.run("k", factory)
            second = await flights.run("k", factory)
            assert first is not second
            assert flights.leads == 2

        run(main())

    def test_exception_is_shared_by_every_waiter(self):
        async def main():
            flights = SingleFlight()

            async def factory():
                await asyncio.sleep(0)
                raise ValueError("shared failure")

            results = await asyncio.gather(
                *(flights.run("k", factory) for _ in range(5)),
                return_exceptions=True,
            )
            assert all(isinstance(r, ValueError) for r in results)
            # One flight, one exception object, delivered to everyone.
            assert len({id(r) for r in results}) == 1
            assert len(flights) == 0

        run(main())

    def test_cancelled_leader_hands_off_to_a_waiter(self):
        async def main():
            flights = SingleFlight()
            gate = asyncio.Event()
            starts = []

            async def factory():
                starts.append(1)
                if len(starts) == 1:
                    await gate.wait()  # the leader parks here and dies here
                await asyncio.sleep(0)  # yield so retrying waiters re-coalesce
                return "value"

            leader = asyncio.ensure_future(flights.run("k", factory))
            await asyncio.sleep(0)
            waiters = [
                asyncio.ensure_future(flights.run("k", factory)) for _ in range(3)
            ]
            await asyncio.sleep(0)
            leader.cancel()
            results = await asyncio.gather(*waiters)
            assert results == ["value"] * 3
            assert len(starts) == 2  # aborted lead + the handoff re-lead
            assert flights.handoffs >= 1
            assert leader.cancelled()
            assert len(flights) == 0

        run(main())

    def test_cancelled_waiter_does_not_disturb_the_flight(self):
        async def main():
            flights = SingleFlight()
            gate = asyncio.Event()

            async def factory():
                await gate.wait()
                return "value"

            leader = asyncio.ensure_future(flights.run("k", factory))
            await asyncio.sleep(0)
            waiter = asyncio.ensure_future(flights.run("k", factory))
            await asyncio.sleep(0)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            gate.set()
            assert await leader == "value"
            assert flights.handoffs == 0
            assert len(flights) == 0

        run(main())

    def test_inflight_keys_reports_active_flights(self):
        async def main():
            flights = SingleFlight()
            gate = asyncio.Event()

            async def factory():
                await gate.wait()
                return None

            tasks = [
                asyncio.ensure_future(flights.run(key, factory))
                for key in ("b", "a")
            ]
            await asyncio.sleep(0)
            assert flights.inflight_keys() == ["a", "b"]
            assert "a" in flights and "zzz" not in flights
            gate.set()
            await asyncio.gather(*tasks)
            assert flights.inflight_keys() == []

        run(main())
