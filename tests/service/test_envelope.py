"""Envelope contract: versioning, content keys, structured error codes."""

import json

import pytest

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    SchedulingError,
    ServiceError,
)
from repro.results import Result, write_result
from repro.service.envelope import (
    METHODS,
    PROTOCOL_VERSION,
    ServiceRequest,
    ServiceResponse,
    error_code,
)


class TestServiceRequest:
    def test_request_key_is_content_addressed(self):
        a = ServiceRequest("emissions", {"n_nodes": 100})
        b = ServiceRequest("emissions", {"n_nodes": 100})
        c = ServiceRequest("emissions", {"n_nodes": 101})
        assert a.request_key == b.request_key
        assert a.request_key != c.request_key

    def test_request_key_ignores_tenant(self):
        """Identical questions from different tenants must coalesce."""
        a = ServiceRequest("emissions", {"n_nodes": 100}, tenant="alpha")
        b = ServiceRequest("emissions", {"n_nodes": 100}, tenant="beta")
        assert a.request_key == b.request_key

    def test_wire_round_trip(self):
        original = ServiceRequest("sweep", {"chunk_size": 64}, tenant="t1")
        parsed = ServiceRequest.from_wire(original.to_wire())
        assert parsed == original
        assert parsed.request_key == original.request_key

    def test_wrong_version_is_a_structured_error(self):
        with pytest.raises(ServiceError) as err:
            ServiceRequest.from_wire({"v": 2, "method": "emissions"})
        assert err.value.code == "unsupported-version"

    def test_malformed_envelopes_rejected(self):
        with pytest.raises(ServiceError):
            ServiceRequest.from_wire("not a mapping")
        with pytest.raises(ServiceError):
            ServiceRequest.from_wire({"v": PROTOCOL_VERSION})  # no method
        with pytest.raises(ServiceError):
            ServiceRequest(method="", params={})
        with pytest.raises(ServiceError):
            ServiceRequest(method="emissions", params={}, tenant="")

    def test_methods_cover_the_session_surface(self):
        assert METHODS == (
            "emissions",
            "classify_regime",
            "efficiency",
            "advise",
            "sweep",
            "sched_compare",
        )


class TestErrorCodes:
    def test_library_errors_map_to_structured_codes(self):
        assert error_code(ConfigurationError("x")) == "bad-request"
        assert error_code(SchedulingError("x")) == "scheduling-error"
        assert error_code(RuntimeError("x")) == "internal-error"

    def test_service_errors_carry_their_own_code(self):
        assert error_code(ServiceError("x", code="unknown-method")) == "unknown-method"
        assert error_code(AdmissionError("x", code="rate-limited")) == "rate-limited"

    def test_admission_error_defaults_overloaded(self):
        assert AdmissionError("x").code == "overloaded"


class TestServiceResponse:
    def test_envelope_shape_success(self):
        response = ServiceResponse.success({"answer": 1}, request_key="ab" * 32)
        assert response.to_dict() == {
            "v": PROTOCOL_VERSION,
            "ok": True,
            "result": {"answer": 1},
        }

    def test_envelope_shape_failure_with_retry_hint(self):
        exc = AdmissionError("slow down", code="rate-limited", retry_after_s=2.5)
        response = ServiceResponse.failure(exc)
        envelope = response.to_dict()
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "rate-limited"
        assert envelope["error"]["type"] == "AdmissionError"
        assert envelope["error"]["retry_after_s"] == 2.5

    def test_result_xor_error_enforced(self):
        with pytest.raises(ServiceError):
            ServiceResponse(ok=True, result=None, error=None)
        with pytest.raises(ServiceError):
            ServiceResponse(ok=False, result={"x": 1}, error=None)
        with pytest.raises(ServiceError):
            ServiceResponse(ok=True, result={"x": 1}, error={"code": "boom"})

    def test_wire_json_is_canonical(self):
        response = ServiceResponse.success({"b": 2, "a": 1})
        wire = response.wire_json()
        assert wire == json.dumps(
            json.loads(wire), sort_keys=True, separators=(",", ":")
        )
        assert wire.index('"a"') < wire.index('"b"')

    def test_satisfies_the_result_protocol(self, tmp_path):
        response = ServiceResponse.success(
            {"nested": {"x": 1}, "items": [1, 2]}, request_key="f" * 64
        )
        assert isinstance(response, Result)
        assert response.result_id == "RESP-" + "f" * 12
        assert "service response" in response.to_table()
        written = write_result(response, tmp_path)
        assert any(path.suffix == ".txt" for path in written)
        assert any(path.suffix == ".csv" for path in written)

    def test_csv_rows_flatten_the_envelope(self):
        response = ServiceResponse.failure(ConfigurationError("bad"), request_key="")
        rows = response.to_csv_rows()["response"]
        assert rows[0] == ["field", "value"]
        fields = {row[0] for row in rows[1:]}
        assert {"v", "ok", "error.code", "error.message", "error.type"} <= fields
