"""The stdlib HTTP/JSON front: envelopes over a socket, status mapping."""

import asyncio
import json

from repro.service import AdmissionController, FacilityService
from repro.service.http import ServiceHTTPServer


def run(coro):
    return asyncio.run(coro)


async def http(port, method, path, body=None):
    """Minimal HTTP/1.1 client; returns (status, headers, json_body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    body_bytes = await reader.readexactly(int(headers["content-length"]))
    writer.close()
    await writer.wait_closed()
    return status, headers, json.loads(body_bytes)


async def with_server(service, fn):
    server = ServiceHTTPServer(service, port=0)
    await server.start()
    try:
        return await fn(server.port)
    finally:
        await server.stop()


class TestRoutes:
    def test_request_route_answers_envelopes(self):
        async def main():
            service = FacilityService()

            async def scenario(port):
                status, _, body = await http(
                    port,
                    "POST",
                    "/v1/request",
                    {
                        "v": 1,
                        "method": "classify_regime",
                        "params": {"at_ci_g_per_kwh": 190.0},
                        "tenant": "curl",
                    },
                )
                assert status == 200
                assert body["ok"] is True
                assert body["result"]["regime"] == "scope2-dominated"

            await with_server(service, scenario)
            assert service.metrics.reconciles()
            assert service.metrics.requests_in == {"curl": 1}

        run(main())

    def test_health_and_metrics_routes(self):
        async def main():
            service = FacilityService()

            async def scenario(port):
                status, _, body = await http(port, "GET", "/v1/health")
                assert status == 200 and body["ok"] and body["in_flight"] == 0
                status, _, body = await http(port, "GET", "/v1/metrics")
                assert status == 200
                assert body["requests_in"] == {}

            await with_server(service, scenario)

        run(main())

    def test_error_status_mapping(self):
        async def main():
            service = FacilityService()

            async def scenario(port):
                status, _, body = await http(
                    port, "POST", "/v1/request", {"v": 99, "method": "emissions"}
                )
                assert status == 400
                assert body["error"]["code"] == "unsupported-version"
                status, _, body = await http(port, "GET", "/nope")
                assert status == 404
                assert body["error"]["code"] == "not-found"

            await with_server(service, scenario)

        run(main())

    def test_garbage_body_is_a_400_not_a_crash(self):
        async def main():
            service = FacilityService()

            async def scenario(port):
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(
                    b"POST /v1/request HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 9\r\nConnection: close\r\n\r\nnot json!"
                )
                await writer.drain()
                status = int((await reader.readline()).split()[1])
                writer.close()
                await writer.wait_closed()
                assert status == 400

            await with_server(service, scenario)

        run(main())

    def test_rate_limited_requests_carry_retry_after(self):
        async def main():
            service = FacilityService(
                admission=AdmissionController(rate_per_s=1.0, burst=1.0),
                clock=lambda: 0.0,
            )

            async def scenario(port):
                envelope = {
                    "v": 1,
                    "method": "classify_regime",
                    "params": {"at_ci_g_per_kwh": 190.0},
                    "tenant": "noisy",
                }
                status, _, _ = await http(port, "POST", "/v1/request", envelope)
                assert status == 200
                status, headers, body = await http(
                    port, "POST", "/v1/request", envelope
                )
                assert status == 429
                assert body["error"]["code"] == "rate-limited"
                assert int(headers["retry-after"]) >= 1

            await with_server(service, scenario)
            assert service.metrics.reconciles()

        run(main())
