"""Service accounting identity: requests_in == served + rejected + failed."""

from repro.service.metrics import ServiceMetrics


class TestAccountingIdentity:
    def test_empty_metrics_reconcile(self):
        assert ServiceMetrics().reconciles()

    def test_identity_holds_per_tenant(self):
        metrics = ServiceMetrics()
        for _ in range(3):
            metrics.record_in("a")
        metrics.record_served("a")
        metrics.record_rejected("a", "rate-limited")
        metrics.record_failed("a", "bad-request")
        metrics.record_in("b")
        metrics.record_served("b", coalesced=True)
        assert metrics.reconciles()
        assert metrics.total_requests_in == 4
        assert metrics.total_served == 2
        assert metrics.total_coalesced == 1

    def test_unbalanced_tenant_breaks_reconciliation(self):
        metrics = ServiceMetrics()
        metrics.record_in("a")
        assert not metrics.reconciles()
        metrics.record_served("a")
        assert metrics.reconciles()

    def test_outcome_without_arrival_breaks_reconciliation(self):
        """A served count with no matching arrival is also a books error."""
        metrics = ServiceMetrics()
        metrics.record_served("ghost")
        assert not metrics.reconciles()

    def test_breakdown_counters(self):
        metrics = ServiceMetrics()
        metrics.record_in("a")
        metrics.record_rejected("a", "overloaded")
        metrics.record_in("a")
        metrics.record_failed("a", "internal-error")
        metrics.record_evaluation("sweep")
        metrics.record_evaluation("sweep")
        metrics.observe_in_flight(3)
        metrics.observe_in_flight(1)
        assert metrics.rejections_by_code == {"overloaded": 1}
        assert metrics.failures_by_code == {"internal-error": 1}
        assert metrics.evaluations == {"sweep": 2}
        assert metrics.in_flight_peak == 3


class TestPersistence:
    def test_state_round_trip_is_lossless(self):
        metrics = ServiceMetrics()
        metrics.record_in("a")
        metrics.record_served("a", coalesced=True)
        metrics.record_in("b")
        metrics.record_rejected("b", "rate-limited")
        metrics.record_evaluation("advise")
        metrics.observe_in_flight(5)
        metrics.lost_to_restart = 2
        restored = ServiceMetrics()
        restored.load_state_dict(metrics.state_dict())
        assert restored.state_dict() == metrics.state_dict()
        assert restored.reconciles() == metrics.reconciles()

    def test_state_dict_is_a_snapshot_not_a_view(self):
        metrics = ServiceMetrics()
        metrics.record_in("a")
        snapshot = metrics.state_dict()
        metrics.record_in("a")
        assert snapshot["requests_in"] == {"a": 1}
        assert metrics.requests_in == {"a": 2}
