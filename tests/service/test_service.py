"""FacilityService end-to-end: coalescing, fairness, parity, kill/resume."""

import asyncio
import json

import pytest

from repro.api import FacilitySession
from repro.errors import ConfigurationError, ServiceError
from repro.service import (
    AdmissionController,
    FacilityCore,
    FacilityService,
    ServiceRequest,
)
from repro.service.envelope import PROTOCOL_VERSION
from repro.service.router import payload_sweep
from repro.engine.runner import run_sweep


def run(coro):
    return asyncio.run(coro)


SWEEP_PARAMS = {
    "overrides": {"utilisations": [0.5, 0.9], "node_counts": [1024]},
    "chunk_size": 256,
}


def counting_runner(counter):
    """run_sweep wrapped to count actual engine invocations."""

    def runner(spec, **kwargs):
        counter.append(spec.spec_hash)
        return run_sweep(spec, **kwargs)

    return runner


def open_service(**kwargs):
    kwargs.setdefault(
        "admission",
        AdmissionController(rate_per_s=10_000.0, burst=10_000.0, max_in_flight=8192),
    )
    return FacilityService(**kwargs)


def canonical(data):
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


class TestCoalescing:
    def test_100_identical_sweeps_trigger_exactly_one_evaluation(self):
        async def main():
            evaluations = []
            service = open_service(
                core=FacilityCore(runner=counting_runner(evaluations))
            )
            requests = [
                ServiceRequest("sweep", SWEEP_PARAMS, tenant=f"t{i % 8}")
                for i in range(100)
            ]
            responses = await asyncio.gather(
                *(service.handle(r) for r in requests)
            )
            assert all(r.ok for r in responses)
            assert len(evaluations) == 1  # the instrumented engine ran once
            assert service.metrics.evaluations == {"sweep": 1}
            assert service.metrics.total_coalesced == 99
            assert service.metrics.reconciles()
            # Every waiter received the same payload object, not a copy.
            assert all(r.result is responses[0].result for r in responses)
            served_by = {r.served_by for r in responses}
            assert served_by == {"computed", "coalesced"}
            return responses

        responses = run(main())
        assert len({r.wire_json() for r in responses}) == 1

    def test_sequential_repeats_hit_the_shared_cache_not_the_flight(self):
        async def main():
            evaluations = []
            core = FacilityCore(runner=counting_runner(evaluations))
            service = open_service(core=core)
            first = await service.call("sweep", SWEEP_PARAMS)
            second = await service.call("sweep", SWEEP_PARAMS)
            assert first.ok and second.ok
            # The runner ran twice (no concurrent flight to join) but the
            # second run was answered by the shared in-memory cache, and
            # the cached replay serialises to the same bytes.
            assert len(evaluations) == 2
            assert core.memory_cache.hits >= 1
            assert first.wire_json() == second.wire_json()

        run(main())

    def test_distinct_questions_do_not_coalesce(self):
        async def main():
            service = open_service()
            responses = await asyncio.gather(
                service.call("classify_regime", {"at_ci_g_per_kwh": 25.0}),
                service.call("classify_regime", {"at_ci_g_per_kwh": 450.0}),
            )
            assert [r.result["regime"] for r in responses] == [
                "scope3-dominated",
                "scope2-dominated",
            ]
            assert service.metrics.total_coalesced == 0

        run(main())


class TestParityWithDirectSession:
    def test_sweep_payload_is_byte_identical_to_the_session_path(self):
        async def main():
            service = open_service()
            response = await service.call("sweep", SWEEP_PARAMS)
            assert response.ok
            return response

        response = run(main())
        session = FacilitySession()
        direct = payload_sweep(
            session.sweep(
                chunk_size=SWEEP_PARAMS["chunk_size"], **SWEEP_PARAMS["overrides"]
            )
        )
        assert canonical(direct) == canonical(response.result)

    def test_emissions_matches_the_session_row(self):
        async def main():
            service = open_service()
            return await service.call("emissions", {"n_nodes": 2048})

        response = run(main())
        direct = FacilitySession(n_nodes=2048).emissions()
        # Canonical JSON also equates NaN cells (perf_ratio has no app here).
        assert canonical(response.result) == canonical(
            {k: float(v) for k, v in direct.items()}
        )

    def test_advise_matches_the_session_recommendation(self):
        async def main():
            service = open_service()
            return await service.call("advise", {})

        response = run(main())
        score = FacilitySession().advise()
        assert response.result["config"]["label"] == score.config.label()
        assert response.result["score"] == pytest.approx(score.score)


class TestErrorsAndAdmission:
    def test_unknown_method_is_a_structured_failure(self):
        async def main():
            service = open_service()
            response = await service.call("divine", {})
            assert not response.ok
            assert response.error["code"] == "unknown-method"
            assert service.metrics.failures_by_code == {"unknown-method": 1}
            assert service.metrics.reconciles()

        run(main())

    def test_bad_params_map_to_bad_request(self):
        async def main():
            service = open_service()
            response = await service.call("emissions", {"utilisation": 7.0})
            assert not response.ok
            assert response.error["code"] == "bad-request"
            assert response.error["type"] == "UnitError"  # ensure_fraction

        run(main())

    def test_wrong_envelope_version_fails_without_dispatch(self):
        async def main():
            service = open_service()
            response = await service.handle(
                {"v": 99, "method": "emissions", "tenant": "t"}
            )
            assert not response.ok
            assert response.error["code"] == "unsupported-version"
            assert service.metrics.failed == {"t": 1}
            assert service.metrics.reconciles()

        run(main())

    def test_rate_limited_tenant_gets_structured_429(self):
        async def main():
            service = FacilityService(
                admission=AdmissionController(rate_per_s=1.0, burst=2.0),
                clock=lambda: 0.0,
            )
            outcomes = [
                await service.call(
                    "classify_regime", {"at_ci_g_per_kwh": 190.0}, tenant="noisy"
                )
                for _ in range(5)
            ]
            refused = [r for r in outcomes if not r.ok]
            assert len(refused) == 3
            assert all(r.error["code"] == "rate-limited" for r in refused)
            assert all(r.error["retry_after_s"] > 0 for r in refused)
            assert service.metrics.rejections_by_code == {"rate-limited": 3}
            assert service.metrics.reconciles()

        run(main())

    def test_depth_shedding_under_concurrency(self):
        async def main():
            service = FacilityService(
                admission=AdmissionController(
                    rate_per_s=1000.0, burst=1000.0, max_in_flight=1
                ),
                clock=lambda: 0.0,
            )
            responses = await asyncio.gather(
                *(
                    service.call("classify_regime", {"at_ci_g_per_kwh": 20.0 + i})
                    for i in range(10)
                )
            )
            assert sum(r.ok for r in responses) == 1
            shed = [r for r in responses if not r.ok]
            assert all(r.error["code"] == "overloaded" for r in shed)
            assert service.metrics.reconciles()

        run(main())

    def test_core_and_cache_dir_are_exclusive(self):
        with pytest.raises(ConfigurationError):
            FacilityService(core=FacilityCore(), cache_dir="/tmp/x")


class TestStatePersistence:
    def test_idle_round_trip_is_lossless_and_json_safe(self):
        async def main():
            service = open_service(seed=7)
            await service.call("emissions", {})
            await service.call("divine", {})  # one failure on the books
            service.rng.integers(0, 100, size=3)  # advance the RNG
            snapshot = json.loads(json.dumps(service.state_dict()))
            restored = FacilityService(seed=99)
            restored.load_state_dict(snapshot)
            assert restored.state_dict() == service.state_dict()
            assert restored.rng.integers(0, 1 << 32) == service.rng.integers(
                0, 1 << 32
            )

        run(main())

    def test_kill_mid_flight_folds_in_flight_into_failed(self):
        async def main():
            service = open_service()
            victim = asyncio.ensure_future(
                service.call("sweep", SWEEP_PARAMS, tenant="t0")
            )
            await asyncio.sleep(0)
            assert service.in_flight == 1
            snapshot = service.state_dict()
            assert snapshot["in_flight"] == {"t0": 1}
            assert len(snapshot["inflight_keys"]) == 1
            victim.cancel()
            await asyncio.gather(victim, return_exceptions=True)

            restored = FacilityService()
            restored.load_state_dict(snapshot)
            assert restored.metrics.lost_to_restart == 1
            assert restored.metrics.failures_by_code["lost-to-restart"] == 1
            assert restored.metrics.reconciles()
            # The restored service keeps serving and keeps its books.
            response = await restored.call("emissions", {}, tenant="t0")
            assert response.ok
            assert restored.metrics.reconciles()

        run(main())

    def test_load_refuses_while_requests_are_in_flight(self):
        async def main():
            service = open_service()
            task = asyncio.ensure_future(service.call("sweep", SWEEP_PARAMS))
            await asyncio.sleep(0)
            with pytest.raises(ServiceError):
                service.load_state_dict(FacilityService().state_dict())
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)

        run(main())

    def test_drain_settles_the_request_plane(self):
        async def main():
            service = open_service()
            tasks = [
                asyncio.ensure_future(service.call("emissions", {"n_nodes": n}))
                for n in (100, 200, 300)
            ]
            await service.drain()
            assert service.in_flight == 0
            responses = await asyncio.gather(*tasks)
            assert all(r.ok for r in responses)

        run(main())


class TestSharedCore:
    def test_sessions_and_service_share_one_cache(self):
        async def main():
            evaluations = []
            core = FacilityCore(runner=counting_runner(evaluations))
            service = open_service(core=core)
            session = FacilitySession(core=core)
            session.sweep(
                chunk_size=SWEEP_PARAMS["chunk_size"], **SWEEP_PARAMS["overrides"]
            )
            response = await service.call("sweep", SWEEP_PARAMS)
            assert response.ok
            assert len(evaluations) == 2
            assert response.result["summary"]["n_scenarios"] > 0
            # Both went through the same memory cache: second call was a hit.
            assert core.memory_cache.hits >= 1

        run(main())

    def test_envelope_version_is_v1(self):
        async def main():
            service = open_service()
            response = await service.call("emissions", {})
            assert response.to_dict()["v"] == PROTOCOL_VERSION == 1

        run(main())
