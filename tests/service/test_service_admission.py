"""Admission control: token buckets, depth shedding, deterministic time."""

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.service.admission import AdmissionController, TokenBucket


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=3)
        assert all(bucket.try_acquire(0.0) for _ in range(3))
        assert not bucket.try_acquire(0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate_per_s=2.0, burst=2)
        assert bucket.try_acquire(0.0) and bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.5)  # 0.5 s * 2/s = 1 token back
        assert not bucket.try_acquire(0.5)

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=2)
        assert bucket.try_acquire(1000.0)
        assert bucket.try_acquire(1000.0)
        assert not bucket.try_acquire(1000.0)

    def test_time_going_backwards_is_harmless(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=1)
        assert bucket.try_acquire(10.0)
        assert not bucket.try_acquire(5.0)  # no refill from the past
        assert bucket.try_acquire(11.0)

    def test_retry_after_matches_the_deficit(self):
        bucket = TokenBucket(rate_per_s=2.0, burst=1)
        assert bucket.try_acquire(0.0)
        assert bucket.retry_after_s(0.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=0.0, burst=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=1.0, burst=0)

    def test_state_round_trip(self):
        bucket = TokenBucket(rate_per_s=3.0, burst=5)
        bucket.try_acquire(2.0)
        clone = TokenBucket(1.0, 1.0)
        clone.load_state_dict(bucket.state_dict())
        assert clone.state_dict() == bucket.state_dict()


class TestAdmissionController:
    def test_admits_within_limits(self):
        controller = AdmissionController(rate_per_s=10.0, burst=10.0)
        controller.admit("t", now_s=0.0, in_flight=0)  # no raise

    def test_rate_limits_with_retry_hint(self):
        controller = AdmissionController(rate_per_s=1.0, burst=2.0)
        controller.admit("t", now_s=0.0, in_flight=0)
        controller.admit("t", now_s=0.0, in_flight=0)
        with pytest.raises(AdmissionError) as err:
            controller.admit("t", now_s=0.0, in_flight=0)
        assert err.value.code == "rate-limited"
        assert err.value.retry_after_s > 0

    def test_tenants_have_independent_buckets(self):
        controller = AdmissionController(rate_per_s=1.0, burst=1.0)
        controller.admit("noisy", now_s=0.0, in_flight=0)
        with pytest.raises(AdmissionError):
            controller.admit("noisy", now_s=0.0, in_flight=0)
        controller.admit("polite", now_s=0.0, in_flight=0)  # unaffected

    def test_per_tenant_overrides(self):
        controller = AdmissionController(rate_per_s=100.0, burst=100.0)
        controller.set_tenant_limits("small", rate_per_s=1.0, burst=1.0)
        controller.admit("small", now_s=0.0, in_flight=0)
        with pytest.raises(AdmissionError):
            controller.admit("small", now_s=0.0, in_flight=0)

    def test_depth_shedding_beats_the_bucket(self):
        """A saturated service must not also drain the tenant's bucket."""
        controller = AdmissionController(rate_per_s=1.0, burst=1.0, max_in_flight=1)
        with pytest.raises(AdmissionError) as err:
            controller.admit("t", now_s=0.0, in_flight=1)
        assert err.value.code == "overloaded"
        controller.admit("t", now_s=0.0, in_flight=0)  # bucket still full

    def test_state_round_trip_preserves_bucket_levels(self):
        controller = AdmissionController(rate_per_s=5.0, burst=5.0, max_in_flight=7)
        controller.admit("a", now_s=0.0, in_flight=0)
        controller.set_tenant_limits("b", rate_per_s=1.0, burst=2.0)
        restored = AdmissionController()
        restored.load_state_dict(controller.state_dict())
        assert restored.state_dict() == controller.state_dict()
        assert restored.max_in_flight == 7
        assert restored.bucket("a").tokens == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_in_flight=0)
