"""Power meter, recorder and persistence tests."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.facility.archer2 import scaled_inventory
from repro.telemetry.io import load_csv, load_npz, save_csv, save_npz
from repro.telemetry.meters import MeterSpec, PowerMeter
from repro.telemetry.recorder import CabinetPowerRecorder
from repro.telemetry.series import TimeSeries


class TestPowerMeter:
    def test_sampling_cadence(self, rng):
        meter = PowerMeter(MeterSpec(interval_s=60.0, dropout_probability=0.0))
        series = meter.sample_function(lambda t: np.full_like(t, 1e6), 0.0, 3600.0, rng)
        assert len(series) == 60
        np.testing.assert_allclose(np.diff(series.times_s), 60.0)

    def test_noise_amplitude(self, rng):
        meter = PowerMeter(
            MeterSpec(noise_fraction=0.01, dropout_probability=0.0, quantisation_w=0.0)
        )
        series = meter.sample_function(
            lambda t: np.full_like(t, 1e6), 0.0, 100 * 900.0, rng
        )
        rel_std = series.std() / series.mean()
        assert rel_std == pytest.approx(0.01, rel=0.3)

    def test_noise_free_meter_exact(self, rng):
        meter = PowerMeter(
            MeterSpec(noise_fraction=0.0, dropout_probability=0.0, quantisation_w=0.0)
        )
        series = meter.sample_function(lambda t: t * 2.0, 0.0, 9000.0, rng)
        np.testing.assert_allclose(series.values, series.times_s * 2.0)

    def test_dropouts_recorded_as_nan(self, rng):
        meter = PowerMeter(MeterSpec(dropout_probability=0.5))
        series = meter.sample_function(
            lambda t: np.full_like(t, 1e6), 0.0, 900.0 * 500, rng
        )
        dropout_rate = 1.0 - series.n_valid / len(series)
        assert dropout_rate == pytest.approx(0.5, abs=0.1)

    def test_quantisation(self, rng):
        meter = PowerMeter(
            MeterSpec(noise_fraction=0.0, dropout_probability=0.0, quantisation_w=100.0)
        )
        series = meter.sample_function(lambda t: np.full_like(t, 1234.0), 0.0, 9000.0, rng)
        np.testing.assert_allclose(series.values % 100.0, 0.0)

    def test_quantisation_never_resurrects_dropped_samples(self, rng):
        """With dropout and quantisation both active, every NaN the meter
        records must survive the quantisation stage — a dropped sample is
        data that never existed, and rounding must not invent it."""
        meter = PowerMeter(
            MeterSpec(dropout_probability=0.3, quantisation_w=100.0)
        )
        series = meter.sample_function(
            lambda t: np.full_like(t, 1e6), 0.0, 900.0 * 2000, rng
        )
        nan_mask = np.isnan(series.values)
        assert nan_mask.any()  # dropouts occurred
        assert np.all(series.values[~nan_mask] % 100.0 == 0.0)  # rest quantised

    def test_nan_in_truth_survives_measurement(self, rng):
        """NaN already present in the truth signal (an instrument gap) must
        come out NaN, not be rounded into a number."""
        meter = PowerMeter(MeterSpec(quantisation_w=100.0, dropout_probability=0.0))

        def gappy_truth(times):
            truth = np.full_like(times, 1e6)
            truth[::7] = np.nan
            return truth

        series = meter.sample_function(gappy_truth, 0.0, 900.0 * 700, rng)
        assert np.isnan(series.values[::7]).all()
        assert not np.isnan(np.delete(series.values, np.s_[::7])).any()

    def test_empty_span_rejected(self, rng):
        meter = PowerMeter(MeterSpec())
        with pytest.raises(TelemetryError):
            meter.sample_function(lambda t: t, 100.0, 100.0, rng)

    def test_shape_mismatch_rejected(self, rng):
        meter = PowerMeter(MeterSpec())
        with pytest.raises(TelemetryError):
            meter.sample_function(lambda t: np.zeros(3), 0.0, 9000.0, rng)


class TestCabinetPowerRecorder:
    def test_true_power_includes_static_components(self, baseline_campaign):
        """At any instant, cabinet power ≥ switches + overheads + all-idle."""
        inv = scaled_inventory(0.05)
        recorder = CabinetPowerRecorder(inv)
        times = np.array([5 * 86400.0])
        power = recorder.true_power_w(baseline_campaign.simulation.trace, times)
        floor = inv.compute_cabinet_power_w(0.0)
        assert power[0] >= floor

    def test_true_series_regular(self, baseline_campaign):
        inv = scaled_inventory(0.05)
        recorder = CabinetPowerRecorder(inv)
        series = recorder.true_series(baseline_campaign.simulation.trace, 3600.0)
        np.testing.assert_allclose(np.diff(series.times_s), 3600.0)

    def test_record_close_to_truth(self, baseline_campaign, rng):
        inv = scaled_inventory(0.05)
        recorder = CabinetPowerRecorder(inv)
        trace = baseline_campaign.simulation.trace
        measured = recorder.record(trace, rng)
        truth = recorder.true_series(trace, recorder.meter.spec.interval_s)
        # Means agree to well under the 1 % noise floor × sqrt(n).
        assert measured.mean() == pytest.approx(truth.mean(), rel=0.01)


class TestPersistence:
    def test_csv_roundtrip(self, tmp_path):
        series = TimeSeries(
            np.array([0.0, 60.0, 120.0]), np.array([1.5, np.nan, 3.25]), "power"
        )
        path = tmp_path / "series.csv"
        save_csv(series, path)
        loaded = load_csv(path, name="power")
        np.testing.assert_allclose(loaded.times_s, series.times_s)
        np.testing.assert_allclose(loaded.values, series.values)
        assert loaded.name == "power"

    def test_csv_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(TelemetryError):
            load_csv(path)

    def test_csv_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,value\n1,2,3\n")
        with pytest.raises(TelemetryError):
            load_csv(path)

    def test_csv_non_numeric_time_wrapped_with_context(self, tmp_path):
        """Regression: a corrupt time field used to escape as a raw
        ValueError; it must surface as TelemetryError naming file and line."""
        path = tmp_path / "corrupt.csv"
        path.write_text("time_s,value\n0,1.5\noops,2.5\n")
        with pytest.raises(TelemetryError, match=r"corrupt\.csv:3.*oops"):
            load_csv(path)

    def test_csv_non_numeric_value_wrapped_with_context(self, tmp_path):
        path = tmp_path / "corrupt.csv"
        path.write_text("time_s,value\n0,1.5\n60,n/a\n")
        with pytest.raises(TelemetryError, match=r"corrupt\.csv:3.*non-numeric"):
            load_csv(path)

    def test_npz_missing_key_wrapped(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez_compressed(path, times_s=np.array([0.0, 1.0]))
        with pytest.raises(TelemetryError, match="partial.npz"):
            load_npz(path)

    def test_npz_roundtrip(self, tmp_path):
        series = TimeSeries(
            np.array([0.0, 1.0]), np.array([np.nan, 2.0]), "cabinet"
        )
        path = tmp_path / "series.npz"
        save_npz(series, path)
        loaded = load_npz(path)
        np.testing.assert_allclose(loaded.times_s, series.times_s)
        np.testing.assert_allclose(loaded.values, series.values)
        assert loaded.name == "cabinet"
