"""Telemetry data-quality tests."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry.quality import assess_quality, find_flatlines, find_gaps
from repro.telemetry.series import TimeSeries


def regular(values, step=900.0):
    return TimeSeries(step * np.arange(len(values)), np.asarray(values, dtype=float))


class TestFindGaps:
    def test_no_gaps_in_clean_series(self):
        series = regular(np.random.default_rng(0).normal(3220, 10, 100))
        assert find_gaps(series, max_gap_s=1800.0) == []

    def test_missing_timestamps_gap(self):
        times = np.concatenate([np.arange(0.0, 10.0), np.arange(100.0, 110.0)])
        series = TimeSeries(times, np.ones(20))
        gaps = find_gaps(series, max_gap_s=10.0)
        assert len(gaps) == 1
        assert gaps[0].start_s == 9.0
        assert gaps[0].end_s == 100.0
        assert gaps[0].duration_s == 91.0

    def test_nan_run_counts_as_gap(self):
        values = np.ones(50)
        values[10:30] = np.nan
        series = regular(values, step=60.0)
        gaps = find_gaps(series, max_gap_s=300.0)
        assert len(gaps) == 1
        assert gaps[0].duration_s == pytest.approx(21 * 60.0)

    def test_all_nan_is_one_gap(self):
        series = regular([np.nan] * 10)
        gaps = find_gaps(series, max_gap_s=60.0)
        assert len(gaps) == 1
        assert gaps[0].duration_s == pytest.approx(series.span_s)


class TestFlatlines:
    def test_jittery_series_not_flat(self, rng):
        series = regular(3220.0 + rng.normal(0, 5, 200))
        assert find_flatlines(series) == 0.0

    def test_stuck_sensor_detected(self, rng):
        values = 3220.0 + rng.normal(0, 5, 200)
        values[50:100] = 3215.0  # 50 identical samples
        fraction = find_flatlines(regular(values))
        assert fraction == pytest.approx(50 / 200)

    def test_short_repeats_ignored(self):
        values = np.array([1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0, 5.0])
        assert find_flatlines(regular(values), min_run=4) == 0.0

    def test_nan_breaks_runs(self):
        values = np.array([1.0] * 5 + [np.nan] + [1.0] * 5)
        assert find_flatlines(regular(values), min_run=8) == 0.0

    def test_min_run_validated(self):
        with pytest.raises(TelemetryError):
            find_flatlines(regular(np.ones(10)), min_run=1)


class TestAssessQuality:
    def test_healthy_series(self, rng):
        series = regular(3220.0 + rng.normal(0, 20, 500))
        report = assess_quality(series)
        assert report.coverage == 1.0
        assert report.healthy()
        assert report.gaps == ()

    def test_unhealthy_low_coverage(self, rng):
        values = 3220.0 + rng.normal(0, 20, 500)
        values[::3] = np.nan
        report = assess_quality(regular(values))
        assert report.coverage < 0.95
        assert not report.healthy()

    def test_unhealthy_long_gap(self, rng):
        values = 3220.0 + rng.normal(0, 20, 500)
        values[100:250] = np.nan  # 150 × 900 s ≈ 1.6 days
        report = assess_quality(regular(values))
        assert report.longest_gap_s > 86_400.0
        assert not report.healthy()

    def test_campaign_telemetry_is_healthy(self, baseline_campaign):
        """The simulated meter's default dropout rate must pass the gates."""
        report = assess_quality(baseline_campaign.measured_kw)
        assert report.healthy()
