"""TimeSeries tests."""

import numpy as np
import pytest

from repro.errors import SeriesShapeError
from repro.telemetry.series import TimeSeries


def make_series(n=100, start=0.0, step=60.0, value=100.0):
    times = start + step * np.arange(n)
    return TimeSeries(times, np.full(n, value), "test")


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(SeriesShapeError):
            TimeSeries(np.array([]), np.array([]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(SeriesShapeError):
            TimeSeries(np.array([0.0, 1.0]), np.array([1.0]))

    def test_non_increasing_times_rejected(self):
        with pytest.raises(SeriesShapeError):
            TimeSeries(np.array([0.0, 1.0, 1.0]), np.array([1.0, 2.0, 3.0]))

    def test_nan_timestamps_rejected(self):
        with pytest.raises(SeriesShapeError):
            TimeSeries(np.array([0.0, np.nan]), np.array([1.0, 2.0]))

    def test_2d_rejected(self):
        with pytest.raises(SeriesShapeError):
            TimeSeries(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_nan_values_allowed(self):
        series = TimeSeries(np.array([0.0, 1.0]), np.array([1.0, np.nan]))
        assert series.n_valid == 1


class TestStatistics:
    def test_mean_skips_nan(self):
        series = TimeSeries(
            np.array([0.0, 1.0, 2.0]), np.array([10.0, np.nan, 30.0])
        )
        assert series.mean() == pytest.approx(20.0)

    def test_percentiles(self):
        series = TimeSeries(np.arange(101.0), np.arange(101.0))
        assert series.percentile(50.0) == pytest.approx(50.0)
        p5, p95 = series.percentile(np.array([5.0, 95.0]))
        assert p5 == pytest.approx(5.0)
        assert p95 == pytest.approx(95.0)

    def test_min_max_std(self):
        series = TimeSeries(np.arange(4.0), np.array([1.0, 3.0, 5.0, 7.0]))
        assert series.min() == 1.0
        assert series.max() == 7.0
        assert series.std() == pytest.approx(np.std([1, 3, 5, 7]))

    def test_time_weighted_mean_regular_equals_mean(self):
        series = make_series(50)
        assert series.time_weighted_mean() == pytest.approx(series.mean())

    def test_time_weighted_mean_irregular(self):
        # 10 W held for 9 s, then 100 W held for 1 s (synthesised final gap).
        series = TimeSeries(np.array([0.0, 9.0]), np.array([10.0, 100.0]))
        # durations: 9 and 9 (last interval mirrors previous spacing)
        assert series.time_weighted_mean() == pytest.approx(55.0)

    def test_span_properties(self):
        series = make_series(10, start=100.0, step=50.0)
        assert series.t_start_s == 100.0
        assert series.t_end_s == 100.0 + 9 * 50.0
        assert series.span_s == 450.0


class TestTransforms:
    def test_slice_half_open(self):
        series = make_series(10, step=1.0)
        part = series.slice(2.0, 5.0)
        assert len(part) == 3
        assert part.t_start_s == 2.0

    def test_slice_empty_raises(self):
        with pytest.raises(SeriesShapeError):
            make_series(10, step=1.0).slice(100.0, 200.0)

    def test_slice_bad_bounds(self):
        with pytest.raises(SeriesShapeError):
            make_series(10).slice(5.0, 5.0)

    def test_resample_holds_previous_value(self):
        series = TimeSeries(np.array([0.0, 100.0]), np.array([1.0, 2.0]))
        resampled = series.resample(10.0)
        assert resampled.values[0] == 1.0
        assert resampled.values[5] == 1.0
        assert resampled.values[-1] == 2.0

    def test_resample_regular_grid(self):
        resampled = make_series(100, step=60.0).resample(600.0)
        np.testing.assert_allclose(np.diff(resampled.times_s), 600.0)

    def test_rolling_mean_smooths(self, rng):
        times = np.arange(0.0, 1000.0, 1.0)
        noisy = 100.0 + rng.normal(0, 10, size=len(times))
        series = TimeSeries(times, noisy)
        smooth = series.rolling_mean(100.0)
        assert smooth.std() < series.std()

    def test_rolling_mean_preserves_constant(self):
        series = make_series(50, value=42.0)
        smooth = series.rolling_mean(300.0)
        np.testing.assert_allclose(smooth.values, 42.0)

    def test_rolling_mean_skips_nan(self):
        values = np.array([1.0, np.nan, 3.0])
        series = TimeSeries(np.array([0.0, 1.0, 2.0]), values)
        smooth = series.rolling_mean(10.0)
        np.testing.assert_allclose(smooth.values, 2.0)

    def test_dropna(self):
        series = TimeSeries(
            np.array([0.0, 1.0, 2.0]), np.array([1.0, np.nan, 3.0])
        )
        assert len(series.dropna()) == 2

    def test_dropna_all_nan_raises(self):
        series = TimeSeries(np.array([0.0, 1.0]), np.array([np.nan, np.nan]))
        with pytest.raises(SeriesShapeError):
            series.dropna()

    def test_scale_and_shift(self):
        series = make_series(5, value=1000.0)
        assert series.scale_values(1e-3).mean() == pytest.approx(1.0)
        assert series.shift_values(-500.0).mean() == pytest.approx(500.0)

    def test_add_requires_matching_timestamps(self):
        a = make_series(5)
        b = make_series(5, value=23.0)
        assert (a + b).mean() == pytest.approx(123.0)
        c = make_series(5, start=1.0)
        with pytest.raises(SeriesShapeError):
            a + c
