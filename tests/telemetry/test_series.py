"""TimeSeries tests."""

import numpy as np
import pytest

from repro.errors import SeriesShapeError
from repro.telemetry.series import TimeSeries


def make_series(n=100, start=0.0, step=60.0, value=100.0):
    times = start + step * np.arange(n)
    return TimeSeries(times, np.full(n, value), "test")


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(SeriesShapeError):
            TimeSeries(np.array([]), np.array([]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(SeriesShapeError):
            TimeSeries(np.array([0.0, 1.0]), np.array([1.0]))

    def test_non_increasing_times_rejected(self):
        with pytest.raises(SeriesShapeError):
            TimeSeries(np.array([0.0, 1.0, 1.0]), np.array([1.0, 2.0, 3.0]))

    def test_nan_timestamps_rejected(self):
        with pytest.raises(SeriesShapeError):
            TimeSeries(np.array([0.0, np.nan]), np.array([1.0, 2.0]))

    def test_2d_rejected(self):
        with pytest.raises(SeriesShapeError):
            TimeSeries(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_nan_values_allowed(self):
        series = TimeSeries(np.array([0.0, 1.0]), np.array([1.0, np.nan]))
        assert series.n_valid == 1


class TestStatistics:
    def test_mean_skips_nan(self):
        series = TimeSeries(
            np.array([0.0, 1.0, 2.0]), np.array([10.0, np.nan, 30.0])
        )
        assert series.mean() == pytest.approx(20.0)

    def test_percentiles(self):
        series = TimeSeries(np.arange(101.0), np.arange(101.0))
        assert series.percentile(50.0) == pytest.approx(50.0)
        p5, p95 = series.percentile(np.array([5.0, 95.0]))
        assert p5 == pytest.approx(5.0)
        assert p95 == pytest.approx(95.0)

    def test_min_max_std(self):
        series = TimeSeries(np.arange(4.0), np.array([1.0, 3.0, 5.0, 7.0]))
        assert series.min() == 1.0
        assert series.max() == 7.0
        assert series.std() == pytest.approx(np.std([1, 3, 5, 7]))

    def test_time_weighted_mean_regular_equals_mean(self):
        series = make_series(50)
        assert series.time_weighted_mean() == pytest.approx(series.mean())

    def test_time_weighted_mean_irregular(self):
        # 10 W held for 9 s, then 100 W held for 1 s (synthesised final gap).
        series = TimeSeries(np.array([0.0, 9.0]), np.array([10.0, 100.0]))
        # durations: 9 and 9 (last sample holds for the last observed interval)
        assert series.time_weighted_mean() == pytest.approx(55.0)

    def test_time_weighted_mean_epoch_timestamps(self):
        """Regression: the synthetic final interval must not depend on the
        timestamp origin — epoch-second series used to get a ~50-year tail."""
        values = np.array([1.0, 2.0, 3.0])
        offsets = np.array([0.0, 60.0, 120.0])
        zero_based = TimeSeries(offsets, values)
        epoch = TimeSeries(1.7e9 + offsets, values)
        assert epoch.time_weighted_mean() == pytest.approx(2.0)
        assert epoch.time_weighted_mean() == pytest.approx(
            zero_based.time_weighted_mean()
        )

    def test_time_weighted_mean_last_observed_interval(self):
        # durations: 1, 10, and 10 again for the final sample
        series = TimeSeries(np.array([0.0, 1.0, 11.0]), np.array([0.0, 10.0, 20.0]))
        assert series.time_weighted_mean() == pytest.approx(300.0 / 21.0)

    def test_time_weighted_mean_single_nan_is_nan(self):
        series = TimeSeries(np.array([1.7e9]), np.array([np.nan]))
        assert np.isnan(series.time_weighted_mean())

    def test_time_weighted_mean_all_nan_is_nan(self):
        series = TimeSeries(np.arange(3.0), np.full(3, np.nan))
        assert np.isnan(series.time_weighted_mean())

    def test_span_properties(self):
        series = make_series(10, start=100.0, step=50.0)
        assert series.t_start_s == 100.0
        assert series.t_end_s == 100.0 + 9 * 50.0
        assert series.span_s == 450.0


class TestTransforms:
    def test_slice_half_open(self):
        series = make_series(10, step=1.0)
        part = series.slice(2.0, 5.0)
        assert len(part) == 3
        assert part.t_start_s == 2.0

    def test_slice_empty_raises(self):
        with pytest.raises(SeriesShapeError):
            make_series(10, step=1.0).slice(100.0, 200.0)

    def test_slice_bad_bounds(self):
        with pytest.raises(SeriesShapeError):
            make_series(10).slice(5.0, 5.0)

    def test_resample_holds_previous_value(self):
        series = TimeSeries(np.array([0.0, 100.0]), np.array([1.0, 2.0]))
        resampled = series.resample(10.0)
        assert resampled.values[0] == 1.0
        assert resampled.values[5] == 1.0
        assert resampled.values[-1] == 2.0

    def test_resample_regular_grid(self):
        resampled = make_series(100, step=60.0).resample(600.0)
        np.testing.assert_allclose(np.diff(resampled.times_s), 600.0)

    def test_resample_exact_multiple_keeps_final_point(self):
        """Regression: when span is an exact multiple of the interval the
        grid must contain exactly span/interval + 1 points, ending at
        t_end — independent of float rounding in the endpoint."""
        series = make_series(10, step=60.0)  # span 540 s
        resampled = series.resample(60.0)
        assert len(resampled) == 10
        assert resampled.times_s[-1] == series.t_end_s
        resampled = series.resample(540.0)  # interval == span
        assert len(resampled) == 2
        assert resampled.times_s[-1] == series.t_end_s

    def test_resample_fractional_interval_grid_count(self):
        # 0.3 / 0.1 evaluates to 2.999... in float; the count must still be 4.
        series = TimeSeries(np.array([0.0, 0.1, 0.2, 0.3]), np.arange(4.0))
        resampled = series.resample(0.1)
        assert len(resampled) == 4

    def test_resample_never_extends_past_span(self):
        series = make_series(10, step=60.0)  # span 540 s
        resampled = series.resample(400.0)  # 540/400 -> grid at 0 and 400 only
        assert len(resampled) == 2
        assert resampled.times_s[-1] <= series.t_end_s

    def test_rolling_mean_smooths(self, rng):
        times = np.arange(0.0, 1000.0, 1.0)
        noisy = 100.0 + rng.normal(0, 10, size=len(times))
        series = TimeSeries(times, noisy)
        smooth = series.rolling_mean(100.0)
        assert smooth.std() < series.std()

    def test_rolling_mean_preserves_constant(self):
        series = make_series(50, value=42.0)
        smooth = series.rolling_mean(300.0)
        np.testing.assert_allclose(smooth.values, 42.0)

    def test_rolling_mean_skips_nan(self):
        values = np.array([1.0, np.nan, 3.0])
        series = TimeSeries(np.array([0.0, 1.0, 2.0]), values)
        smooth = series.rolling_mean(10.0)
        np.testing.assert_allclose(smooth.values, 2.0)

    def test_dropna(self):
        series = TimeSeries(
            np.array([0.0, 1.0, 2.0]), np.array([1.0, np.nan, 3.0])
        )
        assert len(series.dropna()) == 2

    def test_dropna_all_nan_raises(self):
        series = TimeSeries(np.array([0.0, 1.0]), np.array([np.nan, np.nan]))
        with pytest.raises(SeriesShapeError):
            series.dropna()

    def test_scale_and_shift(self):
        series = make_series(5, value=1000.0)
        assert series.scale_values(1e-3).mean() == pytest.approx(1.0)
        assert series.shift_values(-500.0).mean() == pytest.approx(500.0)

    def test_add_requires_matching_timestamps(self):
        a = make_series(5)
        b = make_series(5, value=23.0)
        assert (a + b).mean() == pytest.approx(123.0)
        c = make_series(5, start=1.0)
        with pytest.raises(SeriesShapeError):
            a + c
