"""Streaming statistics engine tests: OnlineStats, P², chunked reading."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SeriesShapeError, TelemetryError
from repro.telemetry.io import save_csv, save_npz
from repro.telemetry.series import TimeSeries
from repro.telemetry.streaming import (
    ChunkedSeriesReader,
    MergingQuantileSketch,
    OnlineStats,
    P2Quantile,
    as_chunk_reader,
    stream_stats,
)


def make_noisy_series(n=1000, seed=3, nan_fraction=0.05, t0=0.0):
    rng = np.random.default_rng(seed)
    times = t0 + np.cumsum(rng.uniform(1.0, 900.0, n))
    values = 3220.0 + 50.0 * rng.standard_normal(n)
    values[rng.random(n) < nan_fraction] = np.nan
    return TimeSeries(times, values, "noisy")


def assert_matches_batch(stats, series, rel=1e-9):
    assert stats.n_total == len(series)
    assert stats.n_valid == series.n_valid
    assert stats.mean == pytest.approx(series.mean(), rel=rel, abs=1e-6)
    assert stats.std == pytest.approx(series.std(), rel=rel, abs=1e-6)
    assert stats.minimum == series.min()
    assert stats.maximum == series.max()
    assert stats.t_start_s == series.t_start_s
    assert stats.t_end_s == series.t_end_s
    assert stats.span_s == pytest.approx(series.span_s, rel=rel)
    assert stats.time_weighted_mean == pytest.approx(
        series.time_weighted_mean(), rel=rel, abs=1e-6
    )


class TestOnlineStats:
    def test_empty_is_all_nan(self):
        stats = OnlineStats()
        assert stats.n_total == 0 and stats.n_valid == 0
        for value in (stats.mean, stats.std, stats.variance, stats.minimum,
                      stats.maximum, stats.time_weighted_mean, stats.span_s):
            assert math.isnan(value)

    def test_single_update_matches_batch(self):
        series = make_noisy_series()
        assert_matches_batch(OnlineStats.from_series(series), series)

    def test_epoch_timestamps_match_batch(self):
        series = make_noisy_series(t0=1.6e9)
        assert_matches_batch(OnlineStats.from_series(series), series)

    def test_push_equals_update(self):
        series = make_noisy_series(40)
        pushed = OnlineStats()
        for t, v in zip(series.times_s, series.values):
            pushed.push(t, v)
        assert_matches_batch(pushed, series)

    def test_single_sample(self):
        stats = OnlineStats().push(10.0, 42.0)
        assert stats.mean == 42.0
        assert stats.time_weighted_mean == 42.0
        assert stats.variance == 0.0

    def test_single_nan_sample_is_nan(self):
        stats = OnlineStats().push(10.0, float("nan"))
        assert math.isnan(stats.time_weighted_mean)
        assert math.isnan(stats.mean)
        assert stats.n_total == 1 and stats.n_valid == 0

    def test_all_nan_series(self):
        stats = OnlineStats()
        stats.update(np.arange(5.0), np.full(5, np.nan))
        assert math.isnan(stats.mean)
        assert math.isnan(stats.time_weighted_mean)
        assert stats.n_total == 5 and stats.n_valid == 0

    def test_empty_chunk_is_noop(self):
        series = make_noisy_series(50)
        stats = OnlineStats()
        stats.update(np.array([]), np.array([]))
        stats.update(series.times_s, series.values)
        stats.update(np.array([]), np.array([]))
        assert_matches_batch(stats, series)

    def test_out_of_order_chunks_rejected(self):
        stats = OnlineStats().push(100.0, 1.0)
        with pytest.raises(SeriesShapeError):
            stats.update(np.array([50.0]), np.array([2.0]))

    def test_non_monotonic_chunk_rejected(self):
        with pytest.raises(SeriesShapeError):
            OnlineStats().update(np.array([0.0, 1.0, 1.0]), np.ones(3))

    def test_nonfinite_timestamp_rejected(self):
        with pytest.raises(SeriesShapeError):
            OnlineStats().update(np.array([0.0, np.inf]), np.ones(2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SeriesShapeError):
            OnlineStats().update(np.arange(3.0), np.ones(2))

    def test_merge_equals_sequential(self):
        series = make_noisy_series(500)
        for cut in (1, 100, 499):
            left = OnlineStats().update(series.times_s[:cut], series.values[:cut])
            right = OnlineStats().update(series.times_s[cut:], series.values[cut:])
            assert_matches_batch(left.merge(right), series)

    def test_merge_with_empty(self):
        series = make_noisy_series(50)
        full = OnlineStats.from_series(series)
        assert_matches_batch(full.merge(OnlineStats()), series)
        assert_matches_batch(OnlineStats().merge(full), series)

    def test_merge_overlapping_rejected(self):
        a = OnlineStats().push(10.0, 1.0)
        b = OnlineStats().push(5.0, 2.0)
        with pytest.raises(SeriesShapeError):
            a.merge(b)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=2, max_value=300),
        chunk=st.integers(min_value=1, max_value=97),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_chunking_matches_batch(self, seed, n, chunk):
        """The tentpole property: chunking never changes the statistics."""
        rng = np.random.default_rng(seed)
        times = np.cumsum(rng.uniform(0.1, 1e4, n))
        values = rng.uniform(-1e6, 1e6, n)
        values[rng.random(n) < 0.2] = np.nan
        series = TimeSeries(times, values)
        stats = OnlineStats()
        for lo in range(0, n, chunk):
            stats.update(times[lo : lo + chunk], values[lo : lo + chunk])
        if stats.n_valid:
            assert_matches_batch(stats, series)
        else:
            assert math.isnan(stats.mean)


class TestStreamingStatePersistence:
    def test_online_stats_restore_bit_identical(self):
        series = make_noisy_series(500)
        stats = OnlineStats().update(series.times_s[:300], series.values[:300])
        resumed = OnlineStats.restore(stats.state_dict())
        stats.update(series.times_s[300:], series.values[300:])
        resumed.update(series.times_s[300:], series.values[300:])
        assert resumed.state_dict() == stats.state_dict()
        assert resumed.mean == stats.mean
        assert resumed.std == stats.std

    def test_online_stats_state_json_roundtrip(self):
        import json

        series = make_noisy_series(100)
        stats = OnlineStats().update(series.times_s, series.values)
        state = json.loads(json.dumps(stats.state_dict()))
        assert OnlineStats.restore(state).state_dict() == stats.state_dict()

    def test_p2_quantile_restore_bit_identical(self):
        rng = np.random.default_rng(11)
        values = rng.normal(size=200)
        tracker = P2Quantile(0.9).update(values[:40])
        resumed = P2Quantile.restore(tracker.state_dict())
        tracker.update(values[40:])
        resumed.update(values[40:])
        assert resumed.state_dict() == tracker.state_dict()
        assert resumed.result() == tracker.result()

    def test_p2_quantile_restore_before_marker_init(self):
        """A snapshot taken while still buffering (< 5 samples) restores."""
        tracker = P2Quantile(0.5).update(np.array([1.0, 2.0]))
        resumed = P2Quantile.restore(tracker.state_dict())
        assert resumed.result() == tracker.result()


class TestP2Quantile:
    def test_invalid_quantile_rejected(self):
        for q in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(TelemetryError):
                P2Quantile(q)

    def test_small_samples_exact(self):
        est = P2Quantile(0.5)
        est.update(np.array([3.0, 1.0, 2.0]))
        assert est.result() == pytest.approx(2.0)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).result())

    def test_nan_skipped(self):
        est = P2Quantile(0.5)
        est.update(np.array([1.0, np.nan, 2.0, np.nan, 3.0]))
        assert est.result() == pytest.approx(2.0)

    def test_uniform_quantiles_converge(self):
        rng = np.random.default_rng(11)
        data = rng.uniform(0.0, 100.0, 20_000)
        for q in (0.05, 0.5, 0.95):
            est = P2Quantile(q)
            est.update(data)
            assert est.result() == pytest.approx(100.0 * q, abs=1.5)

    def test_gaussian_median_close_to_numpy(self):
        rng = np.random.default_rng(5)
        data = 3220.0 + 50.0 * rng.standard_normal(10_000)
        est = P2Quantile(0.5)
        est.update(data)
        assert est.result() == pytest.approx(float(np.median(data)), rel=1e-3)


class TestMergingQuantileSketch:
    def test_invalid_quantile_rejected(self):
        sketch = MergingQuantileSketch()
        for q in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(TelemetryError):
                sketch.result(q)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(TelemetryError):
            MergingQuantileSketch(block_size=1)
        with pytest.raises(TelemetryError):
            MergingQuantileSketch(summary_size=0)

    def test_empty_is_nan(self):
        assert math.isnan(MergingQuantileSketch().result(0.5))

    def test_exact_below_block_size(self):
        """While the buffer has never folded, results equal np.percentile."""
        rng = np.random.default_rng(7)
        data = rng.normal(size=1000)
        sketch = MergingQuantileSketch(block_size=4096).update(data)
        for q in (0.05, 0.5, 0.95):
            assert sketch.result(q) == float(np.percentile(data, 100.0 * q))

    def test_nan_skipped(self):
        sketch = MergingQuantileSketch().update(
            np.array([1.0, np.nan, 2.0, np.nan, 3.0])
        )
        assert sketch.n_valid == 3
        assert sketch.result(0.5) == pytest.approx(2.0)

    def test_chunking_invariance_is_bit_exact(self):
        """Per-sample and arbitrary-chunk feeding give identical state —
        the property the scalar/columnar rollup parity rests on."""
        rng = np.random.default_rng(11)
        data = 3220.0 + 50.0 * rng.standard_normal(5000)
        data[rng.random(5000) < 0.02] = np.nan
        scalar = MergingQuantileSketch(block_size=512, summary_size=128)
        for x in data:
            scalar.add(float(x))
        chunked = MergingQuantileSketch(block_size=512, summary_size=128)
        lo = 0
        for size in (1, 7, 511, 512, 513, 1000, 2456):
            chunked.update(data[lo : lo + size])
            lo += size
        chunked.update(data[lo:])
        assert chunked.state_dict() == scalar.state_dict()
        for q in (0.05, 0.5, 0.95):
            assert chunked.result(q) == scalar.result(q)

    def test_accuracy_after_many_folds(self):
        rng = np.random.default_rng(3)
        data = rng.uniform(0.0, 100.0, 100_000)
        sketch = MergingQuantileSketch().update(data)
        for q in (0.05, 0.5, 0.95):
            assert sketch.result(q) == pytest.approx(100.0 * q, abs=1.0)

    def test_1d_chunks_required(self):
        with pytest.raises(SeriesShapeError):
            MergingQuantileSketch().update(np.zeros((2, 2)))

    def test_restore_bit_identical(self):
        import json

        rng = np.random.default_rng(13)
        data = rng.normal(size=9000)
        sketch = MergingQuantileSketch(block_size=1024, summary_size=256)
        sketch.update(data[:5000])
        state = json.loads(json.dumps(sketch.state_dict()))
        resumed = MergingQuantileSketch.restore(state)
        sketch.update(data[5000:])
        resumed.update(data[5000:])
        assert resumed.state_dict() == sketch.state_dict()
        assert resumed.result(0.5) == sketch.result(0.5)


class TestChunkedSeriesReader:
    def test_series_chunks_reconstruct(self):
        series = make_noisy_series(1000)
        reader = ChunkedSeriesReader(series, chunk_size=96)
        times = np.concatenate([c.times_s for c in reader])
        values = np.concatenate([c.values for c in reader])
        np.testing.assert_array_equal(times, series.times_s)
        np.testing.assert_array_equal(values, series.values)

    def test_reiterable(self):
        reader = ChunkedSeriesReader(make_noisy_series(100), chunk_size=7)
        assert sum(len(c.times_s) for c in reader) == 100
        assert sum(len(c.times_s) for c in reader) == 100  # second pass restarts

    def test_csv_streaming_matches_series(self, tmp_path):
        series = make_noisy_series(500)
        path = tmp_path / "cabinet.csv"
        save_csv(series, path)
        stats = stream_stats(path, chunk_size=64)
        assert stats.n_valid == series.n_valid
        assert stats.mean == pytest.approx(series.mean(), rel=1e-6)
        assert stats.time_weighted_mean == pytest.approx(
            series.time_weighted_mean(), rel=1e-6
        )

    def test_csv_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(TelemetryError):
            list(ChunkedSeriesReader(path))

    def test_csv_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,value\n1,2,3\n")
        with pytest.raises(TelemetryError):
            list(ChunkedSeriesReader(path))

    def test_csv_non_numeric_field_wrapped_with_context(self, tmp_path):
        """Regression: corrupt numeric fields must raise TelemetryError with
        file and line context, not a raw ValueError."""
        path = tmp_path / "corrupt.csv"
        path.write_text("time_s,value\n0,1.0\n60,bogus\n")
        with pytest.raises(TelemetryError, match=r"corrupt\.csv:3.*non-numeric"):
            list(ChunkedSeriesReader(path))

    def test_npz_matches_series(self, tmp_path):
        series = make_noisy_series(300)
        path = tmp_path / "cabinet.npz"
        save_npz(series, path)
        stats = stream_stats(path, chunk_size=41)
        assert stats.n_valid == series.n_valid
        assert stats.mean == pytest.approx(series.mean(), rel=1e-9)

    def test_unsupported_source_rejected(self, tmp_path):
        with pytest.raises(TelemetryError):
            ChunkedSeriesReader(tmp_path / "telemetry.parquet")
        with pytest.raises(TelemetryError):
            ChunkedSeriesReader(12345)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(TelemetryError):
            ChunkedSeriesReader(make_noisy_series(10), chunk_size=0)

    def test_as_chunk_reader_passthrough(self):
        reader = ChunkedSeriesReader(make_noisy_series(10))
        assert as_chunk_reader(reader) is reader

    def test_reader_name_from_source(self, tmp_path):
        series = make_noisy_series(10)
        assert ChunkedSeriesReader(series).name == "noisy"
        path = tmp_path / "cab7.csv"
        save_csv(series, path)
        assert ChunkedSeriesReader(path).name == "cab7"


class TestStreamStats:
    def test_matches_batch_over_chunks(self):
        series = make_noisy_series(2000)
        assert_matches_batch(stream_stats(series, chunk_size=131), series)
