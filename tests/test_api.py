"""FacilitySession façade: §2–§5 methods, sweep caching, validation."""

import numpy as np
import pytest

from repro.api import FacilitySession
from repro.core.efficiency import POST_BIOS_CONFIG, POST_FREQ_CONFIG
from repro.core.regimes import Regime
from repro.engine.plan import CIScenario, SweepSpec
from repro.errors import ConfigurationError, HpcemError


class TestEmissions:
    def test_winter_2022_is_scope2_dominated(self):
        session = FacilitySession(ci_g_per_kwh=190.0)
        emissions = session.emissions()
        assert emissions["scope2_share"] > 0.5
        assert session.classify_regime() is Regime.SCOPE2_DOMINATED

    def test_green_grid_is_scope3_dominated(self):
        session = FacilitySession(ci_g_per_kwh=15.0)
        assert session.classify_regime() is Regime.SCOPE3_DOMINATED
        assert session.emissions()["scope2_share"] < 0.5

    def test_decarbonising_scenario_uses_lifetime_average(self):
        flat = FacilitySession(ci_g_per_kwh=190.0)
        falling = FacilitySession(
            ci_g_per_kwh=CIScenario.decarbonising(190.0, 0.07)
        )
        assert falling.mean_ci_g_per_kwh() < flat.mean_ci_g_per_kwh()
        assert falling.emissions()["scope2_tco2e"] < flat.emissions()["scope2_tco2e"]

    def test_emissions_model_matches_point_evaluation(self):
        session = FacilitySession()
        model = session.emissions_model()
        assert model.annual_energy_kwh() == pytest.approx(
            session.emissions()["annual_energy_kwh"]
        )

    def test_invalid_parameters_rejected_at_construction(self):
        with pytest.raises(HpcemError):
            FacilitySession(utilisation=1.5)
        with pytest.raises(HpcemError):
            FacilitySession(n_nodes=0)


class TestEfficiencyAndAdvice:
    def test_efficiency_reports_curated_apps(self):
        rows = FacilitySession().efficiency(POST_FREQ_CONFIG)
        assert len(rows) >= 5
        assert all(0.0 < row.perf_ratio <= 1.2 for row in rows)

    def test_efficiency_single_app_and_unknown(self):
        session = FacilitySession()
        rows = session.efficiency(POST_BIOS_CONFIG, app_name="VASP TiO2")
        assert len(rows) == 1 and rows[0].app_name == "VASP TiO2"
        with pytest.raises(ConfigurationError):
            session.efficiency(app_name="No Such Code")

    def test_advise_reproduces_paper_choice(self):
        best = FacilitySession(ci_g_per_kwh=190.0).advise()
        assert best.config.label() == "2.0GHz / performance-determinism"


class TestSweep:
    def test_default_sweep_covers_freq_mode_ci_grid(self):
        result = FacilitySession().sweep()
        assert len(result) == 3 * 2 * 4  # frequencies × modes × default CI scenarios

    def test_repeated_sweeps_hit_memory_cache(self):
        session = FacilitySession()
        first = session.sweep()
        second = session.sweep()
        assert not first.meta.memory_hit
        assert second.meta.memory_hit
        for name in first.columns:
            assert np.array_equal(
                first.columns[name], second.columns[name], equal_nan=True
            )

    def test_cache_dir_persists_across_sessions(self, tmp_path):
        first = FacilitySession(cache_dir=tmp_path).sweep()
        replay = FacilitySession(cache_dir=tmp_path).sweep()
        assert replay.meta.computed_chunks == 0
        for name in first.columns:
            assert first.columns[name].tobytes() == replay.columns[name].tobytes()

    def test_overrides_and_spec_are_mutually_exclusive(self):
        session = FacilitySession()
        with pytest.raises(ConfigurationError):
            session.sweep(SweepSpec(), utilisations=(0.5,))

    def test_overrides_reach_the_spec(self):
        result = FacilitySession().sweep(utilisations=(0.25, 0.5, 0.75))
        assert sorted(set(result.columns["utilisation"])) == [0.25, 0.5, 0.75]

    def test_invalidate_caches_clears_both_layers(self, tmp_path):
        session = FacilitySession(cache_dir=tmp_path)
        session.sweep()
        session.invalidate_caches()
        rerun = session.sweep()
        assert not rerun.meta.memory_hit
        assert rerun.meta.disk_hits == 0


def same_row(a: dict, b: dict) -> bool:
    """Scalar-row equality that also equates NaN cells (e.g. perf_ratio)."""
    import json

    return json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestThinClientOfTheServiceCore:
    """Post-service refactor: same surface, shared core, deprecation shims."""

    def test_deprecated_internals_warn_but_still_answer(self):
        session = FacilitySession()
        with pytest.warns(DeprecationWarning, match="core.point_spec"):
            spec = session._point_spec(None)
        assert spec.n_scenarios == 1
        with pytest.warns(DeprecationWarning, match="core.evaluate_point"):
            row = session._evaluate(None)
        assert same_row(row, session.emissions())

    def test_methods_delegate_to_the_same_core_answers(self):
        session = FacilitySession(ci_g_per_kwh=190.0)
        core = session.core
        assert same_row(session.emissions(), core.emissions(session.params))
        assert session.mean_ci_g_per_kwh() == core.mean_ci_g_per_kwh(session.params)
        assert session.classify_regime() is core.classify_regime(session.params)

    def test_sessions_can_share_one_core_and_its_caches(self):
        from repro.service import FacilityCore

        core = FacilityCore()
        a = FacilitySession(core=core)
        b = FacilitySession(core=core)
        assert a.memory_cache is b.memory_cache
        a.sweep()
        assert b.sweep().meta.memory_hit  # b rides a's cache

    def test_core_and_cache_dir_are_mutually_exclusive(self, tmp_path):
        from repro.service import FacilityCore

        with pytest.raises(ConfigurationError):
            FacilitySession(core=FacilityCore(), cache_dir=tmp_path)

    def test_parameter_attributes_remain_readable_and_assignable(self):
        session = FacilitySession()
        assert session.n_nodes == 5860
        baseline = session.emissions()["total_tco2e"]
        session.n_nodes = 1000
        assert session.params.n_nodes == 1000
        assert session.emissions()["total_tco2e"] < baseline
