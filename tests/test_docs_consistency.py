"""Documentation consistency: the docs must describe the repo that exists."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


class TestDesignDoc:
    @pytest.fixture(scope="class")
    def design(self):
        return (ROOT / "DESIGN.md").read_text()

    def test_exists_and_confirms_paper_match(self, design):
        assert "matches the title" in design

    def test_every_bench_target_exists(self, design):
        for name in re.findall(r"benchmarks/(bench_\w+\.py)", design):
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_every_named_module_exists(self, design):
        # Module tree entries look like "    name.py" within the code block.
        tree = design.split("```")[1]
        current_pkg = "repro"
        for line in tree.splitlines():
            pkg = re.match(r"^  (\w+)/", line)
            if pkg:
                current_pkg = f"repro/{pkg.group(1)}"
                continue
            for mod in re.findall(r"(\w+\.py)", line):
                found = list((ROOT / "src").rglob(mod))
                assert found, f"DESIGN.md names {mod} but no such file exists"


class TestExperimentsDoc:
    @pytest.fixture(scope="class")
    def experiments(self):
        return (ROOT / "EXPERIMENTS.md").read_text()

    def test_covers_every_paper_artefact(self, experiments):
        for artefact in ("T1", "T2", "T3", "T4", "F1", "F2", "F3", "C1", "R1"):
            assert f"## {artefact}" in experiments or f"— {artefact}" in experiments

    def test_mentioned_benches_exist(self, experiments):
        for name in re.findall(r"`(bench_\w+\.py)`", experiments):
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_paper_headline_numbers_present(self, experiments):
        for number in ("3,220", "3,010", "2,530", "690", "750,080"):
            assert number in experiments, number


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (ROOT / "README.md").read_text()

    def test_examples_table_matches_directory(self, readme):
        for name in re.findall(r"`examples/(\w+\.py)`", readme):
            assert (ROOT / "examples" / name).exists(), name

    def test_linked_docs_exist(self, readme):
        for doc in ("DESIGN.md", "EXPERIMENTS.md"):
            assert doc in readme
            assert (ROOT / doc).exists()

    def test_quickstart_snippet_runs(self, readme):
        block = re.search(r"```python\n(.*?)```", readme, re.DOTALL).group(1)
        namespace: dict = {}
        exec(block, namespace)  # noqa: S102 - executing our own README

    def test_docs_directory_files_exist(self):
        assert (ROOT / "docs" / "modelling.md").exists()
        assert (ROOT / "docs" / "usage.md").exists()


class TestContributingDoc:
    @pytest.fixture(scope="class")
    def contributing(self):
        return (ROOT / "docs" / "contributing.md").read_text()

    def test_exists_and_is_cross_linked(self, contributing):
        readme = (ROOT / "README.md").read_text()
        usage = (ROOT / "docs" / "usage.md").read_text()
        assert "docs/contributing.md" in readme
        assert "contributing.md" in usage

    def test_documents_every_registered_lint_code(self, contributing):
        from repro.lint.registry import all_codes

        documented = set(re.findall(r"\bREP\d{3}\b", contributing))
        registered = set(all_codes()) | {"REP000"}
        assert registered <= documented, registered - documented

    def test_documents_no_phantom_codes(self, contributing):
        from repro.lint.registry import all_codes

        documented = set(re.findall(r"\bREP\d{3}\b", contributing))
        registered = set(all_codes()) | {"REP000"}
        assert documented <= registered, documented - registered

    def test_documents_every_suppression_alias(self, contributing):
        from repro.lint.annotations import ALIASES

        for alias in ALIASES:
            assert alias in contributing, alias

    def test_design_tree_covers_lint_package(self):
        design = (ROOT / "DESIGN.md").read_text()
        assert "lint/" in design
        assert "repro lint" in design or "checkers/" in design

    def test_ci_runs_the_contract_checker_as_blocking_job(self):
        ci = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "repro lint src tests" in ci
        assert "ruff check" in ci
        assert "mypy" in ci
