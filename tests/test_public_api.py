"""Public-API contract: everything advertised in ``__all__`` must resolve."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.facility",
    "repro.node",
    "repro.workload",
    "repro.scheduler",
    "repro.telemetry",
    "repro.grid",
    "repro.interconnect",
    "repro.core",
    "repro.analysis",
    "repro.live",
    "repro.experiments",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} has no __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} advertised but missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_unique(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__))

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_top_level_convenience_path(self):
        """The README quickstart names must live at top level."""
        for name in (
            "archer2_inventory",
            "run_campaign",
            "CampaignConfig",
            "build_node_model",
            "archer2_mix",
            "classify_ci",
            "DecisionEngine",
        ):
            assert hasattr(repro, name), name

    def test_docstrings_on_public_callables(self):
        """Every advertised public object carries a docstring."""
        for package in PACKAGES:
            module = importlib.import_module(package)
            for name in module.__all__:
                obj = getattr(module, name)
                if callable(obj) and not isinstance(obj, type(repro)):
                    assert obj.__doc__, f"{package}.{name} lacks a docstring"
