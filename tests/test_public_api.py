"""Public-API contract: everything advertised in ``__all__`` must resolve."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.facility",
    "repro.node",
    "repro.workload",
    "repro.scheduler",
    "repro.telemetry",
    "repro.grid",
    "repro.interconnect",
    "repro.core",
    "repro.analysis",
    "repro.live",
    "repro.experiments",
    "repro.api",
    "repro.engine",
    "repro.engine.cli",
    "repro.lint",
    "repro.service",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} has no __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} advertised but missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_unique(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__))

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_top_level_convenience_path(self):
        """The README quickstart names must live at top level."""
        for name in (
            "archer2_inventory",
            "run_campaign",
            "CampaignConfig",
            "build_node_model",
            "archer2_mix",
            "classify_ci",
            "DecisionEngine",
            "FacilitySession",
            "SweepSpec",
            "run_sweep",
        ):
            assert hasattr(repro, name), name

    def test_facade_covers_quickstart_without_deep_imports(self):
        """`from repro.api import FacilitySession` answers §2–§5 end-to-end."""
        from repro.api import FacilitySession

        session = FacilitySession(ci_g_per_kwh=190.0)
        emissions = session.emissions()
        assert emissions["total_tco2e"] > 0
        assert session.classify_regime().value == "scope2-dominated"
        assert session.advise().config.label() == "2.0GHz / performance-determinism"
        result = session.sweep(utilisations=(0.9,), node_counts=(1000,))
        assert len(result) > 0
        assert "SWEEP-" in result.to_table()

    def test_deprecated_scenario_paths_still_work_and_warn(self):
        """The pre-engine deep-import paths keep working behind warnings."""
        import importlib
        import sys
        import warnings

        import repro.analysis

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fn = repro.analysis.ci_sweep
        assert callable(fn)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)

        sys.modules.pop("repro.analysis.scenarios", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = importlib.import_module("repro.analysis.scenarios")
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        from repro.engine.scenarios import ci_sweep

        assert legacy.ci_sweep is ci_sweep

    def test_docstrings_on_public_callables(self):
        """Every advertised public object carries a docstring."""
        for package in PACKAGES:
            module = importlib.import_module(package)
            for name in module.__all__:
                obj = getattr(module, name)
                if callable(obj) and not isinstance(obj, type(repro)):
                    assert obj.__doc__, f"{package}.{name} lacks a docstring"
