"""Result protocol: every registry experiment and sweep output conforms."""

import numpy as np

from repro.engine import SweepSpec, run_sweep
from repro.experiments import REGISTRY
from repro.experiments.common import ExperimentResult
from repro.results import Result, write_result
from repro.telemetry.series import TimeSeries


def stub_experiment():
    return ExperimentResult(
        experiment_id="T9",
        title="stub",
        table="| a |",
        headline={"x": 1.0},
        series={"measured_kw": TimeSeries(900.0 * np.arange(10), np.full(10, 3220.0))},
    )


class TestProtocolConformance:
    def test_experiment_result_satisfies_protocol(self):
        assert isinstance(stub_experiment(), Result)

    def test_sweep_result_satisfies_protocol(self):
        result = run_sweep(SweepSpec(utilisations=(0.9,), node_counts=(1000,)))
        assert isinstance(result, Result)

    def test_every_registry_experiment_returns_protocol_type(self):
        """All REGISTRY callables are annotated to return ExperimentResult,
        which satisfies the protocol — run the cheapest one to prove it."""
        result = REGISTRY["T1"]()
        assert isinstance(result, Result)
        assert result.result_id == "T1"
        assert result.to_dict()["kind"] == "experiment"
        assert result.to_table() == str(result)

    def test_experiment_to_csv_rows_matches_legacy_format(self):
        rows = stub_experiment().to_csv_rows()["measured_kw"]
        assert rows[0] == ["time_s", "value_kw"]
        assert rows[1] == ["0.0", "3220.000"]
        assert len(rows) == 11


class TestWriteResult:
    def test_writes_txt_and_csv(self, tmp_path):
        written = write_result(stub_experiment(), tmp_path)
        assert sorted(p.name for p in written) == ["T9.txt", "T9_measured_kw.csv"]
        assert (tmp_path / "T9.txt").read_text().endswith("\n")

    def test_sweep_and_experiment_share_one_exporter(self, tmp_path):
        sweep = run_sweep(SweepSpec(utilisations=(0.9,), node_counts=(1000,)))
        written = write_result(sweep, tmp_path)
        names = sorted(p.name for p in written)
        assert names == [f"{sweep.result_id}.txt", f"{sweep.result_id}_scenarios.csv"]
        csv_lines = (tmp_path / names[1]).read_text().splitlines()
        assert len(csv_lines) == len(sweep) + 1

    def test_slash_in_series_name_is_sanitised(self, tmp_path):
        result = ExperimentResult(
            experiment_id="T9",
            title="stub",
            table="| a |",
            series={"a/b": TimeSeries(np.array([0.0]), np.array([1.0]))},
        )
        written = write_result(result, tmp_path)
        assert (tmp_path / "T9_a_b.csv") in written
