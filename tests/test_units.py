"""Unit conversion tests."""

import numpy as np
import pytest

from repro import units
from repro.errors import UnitError


class TestPowerConversions:
    def test_kw_to_w(self):
        assert units.kw_to_w(1.0) == 1000.0

    def test_w_to_kw(self):
        assert units.w_to_kw(2500.0) == 2.5

    def test_mw_roundtrip(self):
        assert units.w_to_mw(units.mw_to_w(3.5)) == pytest.approx(3.5)

    def test_kw_w_roundtrip_array(self):
        arr = np.array([0.0, 1.5, 3220.0])
        np.testing.assert_allclose(units.w_to_kw(units.kw_to_w(arr)), arr)


class TestEnergyConversions:
    def test_kwh_to_j(self):
        assert units.kwh_to_j(1.0) == 3.6e6

    def test_j_to_kwh_roundtrip(self):
        assert units.j_to_kwh(units.kwh_to_j(123.4)) == pytest.approx(123.4)

    def test_mwh(self):
        assert units.mwh_to_j(1.0) == pytest.approx(3.6e9)
        assert units.j_to_mwh(3.6e9) == pytest.approx(1.0)

    def test_wh(self):
        assert units.wh_to_j(1.0) == 3600.0
        assert units.j_to_wh(7200.0) == 2.0

    def test_one_kw_for_one_hour_is_one_kwh(self):
        energy = units.energy_j(units.kw_to_w(1.0), units.hours_to_s(1.0))
        assert units.j_to_kwh(energy) == pytest.approx(1.0)


class TestTimeConversions:
    def test_hours(self):
        assert units.hours_to_s(2.0) == 7200.0
        assert units.s_to_hours(7200.0) == 2.0

    def test_days(self):
        assert units.days_to_s(1.0) == 86_400.0
        assert units.s_to_days(43_200.0) == 0.5

    def test_minutes(self):
        assert units.minutes_to_s(90.0) == 5400.0

    def test_month_is_mean_gregorian(self):
        assert units.months_to_s(12.0) == pytest.approx(units.years_to_s(1.0))

    def test_year_length(self):
        assert units.years_to_s(1.0) == pytest.approx(365.2425 * 86_400.0)


class TestEmissionsConversions:
    def test_gram_kilogram(self):
        assert units.g_to_kg(1500.0) == 1.5
        assert units.kg_to_g(1.5) == 1500.0

    def test_tonnes(self):
        assert units.g_to_tonnes(2e6) == 2.0
        assert units.tonnes_to_g(2.0) == 2e6
        assert units.kg_to_tonnes(500.0) == 0.5

    def test_emissions_g_formula(self):
        # 1 kWh at 100 g/kWh -> 100 g.
        assert units.emissions_g(units.kwh_to_j(1.0), 100.0) == pytest.approx(100.0)


class TestDerived:
    def test_node_hours(self):
        assert units.node_hours(10, units.hours_to_s(2.0)) == pytest.approx(20.0)

    def test_energy_j_constant_power(self):
        assert units.energy_j(500.0, 10.0) == 5000.0


class TestValidation:
    def test_nonnegative_accepts_zero(self):
        assert units.ensure_nonnegative(0.0, "x") == 0.0

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(UnitError, match="x"):
            units.ensure_nonnegative(-1.0, "x")

    def test_nonnegative_rejects_nan(self):
        with pytest.raises(UnitError):
            units.ensure_nonnegative(float("nan"), "x")

    def test_positive_rejects_zero(self):
        with pytest.raises(UnitError):
            units.ensure_positive(0.0, "x")

    def test_positive_rejects_inf(self):
        with pytest.raises(UnitError):
            units.ensure_positive(float("inf"), "x")

    def test_fraction_bounds(self):
        assert units.ensure_fraction(0.0, "f") == 0.0
        assert units.ensure_fraction(1.0, "f") == 1.0
        with pytest.raises(UnitError):
            units.ensure_fraction(1.0001, "f")
        with pytest.raises(UnitError):
            units.ensure_fraction(-0.0001, "f")
