"""Application catalogue tests."""

import pytest

from repro.errors import UnitError
from repro.workload.applications import (
    AppProfile,
    TABLE3_PAPER_ROWS,
    TABLE4_PAPER_ROWS,
    full_catalogue,
    paper_bios_benchmarks,
    paper_curated_apps,
    paper_frequency_benchmarks,
    synthetic_archetypes,
)


class TestPaperFrequencyBenchmarks:
    def test_all_seven_present(self):
        apps = paper_frequency_benchmarks()
        assert set(apps) == set(TABLE4_PAPER_ROWS)

    def test_compute_fractions_ordered_like_perf_impacts(self):
        """More perf-sensitive apps must be more compute bound."""
        apps = paper_frequency_benchmarks()
        assert (
            apps["LAMMPS Ethanol"].compute_fraction
            > apps["Nektar++ TGV 128DoF"].compute_fraction
            > apps["GROMACS 1400k"].compute_fraction
            > apps["CP2K H2O 2048"].compute_fraction
            > apps["VASP CdTe"].compute_fraction
        )

    def test_paper_values_attached(self):
        apps = paper_frequency_benchmarks()
        for name, (nodes, perf, energy) in TABLE4_PAPER_ROWS.items():
            assert apps[name].typical_nodes == nodes
            assert apps[name].paper_perf_ratio == perf
            assert apps[name].paper_energy_ratio == energy

    def test_roofline_reproduces_perf_ratio(self):
        for app in paper_frequency_benchmarks().values():
            predicted = app.roofline.perf_ratio(2.0)
            assert predicted == pytest.approx(app.paper_perf_ratio, abs=1e-9)


class TestPaperBiosBenchmarks:
    def test_all_three_present(self):
        assert set(paper_bios_benchmarks()) == set(TABLE3_PAPER_ROWS)

    def test_assumed_flags(self):
        apps = paper_bios_benchmarks()
        assert apps["OpenSBLI TGV 1024^3"].assumed
        assert apps["VASP TiO2"].assumed
        assert not apps["CASTEP Al Slab"].assumed

    def test_opensbli_memory_bound(self):
        assert paper_bios_benchmarks()["OpenSBLI TGV 1024^3"].compute_fraction < 0.2


class TestCatalogue:
    def test_full_catalogue_superset(self):
        catalogue = full_catalogue()
        for name in TABLE4_PAPER_ROWS:
            assert name in catalogue
        for name in synthetic_archetypes():
            assert name in catalogue

    def test_castep_uses_table4_calibration(self):
        catalogue = full_catalogue()
        t4 = paper_frequency_benchmarks()["CASTEP Al Slab"]
        assert catalogue["CASTEP Al Slab"].compute_fraction == t4.compute_fraction

    def test_archetypes_flagged_assumed(self):
        for app in synthetic_archetypes().values():
            assert app.assumed

    def test_curated_apps_cover_both_tables(self):
        curated = paper_curated_apps()
        assert "LAMMPS Ethanol" in curated
        assert "OpenSBLI TGV 1024^3" in curated
        assert "Climate/Ocean archetype" not in curated


class TestAppProfile:
    def test_invalid_compute_fraction_rejected(self):
        with pytest.raises(UnitError):
            AppProfile(
                name="bad", research_area="x", compute_fraction=1.5, typical_nodes=4
            )

    def test_invalid_nodes_rejected(self):
        with pytest.raises(Exception):
            AppProfile(
                name="bad", research_area="x", compute_fraction=0.5, typical_nodes=0
            )

    def test_from_paper_perf_ratio_roundtrip(self):
        app = AppProfile.from_paper_perf_ratio(
            name="t", research_area="x", nodes=4, perf_ratio=0.85, energy_ratio=0.9
        )
        assert app.roofline.perf_ratio(2.0) == pytest.approx(0.85)
