"""Job-stream generator tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.node.pstates import FrequencySetting
from repro.units import SECONDS_PER_DAY
from repro.workload.generator import JobStreamConfig, JobStreamGenerator


def make_generator(mix, rng, **overrides):
    defaults = dict(n_facility_nodes=1000, max_job_nodes=256)
    defaults.update(overrides)
    return JobStreamGenerator(mix, JobStreamConfig(**defaults), rng)


class TestConfigValidation:
    def test_max_nodes_capped_by_facility(self):
        with pytest.raises(ConfigurationError):
            JobStreamConfig(n_facility_nodes=100, max_job_nodes=200)

    def test_bad_override_fraction(self):
        with pytest.raises(ConfigurationError):
            JobStreamConfig(n_facility_nodes=100, user_override_fraction=1.5)

    def test_bad_diurnal_amplitude(self):
        with pytest.raises(ConfigurationError):
            JobStreamConfig(n_facility_nodes=100, diurnal_amplitude=1.0)

    def test_bad_holiday_window(self):
        with pytest.raises(ConfigurationError):
            JobStreamConfig(
                n_facility_nodes=100, holiday_windows_s=((100.0, 50.0),)
            )

    def test_bad_weekend_factor(self):
        with pytest.raises(ConfigurationError):
            JobStreamConfig(n_facility_nodes=100, weekend_factor=0.0)


class TestGeneration:
    def test_jobs_ordered_and_bounded(self, mix, rng):
        gen = make_generator(mix, rng)
        jobs = gen.generate_until(3 * SECONDS_PER_DAY)
        times = [j.submit_time_s for j in jobs]
        assert times == sorted(times)
        assert all(0 <= t < 3 * SECONDS_PER_DAY for t in times)

    def test_job_ids_unique(self, mix, rng):
        gen = make_generator(mix, rng)
        jobs = gen.generate_until(2 * SECONDS_PER_DAY)
        ids = [j.job_id for j in jobs]
        assert len(set(ids)) == len(ids)

    def test_node_counts_within_cap(self, mix, rng):
        gen = make_generator(mix, rng, max_job_nodes=64)
        jobs = gen.generate_until(5 * SECONDS_PER_DAY)
        assert all(1 <= j.n_nodes <= 64 for j in jobs)

    def test_generate_exact_count(self, mix, rng):
        gen = make_generator(mix, rng)
        jobs = gen.generate(50)
        assert len(jobs) == 50

    def test_mean_runtime_close_to_configured(self, mix, rng):
        gen = make_generator(mix, rng, mean_runtime_s=7200.0)
        jobs = gen.generate(3000)
        mean = np.mean([j.reference_runtime_s for j in jobs])
        assert mean == pytest.approx(7200.0, rel=0.1)

    def test_offered_load_scales_arrivals(self, mix):
        low = make_generator(mix, np.random.default_rng(1), offered_load=0.5)
        high = make_generator(mix, np.random.default_rng(1), offered_load=1.5)
        n_low = len(low.generate_until(5 * SECONDS_PER_DAY))
        n_high = len(high.generate_until(5 * SECONDS_PER_DAY))
        assert n_high > 2 * n_low

    def test_negative_start_supported(self, mix, rng):
        gen = make_generator(mix, rng)
        jobs = gen.generate_until(0.0, t_start_s=-SECONDS_PER_DAY)
        assert jobs
        assert all(-SECONDS_PER_DAY <= j.submit_time_s < 0 for j in jobs)

    def test_empty_window_rejected(self, mix, rng):
        gen = make_generator(mix, rng)
        with pytest.raises(ConfigurationError):
            gen.generate_until(0.0, t_start_s=0.0)

    def test_user_overrides_sampled(self, mix, rng):
        gen = make_generator(
            mix,
            rng,
            user_override_fraction=0.5,
            override_setting=FrequencySetting.GHZ_2_25_TURBO,
        )
        jobs = gen.generate(800)
        overridden = sum(1 for j in jobs if j.frequency_override is not None)
        assert overridden / len(jobs) == pytest.approx(0.5, abs=0.06)


class TestModulation:
    def test_weekend_reduces_rate(self, mix, rng):
        gen = make_generator(mix, rng, weekend_factor=0.6, diurnal_amplitude=0.0)
        weekday = gen.rate_modulation(0.0)  # day 0
        weekend = gen.rate_modulation(5 * SECONDS_PER_DAY)  # day 5
        assert weekend == pytest.approx(0.6 * weekday)

    def test_holiday_overrides_weekday(self, mix, rng):
        gen = make_generator(
            mix,
            rng,
            holiday_factor=0.3,
            diurnal_amplitude=0.0,
            holiday_windows_s=((0.0, SECONDS_PER_DAY),),
        )
        assert gen.rate_modulation(3600.0) == pytest.approx(
            0.3 * gen.rate_modulation(SECONDS_PER_DAY + 3600.0)
        )

    def test_diurnal_peak_mid_afternoon(self, mix, rng):
        gen = make_generator(mix, rng, diurnal_amplitude=0.2)
        peak = gen.rate_modulation(15 * 3600.0)
        trough = gen.rate_modulation(3 * 3600.0)
        assert peak > trough

    def test_fewer_jobs_during_holidays(self, mix):
        quiet = make_generator(
            mix,
            np.random.default_rng(3),
            holiday_windows_s=((0.0, 7 * SECONDS_PER_DAY),),
            holiday_factor=0.3,
        )
        busy = make_generator(mix, np.random.default_rng(3))
        n_quiet = len(quiet.generate_until(7 * SECONDS_PER_DAY))
        n_busy = len(busy.generate_until(7 * SECONDS_PER_DAY))
        assert n_quiet < 0.6 * n_busy


class TestArrivalRate:
    def test_rate_matches_offered_load_arithmetic(self, mix, rng):
        gen = make_generator(mix, rng, offered_load=1.0)
        rate = gen.arrival_rate_per_s()
        assert rate * gen.mean_job_node_seconds() == pytest.approx(1000.0)
