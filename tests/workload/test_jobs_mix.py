"""Job, JobRecord and WorkloadMix tests."""

import pytest

from repro.errors import ConfigurationError
from repro.node.pstates import FrequencySetting
from repro.workload.applications import full_catalogue
from repro.workload.jobs import Job, JobRecord
from repro.workload.mix import WorkloadMix, archer2_mix


@pytest.fixture(scope="module")
def vasp():
    return full_catalogue()["VASP CdTe"]


def make_job(vasp, **kwargs):
    defaults = dict(
        job_id=1, app=vasp, n_nodes=8, submit_time_s=0.0, reference_runtime_s=3600.0
    )
    defaults.update(kwargs)
    return Job(**defaults)


class TestJob:
    def test_runtime_stretches_at_lower_frequency(self, vasp):
        job = make_job(vasp)
        assert job.runtime_at_s(2.0) > job.runtime_at_s(2.8)

    def test_runtime_at_reference_is_reference(self, vasp):
        job = make_job(vasp)
        assert job.runtime_at_s(2.8) == pytest.approx(3600.0)

    def test_reference_node_seconds(self, vasp):
        assert make_job(vasp).reference_node_seconds == 8 * 3600.0

    def test_negative_submit_time_allowed_for_warmup(self, vasp):
        job = make_job(vasp, submit_time_s=-100.0)
        assert job.submit_time_s == -100.0

    def test_zero_nodes_rejected(self, vasp):
        with pytest.raises(ConfigurationError):
            make_job(vasp, n_nodes=0)

    def test_zero_runtime_rejected(self, vasp):
        with pytest.raises(Exception):
            make_job(vasp, reference_runtime_s=0.0)


class TestJobRecord:
    def make_record(self, vasp, **kwargs):
        defaults = dict(
            job=make_job(vasp),
            start_time_s=100.0,
            end_time_s=3700.0,
            setting=FrequencySetting.GHZ_2_25_TURBO,
            effective_ghz=2.8,
            node_power_w=450.0,
        )
        defaults.update(kwargs)
        return JobRecord(**defaults)

    def test_derived_quantities(self, vasp):
        record = self.make_record(vasp)
        assert record.runtime_s == 3600.0
        assert record.wait_s == 100.0
        assert record.node_seconds == 8 * 3600.0
        assert record.node_hours == pytest.approx(8.0)

    def test_energy_accounting(self, vasp):
        record = self.make_record(vasp)
        # 8 nodes × 450 W × 1 h = 3.6 kWh
        assert record.energy_kwh == pytest.approx(3.6)
        assert record.energy_j == pytest.approx(3.6 * 3.6e6)

    def test_end_before_start_rejected(self, vasp):
        with pytest.raises(ConfigurationError):
            self.make_record(vasp, end_time_s=50.0)

    def test_start_before_submit_rejected(self, vasp):
        with pytest.raises(ConfigurationError):
            self.make_record(vasp, start_time_s=-1.0)


class TestWorkloadMix:
    def test_weights_normalised(self):
        apps = tuple(full_catalogue().values())[:3]
        mix = WorkloadMix(apps=apps, weights=(2.0, 2.0, 4.0))
        assert sum(mix.weights) == pytest.approx(1.0)
        assert mix.weights[2] == pytest.approx(0.5)

    def test_default_uniform_weights(self):
        apps = tuple(full_catalogue().values())[:4]
        mix = WorkloadMix(apps=apps)
        assert all(w == pytest.approx(0.25) for w in mix.weights)

    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadMix(apps=())

    def test_weight_length_mismatch_rejected(self):
        apps = tuple(full_catalogue().values())[:3]
        with pytest.raises(ConfigurationError):
            WorkloadMix(apps=apps, weights=(1.0, 1.0))

    def test_weight_lookup(self, mix):
        assert mix.weight_of("VASP CdTe") > mix.weight_of("ONETEP hBN-BP-hBN")

    def test_unknown_app_lookup_rejected(self, mix):
        with pytest.raises(ConfigurationError):
            mix.weight_of("HOOMD")

    def test_sampling_follows_weights(self, mix, rng):
        names = [mix.sample_app(rng).name for _ in range(4000)]
        vasp_share = names.count("VASP CdTe") / len(names)
        assert vasp_share == pytest.approx(mix.weight_of("VASP CdTe"), abs=0.03)

    def test_mean_compute_fraction_in_range(self, mix):
        phi = mix.mean_compute_fraction()
        assert 0.15 < phi < 0.45  # a memory-leaning national mix

    def test_reweighted_shifts_balance(self, mix):
        heavier = mix.reweighted({"LAMMPS Ethanol": 5.0})
        assert heavier.mean_compute_fraction() > mix.mean_compute_fraction()
        # Original untouched.
        assert mix.weight_of("LAMMPS Ethanol") < heavier.weight_of("LAMMPS Ethanol")

    def test_archer2_mix_names(self):
        mix = archer2_mix()
        assert "VASP CdTe" in mix.names
        assert len(mix) >= 10
