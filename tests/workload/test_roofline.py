"""Roofline execution-model tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.roofline import (
    RooflineModel,
    compute_fraction_from_arithmetic_intensity,
    compute_fraction_from_perf_ratio,
)


class TestTimeRatio:
    def test_unity_at_reference(self):
        model = RooflineModel(compute_fraction=0.5)
        assert model.time_ratio(2.8) == pytest.approx(1.0)

    def test_memory_bound_frequency_invariant(self):
        model = RooflineModel(compute_fraction=0.0)
        assert model.time_ratio(1.5) == pytest.approx(1.0)
        assert model.time_ratio(2.8) == pytest.approx(1.0)

    def test_compute_bound_scales_inversely(self):
        model = RooflineModel(compute_fraction=1.0)
        assert model.time_ratio(1.4) == pytest.approx(2.0)

    def test_monotone_decreasing_in_frequency(self):
        model = RooflineModel(compute_fraction=0.6)
        freqs = np.array([1.5, 2.0, 2.25, 2.8, 3.2])
        ratios = model.time_ratio(freqs)
        assert np.all(np.diff(ratios) < 0)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            RooflineModel(compute_fraction=0.5).time_ratio(0.0)


class TestPerfRatio:
    def test_perf_ratio_below_one_at_lower_frequency(self):
        model = RooflineModel(compute_fraction=0.5)
        assert model.perf_ratio(2.0) < 1.0

    def test_perf_ratio_custom_baseline(self):
        model = RooflineModel(compute_fraction=1.0)
        assert model.perf_ratio(2.0, baseline_ghz=2.25) == pytest.approx(2.0 / 2.25)


class TestActivities:
    def test_activities_sum_to_one_when_busy(self):
        for phi in (0.0, 0.2, 0.5, 0.9, 1.0):
            profile = RooflineModel(compute_fraction=phi).at(2.0)
            assert profile.compute_activity + profile.memory_activity == pytest.approx(
                1.0
            )

    def test_lower_frequency_raises_compute_activity(self):
        """Slower cores spend relatively more wall time computing."""
        model = RooflineModel(compute_fraction=0.3)
        assert model.at(2.0).compute_activity > model.at(2.8).compute_activity

    def test_perf_ratio_property(self):
        profile = RooflineModel(compute_fraction=0.5).at(2.0)
        assert profile.perf_ratio == pytest.approx(1.0 / profile.time_ratio)


class TestInversion:
    def test_roundtrip_through_perf_ratio(self):
        for phi in (0.05, 0.3, 0.65, 0.95):
            model = RooflineModel(compute_fraction=phi)
            ratio = model.perf_ratio(2.0)
            recovered = compute_fraction_from_perf_ratio(ratio, 2.0, 2.8)
            assert recovered == pytest.approx(phi, abs=1e-12)

    def test_paper_lammps_value(self):
        """LAMMPS: 0.74 perf ratio → strongly compute bound."""
        phi = compute_fraction_from_perf_ratio(0.74, 2.0, 2.8)
        assert 0.85 < phi < 0.92

    def test_paper_vasp_value(self):
        """VASP CdTe: 0.95 perf ratio → strongly memory bound."""
        phi = compute_fraction_from_perf_ratio(0.95, 2.0, 2.8)
        assert 0.10 < phi < 0.16

    def test_ratio_below_floor_rejected(self):
        # 2.0/2.8 = 0.714 is the compute-bound floor.
        with pytest.raises(ConfigurationError, match="floor"):
            compute_fraction_from_perf_ratio(0.6, 2.0, 2.8)

    def test_ratio_above_one_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_fraction_from_perf_ratio(1.05, 2.0, 2.8)

    def test_low_above_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_fraction_from_perf_ratio(0.9, 2.8, 2.0)


class TestFrequencyForPerfTarget:
    def test_target_one_needs_reference(self):
        model = RooflineModel(compute_fraction=0.5)
        assert model.frequency_for_perf_target(1.0) == pytest.approx(2.8)

    def test_memory_bound_unconstrained(self):
        model = RooflineModel(compute_fraction=0.0)
        assert model.frequency_for_perf_target(0.95) == 0.0

    def test_inverse_consistency(self):
        model = RooflineModel(compute_fraction=0.6)
        freq = model.frequency_for_perf_target(0.9)
        assert model.perf_ratio(freq) == pytest.approx(0.9)

    def test_low_target_needs_low_frequency(self):
        # Any positive target is reachable for mixed workloads; lower
        # targets map to lower frequencies, consistently invertible.
        model = RooflineModel(compute_fraction=0.5)
        freq = model.frequency_for_perf_target(0.4)
        assert 0 < freq < 2.8
        assert model.perf_ratio(freq) == pytest.approx(0.4)


class TestArithmeticIntensity:
    def test_balanced_kernel_is_half(self):
        # AI equal to machine balance → φ = 0.5.
        phi = compute_fraction_from_arithmetic_intensity(10.0, 1000.0, 100.0)
        assert phi == pytest.approx(0.5)

    def test_high_ai_approaches_compute_bound(self):
        phi = compute_fraction_from_arithmetic_intensity(1000.0, 1000.0, 100.0)
        assert phi > 0.98

    def test_low_ai_approaches_memory_bound(self):
        phi = compute_fraction_from_arithmetic_intensity(0.01, 1000.0, 100.0)
        assert phi < 0.01

    def test_invalid_inputs_rejected(self):
        with pytest.raises(Exception):
            compute_fraction_from_arithmetic_intensity(0.0, 1000.0, 100.0)


class TestMemoryBoundSentinel:
    """Regression tests for the audited exact-float sentinel in
    ``frequency_for_perf_target`` (``phi == 0.0``)."""

    def test_pure_memory_bound_is_unconstrained(self):
        model = RooflineModel(compute_fraction=0.0)
        assert model.frequency_for_perf_target(0.9) == 0.0

    def test_near_zero_phi_is_continuous_with_sentinel(self):
        """As φ→0 the required frequency →0 smoothly, so the exact-zero
        shortcut matches the general formula's limit."""
        model = RooflineModel(compute_fraction=1e-12)
        assert model.frequency_for_perf_target(0.9) == pytest.approx(0.0, abs=1e-9)

    def test_target_of_one_requires_reference_even_when_memory_bound(self):
        """The ≥1 branch is checked before the φ sentinel."""
        model = RooflineModel(compute_fraction=0.0)
        assert model.frequency_for_perf_target(1.0) == pytest.approx(2.8)
