"""Strong-scaling model tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.scaling import StrongScalingModel, nodes_for_deadline, tradeoff_curve


@pytest.fixture(scope="module")
def model():
    return StrongScalingModel(t1_s=36_000.0)  # 10 h on one node


class TestRuntime:
    def test_single_node_is_t1(self, model):
        assert model.runtime_s(1) == pytest.approx(model.t1_s)

    def test_more_nodes_faster_initially(self, model):
        assert model.runtime_s(8) < model.runtime_s(2) < model.runtime_s(1)

    def test_amdahl_limit(self):
        pure = StrongScalingModel(t1_s=1000.0, serial_fraction=0.1, comm_coefficient=0.0)
        assert pure.speedup(100000) < 1.0 / 0.1 + 1e-6

    def test_communication_eventually_dominates(self, model):
        """With a comm term, enough nodes make the job slower again."""
        assert model.runtime_s(4096) > model.runtime_s(256)

    def test_vectorised(self, model):
        out = model.runtime_s(np.array([1, 2, 4]))
        assert isinstance(out, np.ndarray)
        assert len(out) == 3

    def test_invalid_nodes_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.runtime_s(0)


class TestEfficiency:
    def test_perfect_at_one_node(self, model):
        assert model.parallel_efficiency(1) == pytest.approx(1.0)

    def test_efficiency_decreases(self, model):
        effs = [float(model.parallel_efficiency(n)) for n in (1, 4, 16, 64, 256)]
        assert effs == sorted(effs, reverse=True)


class TestEnergy:
    def test_energy_monotone_in_nodes(self, model):
        """With overheads, running wide always costs more kWh."""
        counts = np.array([1, 2, 4, 8, 16, 64, 256, 1024])
        energies = model.energy_kwh(counts, node_power_w=480.0)
        assert np.all(np.diff(energies) > 0)

    def test_tradeoff_curve_structure(self, model):
        points = tradeoff_curve(model, node_power_w=480.0, max_nodes=256)
        assert [p.n_nodes for p in points] == [1, 2, 4, 8, 16, 32, 64, 128, 256]
        energies = [p.energy_kwh for p in points]
        assert energies == sorted(energies)

    def test_min_nodes_floor_respected(self, model):
        points = tradeoff_curve(model, 480.0, max_nodes=64, min_nodes=8)
        assert points[0].n_nodes == 8

    def test_deadline_picks_smallest_feasible(self, model):
        # Loose deadline: one node suffices (least energy).
        loose = nodes_for_deadline(model, 480.0, deadline_s=model.t1_s * 2)
        assert loose.n_nodes == 1
        # Tight deadline: needs parallelism, costs more energy.
        tight = nodes_for_deadline(model, 480.0, deadline_s=model.t1_s / 8)
        assert tight.n_nodes > 8
        assert tight.energy_kwh > loose.energy_kwh

    def test_impossible_deadline_raises(self, model):
        with pytest.raises(ConfigurationError, match="deadline"):
            nodes_for_deadline(model, 480.0, deadline_s=1.0)

    def test_validation(self, model):
        with pytest.raises(Exception):
            model.energy_kwh(4, node_power_w=0.0)
        with pytest.raises(ConfigurationError):
            tradeoff_curve(model, 480.0, max_nodes=0)
