"""Toolchain (compiler/library) model tests."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.applications import paper_frequency_benchmarks
from repro.workload.toolchain import (
    REFERENCE_TOOLCHAINS,
    Toolchain,
    apply_toolchain,
    frequency_sensitivity_shift,
)


@pytest.fixture(scope="module")
def lammps():
    return paper_frequency_benchmarks()["LAMMPS Ethanol"]


@pytest.fixture(scope="module")
def vasp():
    return paper_frequency_benchmarks()["VASP CdTe"]


class TestToolchain:
    def test_reference_toolchains_valid(self):
        assert "baseline-gnu" in REFERENCE_TOOLCHAINS
        for tc in REFERENCE_TOOLCHAINS.values():
            assert tc.compute_speedup >= 1.0

    def test_extreme_speedup_rejected(self):
        with pytest.raises(ConfigurationError):
            Toolchain(name="magic", compute_speedup=10.0)

    def test_nonpositive_speedup_rejected(self):
        with pytest.raises(Exception):
            Toolchain(name="broken", memory_speedup=0.0)

    def test_label(self):
        label = REFERENCE_TOOLCHAINS["vendor-tuned"].overall_label
        assert "vendor-tuned" in label


class TestApplyToolchain:
    def test_identity_toolchain_is_noop_on_shape(self, lammps):
        same = apply_toolchain(lammps, Toolchain(name="id"))
        assert same.compute_fraction == pytest.approx(lammps.compute_fraction)
        assert same.baseline_runtime_s == pytest.approx(lammps.baseline_runtime_s)

    def test_compute_speedup_reduces_compute_fraction(self, lammps):
        faster = apply_toolchain(
            lammps, Toolchain(name="vec", compute_speedup=1.3)
        )
        assert faster.compute_fraction < lammps.compute_fraction
        assert faster.baseline_runtime_s < lammps.baseline_runtime_s

    def test_memory_speedup_raises_compute_fraction(self, vasp):
        faster = apply_toolchain(
            vasp, Toolchain(name="mem", memory_speedup=1.2)
        )
        assert faster.compute_fraction > vasp.compute_fraction

    def test_paper_ratios_dropped(self, lammps):
        rebuilt = apply_toolchain(lammps, REFERENCE_TOOLCHAINS["vendor-tuned"])
        assert rebuilt.paper_perf_ratio is None
        assert rebuilt.assumed

    def test_runtime_product_of_components(self, lammps):
        """Speeding both components by the same factor keeps the shape but
        shortens the runtime by exactly that factor."""
        both = apply_toolchain(
            lammps, Toolchain(name="both", compute_speedup=1.25, memory_speedup=1.25)
        )
        assert both.compute_fraction == pytest.approx(lammps.compute_fraction)
        assert both.baseline_runtime_s == pytest.approx(
            lammps.baseline_runtime_s / 1.25
        )


class TestFrequencySensitivityShift:
    def test_vectorising_compiler_reduces_sensitivity(self, lammps):
        """The future-work interaction: better vectorisation makes the
        2.0 GHz cap cheaper."""
        shift = frequency_sensitivity_shift(
            lammps, REFERENCE_TOOLCHAINS["vector-aggressive"]
        )
        assert shift < 0.0

    def test_memory_optimisation_increases_sensitivity(self, vasp):
        shift = frequency_sensitivity_shift(
            vasp, REFERENCE_TOOLCHAINS["memory-optimised"]
        )
        assert shift > 0.0

    def test_can_move_app_across_reset_threshold(self):
        """A borderline app (~11 % impact) drops under the §4.2 threshold
        with an aggressive vectorising toolchain."""
        from repro.workload.applications import AppProfile

        borderline = AppProfile(
            name="borderline",
            research_area="x",
            compute_fraction=0.31,  # ~11 % impact at 2.0 vs 2.8
            typical_nodes=4,
        )
        before = 1.0 - borderline.roofline.perf_ratio(2.0)
        assert before > 0.10
        rebuilt = apply_toolchain(
            borderline, REFERENCE_TOOLCHAINS["vector-aggressive"]
        )
        after = 1.0 - rebuilt.roofline.perf_ratio(2.0)
        assert after < 0.10
