"""SWF trace-replay tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.node.calibration import build_node_model
from repro.node.determinism import DeterminismMode
from repro.scheduler.backfill import BackfillScheduler, StaticEnvironment
from repro.workload.trace_replay import jobs_from_swf, load_swf

SAMPLE_SWF = """\
; SWF sample trace for tests
; MaxProcs: 2048
1 0 10 3600 256 -1 -1 256 3600 -1 1 1 1 1 1 -1 -1 -1 -1 -1
2 120 5 7200 512 -1 -1 512 7200 -1 1 2 1 1 1 -1 -1 -1 -1 -1
3 300 60 1800 128 -1 -1 128 1800 -1 1 3 2 1 1 -1 -1 -1 -1 -1
4 300 0 0 128 -1 -1 128 0 -1 0 4 2 1 1 -1 -1 -1 -1 -1
5 600 12 86400 1024 -1 -1 1024 86400 -1 1 5 3 1 1 -1 -1 -1 -1 -1
"""


@pytest.fixture
def swf_path(tmp_path):
    path = tmp_path / "trace.swf"
    path.write_text(SAMPLE_SWF)
    return path


class TestLoadSwf:
    def test_parses_valid_jobs(self, swf_path):
        data, stats = load_swf(swf_path)
        assert stats.n_jobs == 4  # job 4 has zero runtime/procs -> skipped
        assert stats.n_skipped == 1
        assert stats.n_lines == 5

    def test_sorted_by_submit_time(self, swf_path):
        data, _ = load_swf(swf_path)
        assert np.all(np.diff(data[:, 1]) >= 0)

    def test_span(self, swf_path):
        _, stats = load_swf(swf_path)
        assert stats.t_first_submit_s == 0.0
        assert stats.t_last_submit_s == 600.0
        assert stats.span_s == 600.0

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "only_comments.swf"
        path.write_text("; nothing\n; here\n")
        with pytest.raises(ConfigurationError, match="no usable jobs"):
            load_swf(path)

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "messy.swf"
        path.write_text("garbage line\n1 0 1 3600 128 x x x x\n")
        data, stats = load_swf(path)
        assert stats.n_jobs == 1
        assert stats.n_skipped == 1


class TestJobsFromSwf:
    def test_processor_to_node_conversion(self, swf_path, mix):
        jobs, _ = jobs_from_swf(swf_path, mix, cores_per_node=128)
        by_id = {j.job_id: j for j in jobs}
        assert by_id[1].n_nodes == 2  # 256 cores
        assert by_id[2].n_nodes == 4  # 512 cores
        assert by_id[3].n_nodes == 1  # 128 cores
        assert by_id[5].n_nodes == 8  # 1024 cores

    def test_max_nodes_clamp(self, swf_path, mix):
        jobs, _ = jobs_from_swf(swf_path, mix, cores_per_node=128, max_nodes=2)
        assert max(j.n_nodes for j in jobs) == 2

    def test_app_assignment_reproducible(self, swf_path, mix):
        a, _ = jobs_from_swf(swf_path, mix, rng=np.random.default_rng(5))
        b, _ = jobs_from_swf(swf_path, mix, rng=np.random.default_rng(5))
        assert [j.app.name for j in a] == [j.app.name for j in b]

    def test_bad_cores_per_node(self, swf_path, mix):
        with pytest.raises(ConfigurationError):
            jobs_from_swf(swf_path, mix, cores_per_node=0)

    def test_replay_through_scheduler(self, swf_path, mix):
        """The round trip the feature exists for: SWF → jobs → simulation."""
        jobs, _ = jobs_from_swf(swf_path, mix, cores_per_node=128)
        env = StaticEnvironment(
            node_model=build_node_model(), mode=DeterminismMode.POWER
        )
        result = BackfillScheduler(16).run(jobs, 200_000.0, env)
        assert len(result.records) == len(jobs)
        assert result.total_energy_kwh() > 0
